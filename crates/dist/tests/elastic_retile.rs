//! Property tests for the survivor re-tiling and its exact volume model.
//!
//! Two invariants carry the whole elastic-recovery design:
//!
//! 1. **Exact partition** — after any sequence of rank deaths, the live
//!    work units are partitioned exactly across the survivors (every live
//!    unit owned by exactly one survivor) and a death migrates *only* the
//!    dead rank's units: survivor-owned tiles never move, so their state
//!    never needs replaying.
//! 2. **Exact accounting** — `dace_elastic_rank_sent_bytes` predicts the
//!    measured per-slot send volume of the elastic scheme byte-for-byte,
//!    for any survivor subset.

use proptest::prelude::*;
use qt_core::device::Device;
use qt_core::gf::{self, GfConfig};
use qt_core::grids::Grids;
use qt_core::hamiltonian::{ElectronModel, PhononModel};
use qt_core::params::SimParams;
use qt_core::sse;
use qt_dist::comm::LivenessConfig;
use qt_dist::schemes::{elastic_sse_exchange, SseDistContext};
use qt_dist::volume::dace_elastic_rank_sent_bytes;
use qt_dist::ElasticTiling;
use qt_linalg::Tensor;

fn small_params(te: usize, ta: usize) -> SimParams {
    SimParams {
        nkz: 2,
        nqz: 2,
        ne: 6 * te,
        nw: 2,
        na: 6 * ta.max(2),
        nb: 3,
        norb: 2,
        bnum: 3,
    }
}

/// Deterministic kill order derived from a seed: a permutation of
/// `0..procs` by repeated modular selection.
fn kill_order(seed: u64, procs: usize) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..procs).collect();
    let mut order = Vec::with_capacity(procs);
    let mut s = seed;
    while !pool.is_empty() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        order.push(pool.remove((s >> 33) as usize % pool.len()));
    }
    order
}

/// The partition invariant after one removal: the dead rank's units all
/// land on survivors, no survivor-owned unit moves, and the live units
/// are owned by exactly one survivor each.
fn check_removal(tiling: &mut ElasticTiling, dead: usize) {
    let before = tiling.owner.clone();
    let moved = tiling.remove_rank(dead);
    assert_eq!(
        moved,
        (0..before.len())
            .filter(|&u| before[u] == dead)
            .collect::<Vec<_>>(),
        "exactly the dead rank's units migrate"
    );
    for u in 0..before.len() {
        if before[u] != dead {
            assert_eq!(
                tiling.owner[u], before[u],
                "unit {u} owned by a survivor must not move"
            );
        }
    }
    if tiling.world_size() == 0 {
        return;
    }
    // Exact partition: survivors' unit lists are disjoint and cover all.
    let mut seen = vec![0usize; tiling.procs()];
    for &s in &tiling.survivors {
        for u in tiling.units_of(s) {
            seen[u] += 1;
        }
    }
    assert!(
        seen.iter().all(|&n| n == 1),
        "units multiply/un-owned: {seen:?}"
    );
    assert_eq!(tiling.live_units(), (0..tiling.procs()).collect::<Vec<_>>());
    // Balance: loads differ by at most 1 more than the pre-death spread
    // can justify — with every unit migrating to the least-loaded
    // survivor, max-min load stays within 1 when starting from uniform.
}

struct Fx {
    p: SimParams,
    dev: Device,
    grids: Grids,
    dh: Tensor,
    gl: Tensor,
    gg: Tensor,
    dl: Tensor,
    dg: Tensor,
}

fn fixture(te: usize, ta: usize) -> Fx {
    let p = small_params(te, ta);
    let dev = Device::new(&p);
    let em = ElectronModel::for_params(&p);
    let pm = PhononModel::default();
    let grids = Grids::new(&p, -1.2, 1.2);
    let cfg = GfConfig::default();
    let egf = gf::electron_gf_phase(
        &dev,
        &em,
        &p,
        &grids,
        &gf::ElectronSelfEnergy::zeros(&p),
        &cfg,
    )
    .unwrap();
    let pgf = gf::phonon_gf_phase(
        &dev,
        &pm,
        &p,
        &grids,
        &gf::PhononSelfEnergy::zeros(&p),
        &cfg,
    )
    .unwrap();
    let (dl, dg) = sse::preprocess_d(&dev, &p, &pgf);
    Fx {
        dh: em.dh_tensor(&dev),
        gl: egf.g_lesser,
        gg: egf.g_greater,
        dl,
        dg,
        p,
        dev,
        grids,
    }
}

fn ctx(fx: &Fx) -> SseDistContext<'_> {
    SseDistContext {
        p: &fx.p,
        dev: &fx.dev,
        grids: &fx.grids,
        dh: &fx.dh,
        g_lesser: &fx.gl,
        g_greater: &fx.gg,
        d_lesser_pre: &fx.dl,
        d_greater_pre: &fx.dg,
    }
}

/// Measured per-slot bytes of one elastic exchange on this survivor set.
fn measured_sent(fx: &Fx, tiling: &ElasticTiling) -> Vec<u64> {
    let (_, _, stats) =
        elastic_sse_exchange(&ctx(fx), tiling, &LivenessConfig::default()).expect("no faults");
    stats.rank_sent
}

#[test]
fn retiling_is_an_exact_partition_for_all_kill_orders() {
    // Exhaustive over every kill permutation of the 2×2 grid (24 orders)
    // and a seeded sample of the 2×3 grid's 720.
    let p22 = small_params(2, 2);
    for a in 0..4usize {
        for b in (0..4).filter(|&b| b != a) {
            for c in (0..4).filter(|&c| c != a && c != b) {
                let d = 6 - a - b - c;
                let mut tiling = ElasticTiling::new(&p22, 2, 2);
                for dead in [a, b, c, d] {
                    check_removal(&mut tiling, dead);
                }
                assert_eq!(tiling.world_size(), 0);
            }
        }
    }
    let p23 = small_params(2, 3);
    for seed in 0..40u64 {
        let mut tiling = ElasticTiling::new(&p23, 2, 3);
        for dead in kill_order(seed, 6) {
            check_removal(&mut tiling, dead);
        }
    }
}

#[test]
fn retiling_keeps_loads_balanced() {
    // Killing from a uniform start, migrate-to-least-loaded keeps the
    // survivor load spread within one unit at every step.
    let p = small_params(2, 3);
    for seed in 0..20u64 {
        let mut tiling = ElasticTiling::new(&p, 2, 3);
        for dead in kill_order(seed.wrapping_mul(977), 6) {
            tiling.remove_rank(dead);
            if tiling.world_size() == 0 {
                break;
            }
            let loads: Vec<usize> = tiling.survivors.iter().map(|&s| tiling.load(s)).collect();
            let (lo, hi) = (*loads.iter().min().unwrap(), *loads.iter().max().unwrap());
            assert!(hi - lo <= 1, "unbalanced loads {loads:?}");
        }
    }
}

#[test]
fn elastic_volume_model_matches_measured_bytes_per_slot() {
    let fx = fixture(2, 2);
    let halo = fx.dev.max_neighbor_index_distance();
    let mut tiling = ElasticTiling::new(&fx.p, 2, 2);
    // Full world, then three successive survivor sets down to one rank:
    // the model must stay byte-for-byte exact on every one.
    assert_eq!(
        measured_sent(&fx, &tiling),
        dace_elastic_rank_sent_bytes(&fx.p, halo, &tiling)
    );
    for dead in [1usize, 3, 0] {
        tiling.remove_rank(dead);
        assert_eq!(
            measured_sent(&fx, &tiling),
            dace_elastic_rank_sent_bytes(&fx.p, halo, &tiling),
            "model diverged after killing rank {dead}"
        );
    }
}

#[test]
fn elastic_volume_model_matches_measured_bytes_with_abandoned_units() {
    // Degraded mode: an abandoned rank's units are skipped, not migrated.
    // The model and the scheme must agree on the reduced traffic too.
    let fx = fixture(2, 2);
    let halo = fx.dev.max_neighbor_index_distance();
    let mut tiling = ElasticTiling::new(&fx.p, 2, 2);
    tiling.abandon_rank(2);
    assert_eq!(tiling.live_units(), vec![0, 1, 3]);
    assert_eq!(
        measured_sent(&fx, &tiling),
        dace_elastic_rank_sent_bytes(&fx.p, halo, &tiling)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any seeded kill sequence on any small tile grid preserves the
    /// exact-partition and only-orphans-move invariants at every step.
    #[test]
    fn retile_partition_invariants_hold(
        seed in 0u64..1u64 << 32,
        te in 1usize..=3,
        ta in 1usize..=3,
    ) {
        let p = small_params(te, ta);
        let mut tiling = ElasticTiling::new(&p, te, ta);
        for dead in kill_order(seed, te * ta) {
            check_removal(&mut tiling, dead);
        }
        prop_assert!(tiling.world_size() == 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The elastic volume model is exact for a random survivor subset of
    /// the 2×2 grid (the expensive end-to-end form of the invariant; case
    /// count kept small because each case runs a full exchange).
    #[test]
    fn elastic_volume_model_is_exact_for_random_survivors(seed in 0u64..1u64 << 32) {
        let fx = fixture(2, 2);
        let halo = fx.dev.max_neighbor_index_distance();
        let mut tiling = ElasticTiling::new(&fx.p, 2, 2);
        let kills = kill_order(seed, 4);
        for &dead in kills.iter().take(1 + (seed as usize) % 3) {
            tiling.remove_rank(dead);
        }
        prop_assert!(
            measured_sent(&fx, &tiling) == dace_elastic_rank_sent_bytes(&fx.p, halo, &tiling)
        );
    }
}
