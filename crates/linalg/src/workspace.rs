//! Per-thread workspace arenas for the allocation-free hot path.
//!
//! Every (E, kz) point of the Green's-function phases used to allocate its
//! RGF temporaries, self-energy blocks and SSE scratch from the global
//! allocator — the paper's §4 redundancy-removal argument applied to the
//! *allocator* instead of the dataflow graph: the same buffers are
//! requested with the same shapes thousands of times per SCF iteration.
//! This module keeps a thread-local pool of raw `Complex64` buffers (plus
//! a small index-buffer pool for LU pivots). A `take` is served from the
//! pool when any buffer with sufficient capacity is free and falls back to
//! a fresh heap allocation otherwise; fresh fallbacks are counted in the
//! `ws_fresh` telemetry counter, so the allocation-regression test can
//! assert that warm SCF iterations (after the pools have grown to the peak
//! working set) perform zero hot-path allocations.
//!
//! Discipline: buffers must be returned (`give*`) on the **same thread**
//! that took them. Rayon worker bodies satisfy this naturally — a closure
//! runs start-to-finish on one worker — while data that escapes the worker
//! (gathered spectral tensors, SSE partial sums) must stay on the regular
//! heap. Each call acquires and releases the thread-local `RefCell`
//! immediately, so nested parallelism inside a checkout window (e.g. a
//! parallel GEMM stealing another point's task onto this thread) cannot
//! observe a held borrow.

use crate::complex::Complex64;
use crate::dense::Matrix;
use std::cell::RefCell;

/// Shape-agnostic pool of complex buffers; the thread-local instance
/// behind [`take`]/[`give`]. Public for tests and for callers that want an
/// isolated pool.
#[derive(Default)]
pub struct Workspace {
    /// Free complex buffers, sorted by capacity (ascending) for best-fit
    /// checkout.
    bufs: Vec<Vec<Complex64>>,
    /// Free index buffers (LU pivots), sorted by capacity.
    idx_bufs: Vec<Vec<usize>>,
    /// Fresh heap allocations this pool had to perform (pool misses).
    fresh: u64,
}

impl Workspace {
    /// Check out a zeroed buffer of exactly `len` entries.
    pub fn take_scratch(&mut self, len: usize) -> Vec<Complex64> {
        let pos = self.bufs.partition_point(|b| b.capacity() < len);
        if pos < self.bufs.len() {
            let mut b = self.bufs.remove(pos);
            b.clear();
            b.resize(len, Complex64::ZERO);
            b
        } else {
            self.fresh += 1;
            qt_telemetry::counters::add_ws_fresh();
            vec![Complex64::ZERO; len]
        }
    }

    /// Check out a buffer of exactly `len` entries with **unspecified
    /// contents** (whatever the previous user left behind). For callers
    /// that fully overwrite the buffer before reading it — `copy_from`
    /// targets, overwrite-product outputs — this skips the `take_scratch`
    /// zero-fill, which is pure memory traffic on the RGF hot path.
    pub fn take_scratch_uninit(&mut self, len: usize) -> Vec<Complex64> {
        let pos = self.bufs.partition_point(|b| b.capacity() < len);
        if pos < self.bufs.len() {
            let mut b = self.bufs.remove(pos);
            // Only the tail beyond the previous length is filled (or the
            // excess truncated); retained entries keep their stale values
            // by design.
            b.resize(len, Complex64::ZERO);
            b
        } else {
            self.fresh += 1;
            qt_telemetry::counters::add_ws_fresh();
            vec![Complex64::ZERO; len]
        }
    }

    /// Check out a `rows x cols` matrix with unspecified contents (see
    /// [`Workspace::take_scratch_uninit`]).
    pub fn take_uninit(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.take_scratch_uninit(rows * cols))
    }

    /// Check out an **empty** buffer with capacity for at least `cap`
    /// entries — for push-style fills (CSR assembly) where any `resize`
    /// fill, zeroed or not, is wasted work.
    pub fn take_scratch_empty(&mut self, cap: usize) -> Vec<Complex64> {
        let pos = self.bufs.partition_point(|b| b.capacity() < cap);
        if pos < self.bufs.len() {
            let mut b = self.bufs.remove(pos);
            b.clear();
            b
        } else {
            self.fresh += 1;
            qt_telemetry::counters::add_ws_fresh();
            Vec::with_capacity(cap)
        }
    }

    /// Empty index-buffer counterpart of
    /// [`Workspace::take_scratch_empty`].
    pub fn take_idx_empty(&mut self, cap: usize) -> Vec<usize> {
        let pos = self.idx_bufs.partition_point(|b| b.capacity() < cap);
        if pos < self.idx_bufs.len() {
            let mut b = self.idx_bufs.remove(pos);
            b.clear();
            b
        } else {
            self.fresh += 1;
            qt_telemetry::counters::add_ws_fresh();
            Vec::with_capacity(cap)
        }
    }

    /// Return a buffer to the pool.
    pub fn give_scratch(&mut self, buf: Vec<Complex64>) {
        if buf.capacity() == 0 {
            return;
        }
        let pos = self.bufs.partition_point(|b| b.capacity() < buf.capacity());
        self.bufs.insert(pos, buf);
    }

    /// Check out a zeroed `rows x cols` matrix backed by a pooled buffer.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.take_scratch(rows * cols))
    }

    /// Return a matrix's backing buffer to the pool.
    pub fn give(&mut self, m: Matrix) {
        self.give_scratch(m.into_vec());
    }

    /// Check out a zeroed index buffer of exactly `len` entries.
    pub fn take_idx(&mut self, len: usize) -> Vec<usize> {
        let pos = self.idx_bufs.partition_point(|b| b.capacity() < len);
        if pos < self.idx_bufs.len() {
            let mut b = self.idx_bufs.remove(pos);
            b.clear();
            b.resize(len, 0);
            b
        } else {
            self.fresh += 1;
            qt_telemetry::counters::add_ws_fresh();
            vec![0; len]
        }
    }

    /// Return an index buffer to the pool.
    pub fn give_idx(&mut self, buf: Vec<usize>) {
        if buf.capacity() == 0 {
            return;
        }
        let pos = self
            .idx_bufs
            .partition_point(|b| b.capacity() < buf.capacity());
        self.idx_bufs.insert(pos, buf);
    }

    /// Number of pool misses (fresh heap allocations) so far.
    pub fn fresh_count(&self) -> u64 {
        self.fresh
    }

    /// Number of buffers currently parked in the pool.
    pub fn pooled(&self) -> usize {
        self.bufs.len() + self.idx_bufs.len()
    }
}

thread_local! {
    static POOL: RefCell<Workspace> = RefCell::new(Workspace::default());
}

/// Check out a zeroed `rows x cols` matrix from the calling thread's pool.
#[inline]
pub fn take(rows: usize, cols: usize) -> Matrix {
    POOL.with(|p| p.borrow_mut().take(rows, cols))
}

/// Return a matrix taken with [`take`] to the calling thread's pool.
#[inline]
pub fn give(m: Matrix) {
    POOL.with(|p| p.borrow_mut().give(m));
}

/// Check out a zeroed complex buffer from the calling thread's pool.
#[inline]
pub fn take_scratch(len: usize) -> Vec<Complex64> {
    POOL.with(|p| p.borrow_mut().take_scratch(len))
}

/// Check out a `rows x cols` matrix with **unspecified contents** from the
/// calling thread's pool — for buffers that are fully overwritten before
/// being read (`copy_from` targets, overwrite-product outputs).
#[inline]
pub fn take_uninit(rows: usize, cols: usize) -> Matrix {
    POOL.with(|p| p.borrow_mut().take_uninit(rows, cols))
}

/// Return a buffer taken with [`take_scratch`].
#[inline]
pub fn give_scratch(buf: Vec<Complex64>) {
    POOL.with(|p| p.borrow_mut().give_scratch(buf));
}

/// Check out an empty complex buffer with capacity `cap` from the calling
/// thread's pool (see [`Workspace::take_scratch_empty`]).
#[inline]
pub fn take_scratch_empty(cap: usize) -> Vec<Complex64> {
    POOL.with(|p| p.borrow_mut().take_scratch_empty(cap))
}

/// Check out an empty index buffer with capacity `cap` from the calling
/// thread's pool (see [`Workspace::take_idx_empty`]).
#[inline]
pub fn take_idx_empty(cap: usize) -> Vec<usize> {
    POOL.with(|p| p.borrow_mut().take_idx_empty(cap))
}

/// Check out a zeroed index buffer from the calling thread's pool.
#[inline]
pub fn take_idx(len: usize) -> Vec<usize> {
    POOL.with(|p| p.borrow_mut().take_idx(len))
}

/// Return an index buffer taken with [`take_idx`].
#[inline]
pub fn give_idx(buf: Vec<usize>) {
    POOL.with(|p| p.borrow_mut().give_idx(buf));
}

/// Pool-miss count of the **calling thread's** pool — unlike the global
/// `ws_fresh` telemetry counter this is immune to concurrent tests, so
/// warm-path regression tests can assert exact reuse.
#[inline]
pub fn fresh_here() -> u64 {
    POOL.with(|p| p.borrow().fresh_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    #[test]
    fn take_give_reuses_buffers() {
        let mut ws = Workspace::default();
        let m = ws.take(4, 6);
        assert_eq!(m.shape(), (4, 6));
        assert_eq!(ws.fresh_count(), 1);
        ws.give(m);
        // Same capacity, different shape: still served from the pool.
        let m2 = ws.take(6, 4);
        assert_eq!(ws.fresh_count(), 1);
        assert!(m2.as_slice().iter().all(|z| *z == Complex64::ZERO));
        ws.give(m2);
        // Larger request: pool miss.
        let m3 = ws.take(8, 8);
        assert_eq!(ws.fresh_count(), 2);
        ws.give(m3);
        assert_eq!(ws.pooled(), 2);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::default();
        let small = ws.take_scratch(16);
        let big = ws.take_scratch(64);
        ws.give_scratch(big);
        ws.give_scratch(small);
        // A request for 10 must take the 16-buffer, leaving the 64 free.
        let b = ws.take_scratch(10);
        assert!(b.capacity() >= 10 && b.capacity() < 64);
        assert_eq!(ws.fresh_count(), 2);
        let b2 = ws.take_scratch(50);
        assert!(b2.capacity() >= 64);
        assert_eq!(ws.fresh_count(), 2);
    }

    #[test]
    fn taken_buffers_are_zeroed_after_reuse() {
        let mut ws = Workspace::default();
        let mut m = ws.take(3, 3);
        m[(1, 1)] = c64(4.0, -2.0);
        ws.give(m);
        let m2 = ws.take(3, 3);
        assert!(m2.as_slice().iter().all(|z| *z == Complex64::ZERO));
        ws.give(m2);
    }

    #[test]
    fn take_uninit_reuses_without_zeroing() {
        let mut ws = Workspace::default();
        let mut m = ws.take(3, 3);
        m[(2, 2)] = c64(9.0, 1.0);
        ws.give(m);
        // Uninit checkout may observe the stale value — and must not have
        // paid for a zero-fill to hide it.
        let m2 = ws.take_uninit(3, 3);
        assert_eq!(ws.fresh_count(), 1, "served from the pool");
        assert_eq!(m2.shape(), (3, 3));
        ws.give(m2);
        // The zeroing checkout still scrubs the same buffer.
        let m3 = ws.take(3, 3);
        assert!(m3.as_slice().iter().all(|z| *z == Complex64::ZERO));
        ws.give(m3);
    }

    #[test]
    fn take_empty_has_capacity_and_zero_len() {
        let mut ws = Workspace::default();
        let mut b = ws.take_scratch(100);
        b[7] = c64(1.0, 2.0);
        ws.give_scratch(b);
        let mut p = ws.take_idx(50);
        p[3] = 9;
        ws.give_idx(p);
        // Both served from the pool: empty, with enough capacity, and with
        // no fill of any kind performed.
        let b2 = ws.take_scratch_empty(80);
        assert!(b2.is_empty() && b2.capacity() >= 80);
        let p2 = ws.take_idx_empty(40);
        assert!(p2.is_empty() && p2.capacity() >= 40);
        assert_eq!(ws.fresh_count(), 2);
        ws.give_scratch(b2);
        ws.give_idx(p2);
        // Pool miss still counts as a fresh allocation.
        let big = ws.take_scratch_empty(4096);
        assert!(big.is_empty() && big.capacity() >= 4096);
        assert_eq!(ws.fresh_count(), 3);
        ws.give_scratch(big);
    }

    #[test]
    fn idx_pool_roundtrip() {
        let mut ws = Workspace::default();
        let mut p = ws.take_idx(5);
        p[3] = 7;
        ws.give_idx(p);
        let p2 = ws.take_idx(4);
        assert_eq!(ws.fresh_count(), 1);
        assert!(p2.iter().all(|&i| i == 0));
        ws.give_idx(p2);
    }

    #[test]
    fn thread_local_pool_roundtrip() {
        let before = qt_telemetry::counters::total_ws_fresh();
        let m = take(5, 5);
        give(m);
        let m = take(5, 5);
        give(m);
        // Second take reuses the first buffer: at most one miss from here.
        assert!(qt_telemetry::counters::total_ws_fresh() - before <= 1);
    }
}
