//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```sh
//! cargo run --release -p qt-bench --bin reproduce -- all
//! cargo run --release -p qt-bench --bin reproduce -- table4
//! cargo run --release -p qt-bench --bin reproduce -- profile \
//!     --trace out.trace.json --report out.report.json
//! cargo run --release -p qt-bench --bin reproduce -- check-report out.report.json
//! ```
//!
//! Closed-form and model results are produced at the paper's full
//! parameters; timed kernel results run at a reduced scale (documented per
//! section) and report the *shape* (ratios, orderings, crossovers).
//!
//! `profile` runs an instrumented end-to-end pipeline (SCF loop, all three
//! SSE variants, both distributed communication schemes) with telemetry
//! enabled, compares the measured flop and byte counts against the
//! closed-form models, and optionally writes a Chrome/Perfetto trace and a
//! JSON [`qt_telemetry::TelemetryReport`]. `check-report` re-parses and
//! re-validates a previously written report (used by CI).

use qt_bench::{
    bench_params, table6_csrgemm, table6_csrmm, table6_dense_mm, table6_operands, BenchFixture,
};
use qt_core::flops;
use qt_core::params::SimParams;
use qt_core::sse::{self, SseVariant};
use qt_dist::volume;
use qt_model::scaling::{self, Variant};
use qt_model::{optimal_tiling, PIZ_DAINT, SUMMIT};
use std::time::Instant;

/// With `count-alloc`, every heap allocation of this binary flows into the
/// `alloc.bytes` / `alloc.count` telemetry counters, so `profile` can show
/// the cold-vs-warm allocator gap per SCF iteration.
#[cfg(feature = "count-alloc")]
#[global_allocator]
static ALLOC: qt_bench::alloc::CountingAllocator = qt_bench::alloc::CountingAllocator;

const TIB: f64 = (1u64 << 40) as f64;
const PF: f64 = 1e15;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().cloned().unwrap_or_else(|| "all".into());
    if which == "profile" {
        profile(&args[1..]);
        return;
    }
    if which == "check-report" {
        check_report(&args[1..]);
        return;
    }
    if which == "balance" {
        balance(&args[1..]);
        return;
    }
    if which == "postmortem" {
        postmortem_cmd(&args[1..]);
        return;
    }
    if which == "table6" {
        table6_cmd(&args[1..]);
        return;
    }
    if which == "serve" {
        serve_cmd(&args[1..]);
        return;
    }
    if which == "corpus" {
        corpus_cmd(&args[1..]);
        return;
    }
    let known = [
        "all",
        "table1",
        "table3",
        "table4",
        "table5",
        "table7",
        "table8",
        "fig13",
        "fig1d",
        "sdfg",
        "calibrate",
    ];
    if !known.contains(&which.as_str()) {
        eprintln!(
            "unknown subcommand {which:?} (expected one of: profile, check-report, balance, \
             postmortem, table6, serve, corpus, {})",
            known.join(", ")
        );
        std::process::exit(2);
    }
    // These subcommands take no flags; reject stray arguments loudly
    // instead of silently ignoring them (a typo like `--repotr` must not
    // look like a successful run to CI).
    if let Some(extra) = args.get(1) {
        eprintln!("unknown {which} flag {extra:?} (this subcommand takes no flags)");
        std::process::exit(2);
    }
    let all = which == "all";
    if all || which == "table1" {
        table1();
    }
    if all || which == "table3" {
        table3();
    }
    if all || which == "table4" {
        table4();
    }
    if all || which == "table5" {
        table5();
    }
    if all {
        table6();
    }
    if all || which == "table7" {
        table7();
    }
    if all || which == "table8" {
        table8();
    }
    if all || which == "fig13" {
        fig13();
    }
    if all || which == "fig1d" {
        fig1d();
    }
    if all || which == "sdfg" {
        sdfg_figs();
    }
    if all || which == "calibrate" {
        calibrate();
    }
}

fn calibrate() {
    println!("== GEMM calibration: achieved throughput per shape class ==");
    let cal = qt_model::calibrate();
    println!(
        "  {:<10} {:>16} | {:>10} {:>10} | {:>8}",
        "class", "shape", "blocked", "naive", "speedup"
    );
    for c in &cal.classes {
        let s = &c.class;
        println!(
            "  {:<10} {:>4}x{:<4}x{:<4}x{:<3} | {:>7.2} GF {:>7.2} GF | {:>7.2}x",
            s.name,
            s.m,
            s.k,
            s.n,
            s.batch,
            c.blocked_flops / 1e9,
            c.naive_flops / 1e9,
            c.speedup()
        );
    }
    // Fold the measurements into an α–β machine model for this host. The
    // peak is a placeholder single-core FP64 estimate; what matters for
    // qt_model::predict is the product peak·eff, which is the measurement.
    let peak = 5.0e10;
    let m = cal.host_machine(peak, &PIZ_DAINT);
    println!(
        "  host machine: eff_gf={:.3} eff_sse={:.3} eff_sse_omen={:.3} (of {:.0} GF/s peak)\n",
        m.eff_gf,
        m.eff_sse,
        m.eff_sse_omen,
        peak / 1e9
    );
}

fn table1() {
    println!("== Table 1: simulation parameters (validated ranges) ==");
    for (name, p) in [
        ("Si 4,864 atoms (Nkz=7)", SimParams::paper_si_4864(7)),
        ("Si 10,240 atoms (Nkz=21)", SimParams::paper_si_10240(21)),
    ] {
        p.validate_paper_ranges().expect("within Table 1 ranges");
        println!(
            "  {name}: NA={} NB={} Norb={} NE={} Nw={} Nkz={} (valid)",
            p.na, p.nb, p.norb, p.ne, p.nw, p.nkz
        );
    }
    println!();
}

fn table3() {
    println!("== Table 3: single-iteration computational load (Pflop) ==");
    println!(
        "  {:<6} | {:>9} {:>9} | {:>9} {:>9} | {:>10} {:>10} | {:>10} {:>10}",
        "Nkz", "CI", "paper", "RGF", "paper", "SSE(OMEN)", "paper", "SSE(DaCe)", "paper"
    );
    let paper = [
        (3usize, 8.45, 52.95, 24.41, 12.38),
        (5, 14.12, 88.25, 67.80, 34.19),
        (7, 19.77, 123.55, 132.89, 66.85),
        (9, 25.42, 158.85, 219.67, 110.36),
        (11, 31.06, 194.15, 328.15, 164.71),
    ];
    for (nkz, ci, rgf, so, sd) in paper {
        let p = SimParams::paper_si_4864(nkz);
        println!(
            "  {:<6} | {:>9.2} {:>9.2} | {:>9.2} {:>9.2} | {:>10.2} {:>10.2} | {:>10.2} {:>10.2}",
            nkz,
            flops::contour_flops(&p) / PF,
            ci,
            flops::rgf_flops(&p) / PF,
            rgf,
            flops::sse_omen_flops(&p) / PF,
            so,
            flops::sse_dace_flops(&p) / PF,
            sd
        );
    }
    println!("  (SSE columns: paper's own closed forms; GF columns: calibrated fits)\n");
}

fn table4() {
    println!("== Table 4: weak scaling of SSE communication volume (TiB) ==");
    println!(
        "  {:<4} {:>6} | {:>9} {:>9} | {:>8} {:>8}",
        "Nkz", "procs", "OMEN", "paper", "DaCe", "paper"
    );
    for (nkz, procs, po, pd) in [
        (3usize, 768usize, 32.11, 0.54),
        (5, 1280, 89.18, 1.22),
        (7, 1792, 174.80, 2.17),
        (9, 2304, 288.95, 3.38),
        (11, 2816, 431.65, 4.86),
    ] {
        let p = SimParams::paper_si_4864(nkz);
        println!(
            "  {:<4} {:>6} | {:>9.2} {:>9.2} | {:>8.2} {:>8.2}",
            nkz,
            procs,
            volume::omen_total_bytes(&p, procs) / TIB,
            po,
            volume::dace_total_bytes(&p, nkz, procs / nkz) / TIB,
            pd
        );
    }
    println!();
}

fn table5() {
    println!("== Table 5: strong scaling of SSE communication volume (TiB, Nkz=7) ==");
    println!(
        "  {:>6} | {:>9} {:>9} | {:>8} {:>8}",
        "procs", "OMEN", "paper", "DaCe", "paper"
    );
    let p = SimParams::paper_si_4864(7);
    for (procs, po, pd) in [
        (224usize, 108.24, 0.95),
        (448, 117.75, 1.13),
        (896, 136.76, 1.48),
        (1792, 174.80, 2.17),
        (2688, 212.84, 2.87),
    ] {
        println!(
            "  {:>6} | {:>9.2} {:>9.2} | {:>8.2} {:>8.2}",
            procs,
            volume::omen_total_bytes(&p, procs) / TIB,
            po,
            volume::dace_total_bytes(&p, 7, procs / 7) / TIB,
            pd
        );
    }
    println!();
}

fn time_ms<T>(reps: usize, f: impl Fn() -> T) -> f64 {
    // Warm up once, then take the median of `reps` runs.
    let _ = f();
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            let _ = f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

fn table6() {
    println!("== Table 6: sparse vs dense 3-matrix multiplication in RGF ==");
    println!("  (reduced scale: n=256 blocks, ~6% Hamiltonian density; CPU, not P100)");
    let ops = table6_operands(256, 0.06, 11);
    let dense = time_ms(5, || table6_dense_mm(&ops));
    let csrmm = time_ms(5, || table6_csrmm(&ops));
    let csrgemm = time_ms(5, || table6_csrgemm(&ops));
    println!(
        "  {:<10} {:>10} {:>14} {:>14}",
        "approach", "ms", "vs CSRMM", "paper vs CSRMM"
    );
    println!(
        "  {:<10} {:>10.2} {:>13.2}x {:>13.2}x",
        "Dense-MM",
        dense,
        dense / csrmm,
        203.59 / 47.06
    );
    println!(
        "  {:<10} {:>10.2} {:>13.2}x {:>13.2}x",
        "CSRMM", csrmm, 1.0, 1.0
    );
    println!(
        "  {:<10} {:>10.2} {:>13.2}x {:>13.2}x",
        "CSRGEMM",
        csrgemm,
        csrgemm / csrmm,
        93.02 / 47.06
    );
    println!("  (expected ordering: CSRMM fastest, Dense-MM slowest — paper 1.98-4.33x)\n");
}

/// Table 6 for real: sweep full RGF solves across coupling densities with
/// the dense, forced-CSR, and auto-selected coupling kernels, gate the
/// calibrated selector against the empirical winner at every density, and
/// emit `BENCH_table6.json` (CI `table6-regression` job).
fn table6_cmd(flags: &[String]) {
    use qt_core::rgf::{self, KernelSelector, MultiplyStrategy};
    use qt_telemetry::json::Json;

    let mut out_path = "BENCH_table6.json".to_string();
    let mut report_path: Option<String> = None;
    let mut bs = 64usize;
    let mut blocks = 16usize;
    let mut reps = 7usize;
    let mut tie_tol = 0.15f64;
    let mut i = 0;
    while i < flags.len() {
        let need = |what: &str| {
            flags.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        let num = |what: &str| -> f64 {
            need(what).parse().unwrap_or_else(|_| {
                eprintln!("{what} needs a number");
                std::process::exit(2);
            })
        };
        match flags[i].as_str() {
            "--out" => out_path = need("--out"),
            "--report" => report_path = Some(need("--report")),
            "--bs" => bs = num("--bs") as usize,
            "--blocks" => blocks = num("--blocks") as usize,
            "--reps" => reps = num("--reps") as usize,
            "--tie-tol" => tie_tol = num("--tie-tol"),
            other => {
                eprintln!(
                    "unknown table6 flag {other:?} (expected --out/--report/--bs/--blocks/\
                     --reps/--tie-tol)"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    let reps = reps.max(1);
    let blocks = blocks.max(2);

    // The legacy micro-benchmark (single triple product) for continuity
    // with the paper's presentation, then the full-solve sweep.
    table6();

    println!("== Table 6 sweep: sparse vs dense coupling kernels in full RGF ==");
    println!("  ({blocks} blocks of {bs}x{bs}; best of {reps} solves per cell)");
    qt_telemetry::reset_all();
    qt_telemetry::set_enabled(true);
    qt_telemetry::set_journaling(true);

    // The whole comparison runs on ONE rayon worker: at this block size
    // the dense GEMMs sit above the parallel threshold while the CSR
    // kernels are serial, so an N-way pool would make the sweep measure
    // the machine's core count instead of per-kernel data movement.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("single-thread rayon pool");

    // Calibrate machine rates once; the selector then routes every coupling
    // block by measured density against the predicted crossover.
    let cal = pool.install(|| qt_model::calibrate_kernels(bs, 0.08));
    let auto = cal.strategy(0.1);
    let crossover = cal.crossover();
    println!(
        "  calibration: dense {:.2} Gflop/s, sparse {:.2} Gflop/s -> crossover density {:.3}",
        cal.dense_rate / 1e9,
        cal.sparse_rate / 1e9,
        crossover
    );

    let densities = [0.002f64, 0.01, 0.05, 0.1, 0.2, 0.4, 0.7];
    println!(
        "  {:<8} {:>10} {:>10} {:>10} | {:>9} {:>9} {:>6}",
        "density", "dense ms", "csrmm ms", "auto ms", "empirical", "selector", "agree"
    );
    let mut failures: Vec<String> = Vec::new();
    let mut rows: Vec<Json> = Vec::new();
    pool.install(|| {
        // Prime the worker before the first gated cell: the first solves on
        // this thread grow the workspace pools and fault in their pages, and
        // the first timed density is also the one the >=1.5x gate reads, so
        // without this the coldest cell and the strictest check coincide.
        {
            let (a, sig) = qt_bench::sparse_rgf_problem(blocks, bs, densities[0], 100);
            qt_telemetry::set_enabled(false);
            for _ in 0..2 {
                rgf::rgf_with_strategy(&a, &sig, MultiplyStrategy::Dense).expect("rgf");
                rgf::rgf_with_strategy(&a, &sig, MultiplyStrategy::Csrmm { threshold: 0.0 })
                    .expect("rgf");
            }
            qt_telemetry::set_enabled(true);
        }
        for (di, &density) in densities.iter().enumerate() {
            let (a, sig) = qt_bench::sparse_rgf_problem(blocks, bs, density, 100 + di as u64);

            // Observables must be kernel-independent to 1e-10 (the whole point
            // of an exact sparse path: same math, less data movement).
            let reference = rgf::rgf_with_strategy(&a, &sig, MultiplyStrategy::Dense).expect("rgf");
            let sel = KernelSelector::new(blocks - 1);
            for (name, strat, s) in [
                ("csrmm", MultiplyStrategy::Csrmm { threshold: 0.0 }, None),
                ("auto", auto, Some(&sel)),
            ] {
                let out = rgf::rgf_with_selector(&a, &sig, strat, s).expect("rgf");
                let mut err = 0.0f64;
                for n in 0..blocks {
                    err = err
                        .max(reference.gr_diag[n].max_abs_diff(&out.gr_diag[n]))
                        .max(reference.gl_diag[n].max_abs_diff(&out.gl_diag[n]))
                        .max(reference.gg_diag[n].max_abs_diff(&out.gg_diag[n]));
                }
                if err > 1e-10 {
                    failures.push(format!(
                    "density {density}: {name} observables diverge from dense by {err:.2e} > 1e-10"
                ));
                }
            }

            // The correctness pass above already fed the journal and the
            // selection counters; run the timed cells with telemetry off so
            // per-op instrumentation doesn't distort the kernel comparison.
            // The three variants are interleaved rep by rep (best-of-reps per
            // variant) so slow machine phases hit all of them alike instead of
            // biasing whichever variant owned that wall-clock window.
            qt_telemetry::set_enabled(false);
            let run_dense = || {
                rgf::rgf_with_strategy(&a, &sig, MultiplyStrategy::Dense).expect("rgf");
            };
            let run_sparse = || {
                rgf::rgf_with_strategy(&a, &sig, MultiplyStrategy::Csrmm { threshold: 0.0 })
                    .expect("rgf");
            };
            let run_auto = || {
                rgf::rgf_with_selector(&a, &sig, auto, Some(&sel)).expect("rgf");
            };
            let (mut dense_ms, mut sparse_ms, mut auto_ms) =
                (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            run_dense();
            run_sparse();
            run_auto();
            let once = |f: &dyn Fn()| {
                let t = Instant::now();
                f();
                t.elapsed().as_secs_f64() * 1e3
            };
            for _ in 0..reps {
                dense_ms = dense_ms.min(once(&run_dense));
                sparse_ms = sparse_ms.min(once(&run_sparse));
                auto_ms = auto_ms.min(once(&run_auto));
            }
            qt_telemetry::set_enabled(true);

            // Every coupling in this device has the same density, so the
            // selector should have settled on one kernel for all of them.
            let picked_sparse = (0..blocks - 1)
                .filter(|&n| sel.choice(n) == Some(true))
                .count();
            let selector_sparse = picked_sparse * 2 > blocks - 1;
            let empirical_sparse = sparse_ms < dense_ms;
            let tie = (dense_ms - sparse_ms).abs() < tie_tol * dense_ms.min(sparse_ms);
            let agree = tie || selector_sparse == empirical_sparse;
            println!(
                "  {:<8.3} {:>10.2} {:>10.2} {:>10.2} | {:>9} {:>9} {:>6}",
                density,
                dense_ms,
                sparse_ms,
                auto_ms,
                if empirical_sparse { "sparse" } else { "dense" },
                if selector_sparse { "sparse" } else { "dense" },
                if agree {
                    if tie {
                        "tie"
                    } else {
                        "yes"
                    }
                } else {
                    "NO"
                }
            );
            if !agree {
                failures.push(format!(
                    "density {density}: selector picked {} but {} was empirically faster \
                 (dense {dense_ms:.2} ms vs sparse {sparse_ms:.2} ms)",
                    if selector_sparse { "sparse" } else { "dense" },
                    if empirical_sparse { "sparse" } else { "dense" }
                ));
            }
            if di == 0 && dense_ms < 1.5 * sparse_ms {
                failures.push(format!(
                "density {density}: sparse speedup {:.2}x < required 1.5x at the sparsest point",
                dense_ms / sparse_ms
            ));
            }
            if di == densities.len() - 1 && sparse_ms < dense_ms {
                failures.push(format!(
                    "density {density}: dense should win at the densest point \
                 (dense {dense_ms:.2} ms vs sparse {sparse_ms:.2} ms)"
                ));
            }
            rows.push(Json::Obj(vec![
                ("density".to_string(), Json::Num(density)),
                ("dense_ms".to_string(), Json::Num(dense_ms)),
                ("sparse_ms".to_string(), Json::Num(sparse_ms)),
                ("auto_ms".to_string(), Json::Num(auto_ms)),
                (
                    "speedup_vs_dense".to_string(),
                    Json::Num(dense_ms / sparse_ms),
                ),
                (
                    "selector_sparse".to_string(),
                    Json::Num(if selector_sparse { 1.0 } else { 0.0 }),
                ),
                (
                    "empirical_sparse".to_string(),
                    Json::Num(if empirical_sparse { 1.0 } else { 0.0 }),
                ),
                ("tie".to_string(), Json::Num(if tie { 1.0 } else { 0.0 })),
            ]));
        }
    });
    println!(
        "  (empirical = faster of the forced runs; agree gates the selector, with ties \
         within {:.0}% tolerated)",
        tie_tol * 100.0
    );

    let doc = Json::Obj(vec![
        ("block_size".to_string(), Json::Num(bs as f64)),
        ("blocks".to_string(), Json::Num(blocks as f64)),
        ("reps".to_string(), Json::Num(reps as f64)),
        ("dense_rate".to_string(), Json::Num(cal.dense_rate)),
        ("sparse_rate".to_string(), Json::Num(cal.sparse_rate)),
        ("crossover_density".to_string(), Json::Num(crossover)),
        ("rows".to_string(), Json::Arr(rows)),
    ]);
    std::fs::write(&out_path, doc.dump()).expect("write table6 json");
    println!("  results written to {out_path}");

    if let Some(path) = &report_path {
        let mut rep = qt_telemetry::TelemetryReport::from_current();
        if let Some(k) = rep.kernel_selection.as_mut() {
            k.crossover_density = crossover;
        }
        if let Err(e) = rep.validate() {
            eprintln!("table6 report FAILED validation: {e}");
            std::process::exit(1);
        }
        std::fs::write(path, rep.to_json()).expect("write report");
        let k = rep.kernel_selection.as_ref().expect("auto runs recorded");
        println!(
            "  report written to {path} (selections: {} sparse / {} dense, {} switches; \
             measured sparse {:.1} ms vs predicted {:.1} ms)",
            k.sparse_selected,
            k.dense_selected,
            k.switches,
            k.sparse_secs * 1e3,
            k.predicted_sparse_secs * 1e3
        );
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("table6 FAILED: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "  gate OK: observables kernel-independent to 1e-10, sparse >= 1.5x at the \
         sparsest density, dense wins at the densest, selector matches the empirical \
         winner at every swept density\n"
    );
}

fn table7() {
    println!("== Table 7: single-node runtime by implementation variant ==");
    println!("  (reduced scale: NA=32, NE=32, Norb=4; paper ran 1/112 of NA=4,864)");
    let fx = BenchFixture::new(bench_params());
    let inputs = fx.sse_inputs();
    // GF phase timing (same code for all variants; the paper's GF spread
    // comes from library quality, which does not exist in a single binary).
    let gf_ms = time_ms(3, || {
        qt_core::gf::electron_gf_phase(
            &fx.dev,
            &fx.em,
            &fx.p,
            &fx.grids,
            &qt_core::gf::ElectronSelfEnergy::zeros(&fx.p),
            &fx.cfg,
        )
        .unwrap()
    });
    let t_ref = time_ms(3, || sse::sigma(&inputs, SseVariant::Reference));
    let t_omen = time_ms(3, || sse::sigma(&inputs, SseVariant::Omen));
    let t_dace = time_ms(3, || sse::sigma(&inputs, SseVariant::Dace));
    println!("  {:<22} {:>10} {:>12}", "phase/variant", "ms", "vs DaCe");
    println!("  {:<22} {:>10.1} {:>12}", "GF (RGF+boundary)", gf_ms, "-");
    println!(
        "  {:<22} {:>10.1} {:>11.1}x",
        "SSE reference (Python)",
        t_ref,
        t_ref / t_dace
    );
    println!(
        "  {:<22} {:>10.1} {:>11.1}x",
        "SSE OMEN",
        t_omen,
        t_omen / t_dace
    );
    println!("  {:<22} {:>10.1} {:>11.1}x", "SSE DaCe", t_dace, 1.0);
    println!(
        "  paper ratios (vs DaCe): Python 315.7x, OMEN 9.97x — the compiled-vs-\n  \
         interpreted gap shrinks to allocation/batching effects in a single Rust binary\n"
    );
}

fn table8() {
    println!("== Table 8: Summit performance on 10,240 atoms (model) ==");
    println!(
        "  {:<4} {:>6} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>8} {:>8}",
        "Nkz", "nodes", "GF Pf", "paper", "t[s]", "SSE Pf", "paper", "t[s]", "comm[s]", "paper"
    );
    for (nkz, nodes, gf_pf, gf_t, sse_pf, sse_t, comm_t) in [
        (11usize, 1852usize, 2922.0, 75.84, 490.0, 95.46, 44.02),
        (15, 2580, 3985.0, 75.90, 910.0, 116.67, 43.93),
        (21, 1763, 5579.0, 150.38, 1784.0, 346.56, 121.91),
        (21, 3525, 5579.0, 76.09, 1784.0, 175.15, 122.35),
    ] {
        let r = scaling::extreme_run(nkz, nodes, &SUMMIT);
        println!(
            "  {:<4} {:>6} | {:>8.0} {:>8.0} {:>8.1} | {:>8.0} {:>8.0} {:>8.1} | {:>8.1} {:>8.2}",
            nkz,
            nodes,
            r.gf_pflop,
            gf_pf,
            r.gf_time,
            r.sse_pflop,
            sse_pf,
            r.sse_time,
            r.comm_time,
            comm_t
        );
        let _ = (gf_t, sse_t);
    }
    println!("  (GF Pflop: calibrated on the 4,864-atom geometry — magnitude-level)\n");
}

fn fig13() {
    println!("== Fig. 13: strong/weak scaling model ==");
    let p = SimParams::paper_si_4864(7);
    for (m, nodes) in [
        (&PIZ_DAINT, vec![112usize, 224, 448, 896, 1792, 2700, 5400]),
        (&SUMMIT, vec![19, 38, 76, 152, 228]),
    ] {
        println!("  {} strong scaling (NA=4,864, Nkz=7):", m.name);
        println!(
            "    {:>6} {:>7} | {:>10} {:>10} | {:>10} {:>10} | {:>8}",
            "nodes", "GPUs", "OMEN comp", "OMEN comm", "DaCe comp", "DaCe comm", "speedup"
        );
        for &n in &nodes {
            let o = scaling::predict(&p, m, n, Variant::Omen);
            let d = scaling::predict(&p, m, n, Variant::Dace);
            println!(
                "    {:>6} {:>7} | {:>9.1}s {:>9.1}s | {:>9.1}s {:>9.1}s | {:>7.1}x",
                n,
                m.gpus(n),
                o.compute(),
                o.t_comm,
                d.compute(),
                d.t_comm,
                o.total() / d.total()
            );
        }
    }
    println!("  paper headline speedups: 16.3x total / 417x comm (Daint), 24.5x / 79.7x (Summit)");
    // Weak scaling series.
    let base = SimParams::paper_si_4864(3);
    for (m, npk) in [(&PIZ_DAINT, 128usize), (&SUMMIT, 22usize)] {
        println!("  {} weak scaling (nodes ∝ Nkz):", m.name);
        let omen = scaling::weak_scaling(&base, m, &[3, 5, 7, 9, 11], npk, Variant::Omen);
        let dace = scaling::weak_scaling(&base, m, &[3, 5, 7, 9, 11], npk, Variant::Dace);
        for (o, d) in omen.iter().zip(&dace) {
            println!(
                "    Nkz={:<2} nodes={:<5} OMEN {:>9.1}s  DaCe {:>8.1}s  ({:>5.1}x)",
                o.0,
                o.1.nodes,
                o.1.times.total(),
                d.1.times.total(),
                o.1.times.total() / d.1.times.total()
            );
        }
    }
    // Tiling the model picked at one configuration.
    if let Some(t) = optimal_tiling(&p, 1792) {
        println!(
            "  optimal tiling at P=1792: TE={}, TA={} ({:.2} TiB — Table 5's tiling)",
            t.te,
            t.ta,
            t.total_bytes / TIB
        );
    }
    println!();
}

fn fig1d() {
    println!("== Fig. 1(d): atomically-resolved self-heating (reduced scale) ==");
    use qt_core::scf::{run_scf, ScfConfig, Simulation};
    let p = SimParams {
        nkz: 3,
        nqz: 3,
        ne: 24,
        nw: 4,
        na: 48,
        nb: 4,
        norb: 2,
        bnum: 12,
    };
    let sim = Simulation::new(p, -1.2, 1.2);
    let mut cfg = ScfConfig {
        max_iterations: 30,
        tolerance: 1e-6,
        ..Default::default()
    };
    cfg.gf.contacts.mu_left = 0.35;
    cfg.gf.contacts.mu_right = -0.35;
    let out = run_scf(&sim, &cfg).expect("SCF");
    let power = qt_core::observables::dissipated_power_per_atom(
        &sim.p,
        &sim.grids,
        &out.sigma,
        &out.electron,
    );
    let temp = qt_core::observables::temperature_map(&power, 300.0, 100.0);
    let apb = sim.dev.atoms_per_slab;
    print!("  slab <T>[K]:");
    for s in 0..p.bnum {
        let t: f64 = (s * apb..(s + 1) * apb).map(|a| temp[a]).sum::<f64>() / apb as f64;
        print!(" {t:.0}");
    }
    println!(
        "\n  converged={} iters={} I={:.4}  (non-uniform heating profile reproduced)\n",
        out.converged,
        out.iterations,
        out.current_history.last().unwrap()
    );
}

/// End-to-end instrumented run: SCF with the DaCe SSE kernel, one pass of
/// the OMEN and reference kernels, and both distributed communication
/// schemes — all with telemetry enabled — followed by a
/// measured-vs-model reconciliation (Tables 3–5) and optional trace/report
/// export.
fn profile(flags: &[String]) {
    use qt_core::checkpoint::{CheckpointConfig, ScfCheckpoint};
    use qt_core::scf::{run_scf_resumable, ScfConfig, Simulation};
    use qt_telemetry::report::{ConvergencePoint, ModelResidual, RankComm};

    let mut trace_path: Option<String> = None;
    let mut report_path: Option<String> = None;
    let mut checkpoint_path: Option<String> = None;
    let mut resume_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut postmortem_path: Option<String> = None;
    let mut chaos_kill: Option<usize> = None;
    let mut i = 0;
    while i < flags.len() {
        let need = |what: &str| {
            flags.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        match flags[i].as_str() {
            "--trace" => trace_path = Some(need("--trace")),
            "--report" => report_path = Some(need("--report")),
            "--checkpoint" => checkpoint_path = Some(need("--checkpoint")),
            "--resume" => resume_path = Some(need("--resume")),
            "--metrics-out" => metrics_path = Some(need("--metrics-out")),
            "--postmortem" => postmortem_path = Some(need("--postmortem")),
            "--chaos-kill" => {
                let rank = need("--chaos-kill").parse().unwrap_or_else(|_| {
                    eprintln!("--chaos-kill needs a rank number");
                    std::process::exit(2);
                });
                chaos_kill = Some(rank);
            }
            other => {
                eprintln!(
                    "unknown profile flag {other:?} \
                     (expected --trace/--report/--checkpoint/--resume/\
                     --metrics-out/--postmortem/--chaos-kill)"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    #[cfg(not(feature = "fault-inject"))]
    if chaos_kill.is_some() {
        eprintln!("--chaos-kill requires building with --features fault-inject");
        std::process::exit(2);
    }
    if chaos_kill.is_some() && postmortem_path.is_none() {
        postmortem_path = Some("POSTMORTEM.json".into());
    }

    println!("== profile: instrumented end-to-end pipeline ==");
    qt_telemetry::reset_all();
    qt_telemetry::set_enabled(true);
    qt_telemetry::set_tracing(trace_path.is_some());
    // The flight recorder and the metrics time-series ride every profile
    // run: both are ring-buffered, allocation-free on the warm path, and
    // leave the observables bitwise identical.
    qt_telemetry::set_journaling(true);
    qt_telemetry::set_series_enabled(true);
    if let Some(path) = &postmortem_path {
        qt_telemetry::postmortem::install_panic_hook(std::path::PathBuf::from(path));
    }

    // Laptop-sized structure-preserving configuration: every phase of the
    // full pipeline runs, every closed-form model stays exact.
    let p = SimParams {
        nkz: 2,
        nqz: 2,
        ne: 24,
        nw: 3,
        na: 12,
        nb: 3,
        norb: 2,
        bnum: 4,
    };
    let sim = Simulation::new(p, -1.2, 1.2);
    let cfg = ScfConfig {
        max_iterations: 4,
        ..Default::default()
    };
    let ckpt_cfg = checkpoint_path.as_ref().map(|path| CheckpointConfig {
        path: path.into(),
        every: 1,
    });
    let resume = resume_path.as_ref().map(|path| {
        let ck = ScfCheckpoint::load(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot load checkpoint {path}: {e}");
            std::process::exit(1);
        });
        println!("  resuming SCF from {path} at iteration {}", ck.iteration);
        ck
    });
    let out = run_scf_resumable(&sim, &cfg, ckpt_cfg.as_ref(), resume).expect("SCF");
    println!(
        "  SCF: {} iterations, converged={}, I={:.4e}",
        out.iterations,
        out.converged,
        out.current_history.last().copied().unwrap_or(0.0)
    );
    if let Some(c) = &ckpt_cfg {
        println!("  checkpoints written to {}", c.path.display());
    }

    // One pass of the other two SSE variants so all three kernels appear
    // in the phase table and the OMEN flop model can be reconciled.
    let (dl, dg) = qt_core::sse::preprocess_d(&sim.dev, &p, &out.phonon);
    let inputs = sse::SseInputs {
        dev: &sim.dev,
        p: &p,
        grids: &sim.grids,
        dh: &sim.dh,
        g_lesser: &out.electron.g_lesser,
        g_greater: &out.electron.g_greater,
        d_lesser_pre: &dl,
        d_greater_pre: &dg,
    };
    let _ = sse::sigma(&inputs, SseVariant::Omen);
    let _ = sse::sigma(&inputs, SseVariant::Reference);

    // Both distributed SSE schemes, with per-rank byte accounting.
    let ctx = qt_dist::schemes::SseDistContext {
        p: &p,
        dev: &sim.dev,
        grids: &sim.grids,
        dh: &sim.dh,
        g_lesser: &out.electron.g_lesser,
        g_greater: &out.electron.g_greater,
        d_lesser_pre: &dl,
        d_greater_pre: &dg,
    };
    let omen_procs = 4;
    let (_, _, omen_stats) = qt_dist::schemes::omen_scheme(&ctx, omen_procs);
    let (te, ta) = (2usize, 2usize);
    let dist = qt_dist::runner::distributed_iteration(
        &p, &sim.dev, &sim.em, &sim.pm, &sim.grids, &cfg.gf, te, ta,
    )
    .expect("distributed iteration");
    // One fault-free pass through the elastic (heartbeat-supervised)
    // iteration so the elasticity counters and the elastic volume model
    // are exercised by every profile run.
    let elastic = qt_dist::runner::distributed_iteration_elastic(
        &p,
        &sim.dev,
        &sim.em,
        &sim.pm,
        &sim.grids,
        &cfg.gf,
        te,
        ta,
        &qt_dist::runner::ElasticPolicy::default(),
    )
    .expect("elastic distributed iteration");
    assert!(!elastic.degraded, "fault-free elastic run must not degrade");

    // One stealing pass over a deliberately collapsed tiling (all units
    // on rank 0, three idle thieves) so the steal protocol — and its
    // REQ->GRANT->RESULT trace flow arcs — shows up in every profile.
    // Grants depend on poll timing, so retry the pass a few times; the
    // observables stay bitwise identical either way.
    {
        let live = qt_dist::LivenessConfig::default();
        let tiling = qt_dist::ElasticTiling::weighted(&p, te, ta, te * ta, &[0.0; 4]);
        let mut steal_requests = 0u64;
        let mut stolen = 0u64;
        for _ in 0..5 {
            let (_, _, stats) = qt_dist::elastic_sse_exchange_opts(&ctx, &tiling, &live, true)
                .expect("stealing elastic exchange");
            let bal = stats.balance.expect("balance measured");
            steal_requests += bal.steal_requests;
            stolen += bal.stolen_units;
            if stolen > 0 {
                break;
            }
        }
        println!("  stealing pass: {steal_requests} requests, {stolen} units stolen");
        assert!(
            stolen > 0,
            "three idle ranks must manage at least one steal"
        );
    }

    // Scheduled chaos: kill the requested rank on its third SSE send and
    // let the elastic supervisor ride the recovery. The flight recorder
    // captures the HeartbeatTimeout -> RankDeath -> Retile chain, which
    // lands in the postmortem dump below.
    #[cfg(feature = "fault-inject")]
    let chaos_outcome = chaos_kill.map(|victim| {
        let procs = te * ta;
        assert!(
            victim < procs,
            "--chaos-kill rank {victim} outside world {procs}"
        );
        println!("  chaos: killing rank {victim} (world {procs}) mid-iteration");
        let plan = qt_dist::FaultPlan::new(42).with_kill_at(victim, 3);
        let policy = qt_dist::runner::ElasticPolicy {
            max_bad_fraction: 1.0 / procs as f64,
            ..Default::default()
        };
        let el = qt_dist::runner::distributed_iteration_elastic_with_faults(
            &p, &sim.dev, &sim.em, &sim.pm, &sim.grids, &cfg.gf, te, ta, &policy, plan,
        )
        .expect("elastic recovery from the scheduled kill");
        println!(
            "  chaos: deaths={:?} retiles={} migrated={} degraded={}",
            el.deaths, el.retiles, el.migrated_units, el.degraded
        );
        el
    });

    // ---- Reconcile measurements against the models. ----
    let mut rep = qt_telemetry::TelemetryReport::from_current();
    let stat = |path: &str| qt_telemetry::registry::phase(path).unwrap_or_default();

    // Flops: implementation-exact forms (residual must vanish) and the
    // paper's Table 3 asymptotics (informational at reduced scale).
    let dace_stat = stat("sse/sigma/dace");
    let omen_stat = stat("sse/sigma/omen");
    let dace_exact = flops::sse_dace_flops_exact(&p, &sim.dev) as f64;
    let omen_exact = flops::sse_omen_flops_exact(&p, &sim.dev) as f64;
    rep.residuals.push(ModelResidual::new(
        "sse_dace_flops_vs_exact",
        dace_stat.flops as f64,
        dace_stat.calls as f64 * dace_exact,
        true,
    ));
    rep.residuals.push(ModelResidual::new(
        "sse_omen_flops_vs_exact",
        omen_stat.flops as f64,
        omen_stat.calls as f64 * omen_exact,
        true,
    ));
    rep.residuals.push(ModelResidual::new(
        "sse_dace_flops_vs_table3",
        dace_stat.flops as f64 / dace_stat.calls.max(1) as f64,
        flops::sse_dace_flops(&p),
        false,
    ));
    rep.residuals.push(ModelResidual::new(
        "sse_omen_flops_vs_table3",
        omen_stat.flops as f64 / omen_stat.calls.max(1) as f64,
        flops::sse_omen_flops(&p),
        false,
    ));

    // Communication volume: the per-scheme exact closed forms (Table 4/5
    // machinery evaluated on the real decomposition) and the asymptotics.
    let halo = sim.dev.max_neighbor_index_distance();
    rep.residuals.push(ModelResidual::new(
        "omen_comm_bytes_vs_exact",
        omen_stats.world_bytes as f64,
        volume::omen_measured_bytes(&p, omen_procs) as f64,
        true,
    ));
    rep.residuals.push(ModelResidual::new(
        "dace_comm_bytes_vs_exact",
        dist.sse_bytes as f64,
        volume::dace_measured_bytes(&p, te, ta, halo) as f64,
        true,
    ));
    rep.residuals.push(ModelResidual::new(
        "dace_elastic_comm_bytes_vs_exact",
        elastic.result.sse_bytes as f64,
        volume::dace_elastic_measured_bytes(&p, halo, &qt_dist::ElasticTiling::new(&p, te, ta))
            as f64,
        true,
    ));
    rep.residuals.push(ModelResidual::new(
        "omen_comm_bytes_vs_table45",
        omen_stats.world_bytes as f64,
        volume::omen_total_bytes(&p, omen_procs),
        false,
    ));
    rep.residuals.push(ModelResidual::new(
        "dace_comm_bytes_vs_table45",
        dist.sse_bytes as f64,
        volume::dace_total_bytes(&p, te, ta),
        false,
    ));

    // Convergence trajectory and per-rank communication volumes.
    for r in &out.trajectory {
        rep.convergence.push(ConvergencePoint {
            iteration: r.iteration,
            residual: r.residual,
            mixing: r.mixing,
            wall_ms: r.wall_seconds * 1e3,
            current: r.current,
            alloc_bytes: r.alloc_bytes,
        });
    }
    rep.warmup = qt_telemetry::report::WarmupStats::from_convergence(&rep.convergence);
    for (rank, (&sent, &recv)) in dist
        .comm
        .rank_sent
        .iter()
        .zip(&dist.comm.rank_recv)
        .enumerate()
    {
        rep.comm.push(RankComm {
            rank,
            sent_bytes: sent,
            recv_bytes: recv,
        });
    }
    // Per-rank busy times of the elastic iteration → the report's balance
    // block (`check-report --require-balance` gates on its ratio).
    let busy = elastic
        .result
        .comm
        .balance
        .as_ref()
        .expect("elastic exchange measures balance");
    rep.balance = Some(qt_telemetry::BalanceReport::from_busy_times(
        busy.rank_busy_secs.iter().map(|s| s * 1e3).collect(),
        busy.imbalance_ratio(),
    ));

    if let Err(e) = rep.validate() {
        eprintln!("profile report FAILED validation: {e}");
        std::process::exit(1);
    }

    // ---- Human-readable summary. ----
    println!(
        "  {:<22} {:>6} {:>10} {:>10} {:>9} {:>12}",
        "phase", "calls", "wall ms", "Gflop", "GF/s", "bytes"
    );
    let mut phases = rep.phases.clone();
    phases.sort_by(|a, b| b.wall_ms.partial_cmp(&a.wall_ms).unwrap());
    for ph in &phases {
        println!(
            "  {:<22} {:>6} {:>10.2} {:>10.3} {:>9.2} {:>12}",
            ph.path, ph.calls, ph.wall_ms, ph.gflop, ph.gflop_per_s, ph.bytes
        );
    }
    println!(
        "  {:<28} {:>14} {:>14} {:>11}",
        "residual", "measured", "model", "rel err"
    );
    for r in &rep.residuals {
        println!(
            "  {:<28} {:>14.4e} {:>14.4e} {:>10.2e}{}",
            r.name,
            r.measured,
            r.model,
            r.rel_error,
            if r.exact { " (exact)" } else { "" }
        );
    }
    // Per-iteration allocator traffic: the cold-vs-warm gap is the payoff
    // of the workspace arenas and the boundary cache.
    println!(
        "  {:<6} {:>10} {:>14} {:>10} {:>10}",
        "iter", "wall ms", "alloc bytes", "ws miss", "bc miss"
    );
    for r in &out.trajectory {
        println!(
            "  {:<6} {:>10.2} {:>14} {:>10} {:>10}",
            r.iteration,
            r.wall_seconds * 1e3,
            r.alloc_bytes,
            r.ws_fresh,
            r.boundary_misses
        );
    }
    if let Some(w) = &rep.warmup {
        println!(
            "  warmup: cold {:.2} ms / warm {:.2} ms ({:.2}x), alloc {} -> {} bytes ({:.1}% reduction)",
            w.cold_wall_ms,
            w.warm_wall_ms,
            w.wall_speedup,
            w.cold_alloc_bytes,
            w.warm_alloc_bytes,
            100.0 * w.alloc_reduction
        );
    }
    println!(
        "  boundary cache: {} hits, {} misses",
        rep.boundary_cache_hits, rep.boundary_cache_misses
    );
    if let Some(h) = &rep.health {
        println!(
            "  health: {} quarantined, {} eta retries, {} mixing backoffs, \
             {} comm retries, {} checkpoint writes",
            h.quarantined_points,
            h.eta_retries,
            h.mixing_backoffs,
            h.comm_retries,
            h.checkpoint_writes
        );
    }
    if let Some(e) = &rep.elasticity {
        println!(
            "  elasticity: {} rank deaths, {} heartbeat probe timeouts, \
             {} re-tilings, {} tiles migrated",
            e.rank_deaths, e.heartbeat_timeouts, e.retile_events, e.migrated_tiles
        );
    }
    if let Some(b) = &rep.balance {
        println!("  {:<6} {:>14}", "rank", "busy ms");
        for (rank, ms) in b.rank_busy_ms.iter().enumerate() {
            println!("  {rank:<6} {ms:>14.3}");
        }
        println!(
            "  imbalance ratio (max/mean busy): {:.3} — {} steal requests, \
             {} units stolen, {} re-tilings ({} units moved)",
            b.imbalance_ratio, b.steal_requests, b.stolen_units, b.rebalance_events, b.moved_units
        );
    }
    println!(
        "  totals: {:.3} Gflop counted, {} bytes communicated",
        rep.total_flops as f64 / 1e9,
        rep.total_bytes
    );

    if let Some(j) = &rep.journal {
        let top: Vec<String> = j
            .by_kind
            .iter()
            .map(|(tag, n)| format!("{tag}:{n}"))
            .collect();
        println!(
            "  journal: {} events recorded, {} dropped [{}]",
            j.events,
            j.dropped,
            top.join(" ")
        );
    }
    if let Some(s) = &rep.series {
        println!(
            "  series: {} samples, {} dropped",
            s.samples.len(),
            s.dropped
        );
    }

    if let Some(path) = &report_path {
        std::fs::write(path, rep.to_json()).expect("write report");
        println!("  report written to {path}");
    }
    if let Some(path) = &metrics_path {
        std::fs::write(path, qt_telemetry::series::render_prometheus()).expect("write metrics");
        println!("  metrics written to {path}");
    }
    if let Some(path) = &trace_path {
        let trace = qt_telemetry::export_chrome_trace();
        let events = match qt_telemetry::trace::validate_chrome_trace(&trace) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("trace validation FAILED: {e}");
                std::process::exit(2);
            }
        };
        std::fs::write(path, trace).expect("write trace");
        println!("  trace written to {path} ({events} events)");
    }
    // Postmortem: a supervisor-observed rank death or a degraded
    // completion drains the flight recorder into a versioned dump with
    // the final report snapshot attached.
    #[cfg(feature = "fault-inject")]
    if let Some(el) = &chaos_outcome {
        if !el.deaths.is_empty() || el.degraded {
            let path = postmortem_path.as_deref().unwrap_or("POSTMORTEM.json");
            let reason = if el.degraded {
                "degraded_completion"
            } else {
                "rank_death"
            };
            let detail = format!(
                "deaths={:?} retiles={} migrated_units={}",
                el.deaths, el.retiles, el.migrated_units
            );
            let pm = qt_telemetry::Postmortem::capture(reason, &detail, Some(rep.clone()));
            pm.save(std::path::Path::new(path))
                .expect("write postmortem");
            println!("  postmortem written to {path}");
        }
    }
    println!();
}

/// Pretty-print the causal timeline of a postmortem dump written by a
/// crashed or chaos-injected `profile` run, classifying unreadable files
/// with a typed error. Exit 0 on a readable dump, 1 on a bad one.
fn postmortem_cmd(flags: &[String]) {
    let Some(path) = flags.first() else {
        eprintln!("usage: reproduce postmortem <POSTMORTEM.json>");
        std::process::exit(2);
    };
    if let Some(extra) = flags.get(1) {
        eprintln!(
            "unknown postmortem flag {extra:?} (usage: reproduce postmortem <POSTMORTEM.json>)"
        );
        std::process::exit(2);
    }
    let pm = match qt_telemetry::Postmortem::load(std::path::Path::new(path)) {
        Ok(pm) => pm,
        Err(e) => {
            eprintln!("cannot read postmortem {path}: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", pm.timeline());
    if let Some(rep) = &pm.report {
        match rep.validate() {
            Ok(()) => println!("embedded report: valid"),
            Err(e) => {
                eprintln!("embedded report FAILED validation: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Tentpole driver (CI `serve-smoke` job): bring up the qt-serve daemon,
/// push bias sweeps through its admission path, and gate the robustness
/// story in-binary:
///
/// 1. every admitted request is answered (no hangs, no lost responses);
/// 2. a chaos rank kill mid-service leaves the sweep bitwise identical
///    to the fault-free reference (recovery never changes answers);
/// 3. an induced warm-start divergence degrades to the cold solve —
///    journaled, counted, and bitwise equal to a never-warmed reference;
/// 4. a deadlined request is cancelled cooperatively instead of hanging,
///    overrunning its budget by at most ~one solve;
/// 5. concurrent requests share the variant's warm state across the
///    worker pool.
fn serve_cmd(flags: &[String]) {
    use qt_core::scf::ScfConfig;
    use qt_serve::{ServeConfig, Service, SweepRequest, SweepStatus, VariantSpec};
    use std::time::Duration;

    let mut points = 12usize;
    let mut world = 4usize;
    let mut chaos_kill: Option<usize> = None;
    let mut diverge_point: Option<usize> = None;
    let mut report_path: Option<String> = None;
    let mut postmortem_path: Option<String> = None;
    let mut i = 0;
    while i < flags.len() {
        let need = |what: &str| {
            flags.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        let int = |what: &str| -> usize {
            need(what).parse().unwrap_or_else(|_| {
                eprintln!("{what} needs an integer");
                std::process::exit(2);
            })
        };
        match flags[i].as_str() {
            "--points" => points = int("--points"),
            "--world" => world = int("--world"),
            "--chaos-kill" => chaos_kill = Some(int("--chaos-kill")),
            "--diverge-point" => diverge_point = Some(int("--diverge-point")),
            "--report" => report_path = Some(need("--report")),
            "--postmortem" => postmortem_path = Some(need("--postmortem")),
            other => {
                eprintln!(
                    "unknown serve flag {other:?} (expected --points/--world/--chaos-kill/\
                     --diverge-point/--report/--postmortem)"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    #[cfg(not(feature = "fault-inject"))]
    if chaos_kill.is_some() {
        eprintln!("--chaos-kill requires building with --features fault-inject");
        std::process::exit(2);
    }
    let points = points.max(2);
    let world = world.max(1);

    println!("== serve: fault-tolerant batched sweep service ==");
    qt_telemetry::reset_all();
    qt_telemetry::set_enabled(true);
    qt_telemetry::set_journaling(true);

    // Laptop-sized variant; the sweep spans a low-bias IV window.
    let variant = || VariantSpec {
        params: SimParams {
            nkz: 2,
            nqz: 2,
            ne: 10,
            nw: 2,
            na: 8,
            nb: 3,
            norb: 2,
            bnum: 4,
        },
        emin: -1.2,
        emax: 1.2,
        cfg: ScfConfig {
            max_iterations: 40,
            tolerance: 1e-7,
            ..Default::default()
        },
    };
    let fresh = |world: usize| {
        Service::start(
            vec![variant()],
            ServeConfig {
                workers: 2,
                pool_slots: world,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| {
            eprintln!("serve FAILED: variant registration rejected: {e}");
            std::process::exit(1);
        })
    };
    let biases: Vec<f64> = (0..points).map(|i| 0.05 + 0.01 * i as f64).collect();
    let wait = Duration::from_secs(600);
    let completed = |status: SweepStatus, what: &str| -> Vec<qt_serve::PointResult> {
        match status {
            SweepStatus::Completed { points } => points,
            other => {
                eprintln!("serve FAILED: {what} did not complete: {other:?}");
                std::process::exit(1);
            }
        }
    };

    // ---- Gate 1: fault-free reference sweep, every response arrives. ----
    let t0 = Instant::now();
    let reference = {
        let svc = fresh(world);
        let t = svc
            .submit(SweepRequest::new(0, biases.clone()))
            .expect("admit reference sweep");
        let resp = t.wait_timeout(wait).unwrap_or_else(|| {
            eprintln!("serve FAILED: reference sweep unanswered after {wait:?}");
            std::process::exit(1);
        });
        svc.shutdown();
        completed(resp.status, "reference sweep")
    };
    let ref_ms = t0.elapsed().as_secs_f64() * 1e3;
    let per_point = Duration::from_secs_f64(t0.elapsed().as_secs_f64() / points as f64);
    println!(
        "  {:<8} {:>12} {:>6} {:>6} {:>9}",
        "bias V", "current", "iters", "warm", "degraded"
    );
    for p in &reference {
        println!(
            "  {:<8.3} {:>12.4e} {:>6} {:>6} {:>9}",
            p.bias, p.current, p.iterations, p.warm_started, p.degraded_to_cold
        );
    }
    println!("  reference: {points} points in {ref_ms:.0} ms, all answered");

    // ---- Gate 2: rank kill mid-service is bitwise invisible. ----
    {
        let svc = fresh(world);
        let req = SweepRequest {
            chaos_kill_rank: chaos_kill,
            ..SweepRequest::new(0, biases.clone())
        };
        let t = svc.submit(req).expect("admit chaos sweep");
        let resp = t.wait_timeout(wait).unwrap_or_else(|| {
            eprintln!("serve FAILED: chaos sweep unanswered after {wait:?}");
            std::process::exit(1);
        });
        let chaos = completed(resp.status, "chaos sweep");
        let retired = world - svc.pool().capacity();
        for (a, b) in reference.iter().zip(&chaos) {
            if a.current.to_bits() != b.current.to_bits() {
                eprintln!(
                    "serve FAILED: chaos sweep diverged at bias {} V: {:e} vs {:e}",
                    a.bias, a.current, b.current
                );
                std::process::exit(1);
            }
        }
        match chaos_kill {
            Some(victim) => {
                if retired == 0 {
                    eprintln!("serve FAILED: chaos kill of rank {victim} retired no pool slots");
                    std::process::exit(1);
                }
                println!(
                    "  chaos: rank {victim} killed, {retired} slot(s) retired from the pool, \
                     sweep bitwise identical to fault-free reference"
                );
                // The rank death is a reportable incident: drain the flight
                // recorder into a postmortem for the CI artifact.
                let path = postmortem_path
                    .clone()
                    .unwrap_or_else(|| "POSTMORTEM.json".into());
                let pm = qt_telemetry::Postmortem::capture(
                    "rank_death",
                    &format!("serve chaos probe: victim={victim} retired={retired} world={world}"),
                    Some(qt_telemetry::TelemetryReport::from_current()),
                );
                pm.save(std::path::Path::new(&path))
                    .expect("write postmortem");
                println!("  postmortem written to {path}");
            }
            None => println!("  repeat sweep bitwise identical to reference (determinism gate)"),
        }
        svc.shutdown();
    }

    // ---- Gate 3: induced divergence degrades to the cold answer. ----
    if let Some(idx) = diverge_point {
        let idx = idx.clamp(1, points - 1); // point 0 has no warm neighbor
        let cold_ref = {
            let svc = fresh(world);
            let t = svc
                .submit(SweepRequest::new(0, vec![biases[idx]]))
                .expect("admit cold reference");
            let resp = t.wait_timeout(wait).expect("cold reference answered");
            svc.shutdown();
            completed(resp.status, "cold reference")[0].clone()
        };
        let svc = fresh(world);
        let req = SweepRequest {
            poison_warm_point: Some(idx),
            ..SweepRequest::new(0, biases.clone())
        };
        let t = svc.submit(req).expect("admit divergence sweep");
        let resp = t.wait_timeout(wait).expect("divergence sweep answered");
        svc.shutdown();
        let pts = completed(resp.status, "divergence sweep");
        let degraded = &pts[idx];
        if !(degraded.warm_started && degraded.degraded_to_cold && degraded.converged) {
            eprintln!(
                "serve FAILED: poisoned point {idx} did not take the degradation path \
                 (warm_started={} degraded={} converged={})",
                degraded.warm_started, degraded.degraded_to_cold, degraded.converged
            );
            std::process::exit(1);
        }
        if degraded.current.to_bits() != cold_ref.current.to_bits() {
            eprintln!(
                "serve FAILED: degraded point {idx} answer {:e} differs from the cold \
                 reference {:e}",
                degraded.current, cold_ref.current
            );
            std::process::exit(1);
        }
        let events = qt_telemetry::journal::drain();
        let journaled = events.iter().any(|e| {
            matches!(
                e.kind,
                qt_telemetry::EventKind::WarmFallback { point, .. } if point == idx as u64
            )
        });
        if !journaled || qt_telemetry::counters::total_service_warm_fallbacks() == 0 {
            eprintln!("serve FAILED: warm-start degradation was not journaled/counted");
            std::process::exit(1);
        }
        println!(
            "  divergence: poisoned point {idx} fell back to cold solve, answer bitwise \
             equal to cold reference, degradation journaled"
        );
    }

    // ---- Gates 4+5: deadlines cancel cooperatively; concurrent requests
    // share warm state. ----
    {
        let svc = fresh(world);
        let deadline = per_point.mul_f64(1.5).max(Duration::from_millis(5));
        let t0 = Instant::now();
        let t = svc
            .submit(SweepRequest {
                deadline: Some(deadline),
                ..SweepRequest::new(0, biases.clone())
            })
            .expect("admit deadlined sweep");
        let resp = t.wait_timeout(wait).unwrap_or_else(|| {
            eprintln!("serve FAILED: deadlined sweep unanswered (hang) after {wait:?}");
            std::process::exit(1);
        });
        let elapsed = t0.elapsed();
        let overrun_budget = deadline + per_point.mul_f64(5.0) + Duration::from_secs(1);
        match resp.status {
            SweepStatus::DeadlineExpired { completed } => {
                if elapsed > overrun_budget {
                    eprintln!(
                        "serve FAILED: deadline {deadline:?} overran to {elapsed:?} \
                         (budget {overrun_budget:?} ≈ deadline + one solve + slack)"
                    );
                    std::process::exit(1);
                }
                println!(
                    "  deadline: {deadline:?} budget cancelled the sweep after {} of \
                     {points} points in {:.0} ms (cooperative, bounded overrun)",
                    completed.len(),
                    elapsed.as_secs_f64() * 1e3
                );
            }
            other => {
                eprintln!("serve FAILED: deadlined sweep returned {other:?}");
                std::process::exit(1);
            }
        }

        // Concurrent burst: admitted requests batch onto the shared pool
        // and reuse the variant's warm store across requests.
        let tickets: Vec<_> = (0..3)
            .map(|k| {
                let b = vec![biases[k], biases[k + 1]];
                svc.submit(SweepRequest::new(0, b)).expect("admit burst")
            })
            .collect();
        let mut warm_points = 0usize;
        for t in tickets {
            let resp = t.wait_timeout(wait).unwrap_or_else(|| {
                eprintln!("serve FAILED: burst request unanswered after {wait:?}");
                std::process::exit(1);
            });
            warm_points += completed(resp.status, "burst sweep")
                .iter()
                .filter(|p| p.warm_started)
                .count();
        }
        if warm_points == 0 {
            eprintln!("serve FAILED: no burst point reused warm state across requests");
            std::process::exit(1);
        }
        println!("  burst: 3 concurrent sweeps answered, {warm_points} points warm-started");
        svc.shutdown();
    }

    // ---- Report with the service block (check-report --require-service). ----
    let rep = qt_telemetry::TelemetryReport::from_current();
    if let Err(e) = rep.validate() {
        eprintln!("serve report FAILED validation: {e}");
        std::process::exit(1);
    }
    let Some(s) = &rep.service else {
        eprintln!("serve FAILED: report is missing the service block");
        std::process::exit(1);
    };
    println!(
        "  service: {} admitted, {} rejected, {} completed, {} failed, {} deadline cancels, \
         {} warm starts ({} fell back), {} retries, {} breaker opens, {} drained",
        s.admitted,
        s.rejected,
        s.completed,
        s.failed,
        s.deadline_cancels,
        s.warm_starts,
        s.warm_fallbacks,
        s.retries,
        s.breaker_opens,
        s.drained
    );
    if let Some(path) = &report_path {
        std::fs::write(path, rep.to_json()).expect("write report");
        println!("  report written to {path}");
    }
    println!("  serve: all gates passed\n");
}

/// One world size of the skewed-device balance scenario.
struct WorldBalance {
    world: usize,
    units: usize,
    static_cold_ms: f64,
    static_warm_ms: f64,
    adaptive_cold_ms: f64,
    adaptive_warm_ms: f64,
    /// Warm critical path (max per-rank busy time) — the distributed
    /// iteration's wall time on a world with real cores. On an
    /// oversubscribed host the process wall-clock measures *total* CPU,
    /// not the parallel wall, so the SCF-wall gate runs on this.
    static_path_ms: f64,
    adaptive_path_ms: f64,
    imbalance_before: f64,
    imbalance_after: f64,
    stolen_units: u64,
    moved_units: usize,
}

impl WorldBalance {
    fn improvement(&self) -> f64 {
        self.imbalance_before / self.imbalance_after.max(1.0)
    }
}

/// Run the skewed scenario at one world size: `4·world` work units on
/// `world` ranks, all the heavy atom tiles packed into rank 0's uniform
/// block. Static uniform vs adaptive (cost-model-seeded weighted tiling +
/// work stealing + measured re-tiling), with every iteration's observables
/// checked bitwise against the static baseline.
fn balance_world(world: usize, iters: usize) -> WorldBalance {
    use qt_core::device::Device;
    use qt_core::gf::GfConfig;
    use qt_core::grids::Grids;
    use qt_core::hamiltonian::{ElectronModel, PhononModel};
    use qt_dist::runner::{distributed_iteration_tiled, maybe_rebalance, ElasticPolicy};
    use qt_dist::ElasticTiling;
    use qt_model::CostMap;

    // One-slab atom tiles; the first `4·bnum/world` slabs keep all NB
    // neighbor slots while the rest are pruned bare, so exactly rank 0's
    // uniform block of 4 tiles carries essentially all SSE work.
    let (te, ta) = (1usize, 4 * world);
    let p = SimParams {
        nkz: 2,
        nqz: 2,
        ne: 2 * ta,
        nw: 2,
        na: 2 * ta,
        nb: 4,
        norb: 2,
        bnum: ta,
    };
    let dev = Device::skewed(&p, 4, 0);
    let em = ElectronModel::for_params(&p);
    let pm = PhononModel::default();
    let grids = Grids::new(&p, -1.2, 1.2);
    let cfg = GfConfig::default();
    let policy = ElasticPolicy::default();
    let units = te * ta;

    let warm = |walls: &[f64]| {
        let mut w: Vec<f64> = walls[1..].to_vec();
        w.sort_by(|a, b| a.partial_cmp(b).unwrap());
        w[w.len() / 2]
    };

    let max_busy_ms = |busy: &[f64]| busy.iter().cloned().fold(0.0, f64::max) * 1e3;

    // ---- Static uniform baseline. ----
    let mut static_tiling = ElasticTiling::uniform(&p, te, ta, world);
    let mut static_walls = Vec::new();
    let mut static_paths = Vec::new();
    let mut static_ratios = Vec::new();
    let mut reference = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let r = distributed_iteration_tiled(
            &p,
            &dev,
            &em,
            &pm,
            &grids,
            &cfg,
            &mut static_tiling,
            &policy,
            false,
        )
        .expect("static iteration");
        static_walls.push(t0.elapsed().as_secs_f64() * 1e3);
        let bal = r.result.comm.balance.as_ref().expect("balance measured");
        static_paths.push(max_busy_ms(&bal.rank_busy_secs));
        static_ratios.push(bal.imbalance_ratio());
        if reference.is_none() {
            reference = Some((r.result.sigma, r.result.pi));
        }
    }
    let (ref_sigma, ref_pi) = reference.expect("at least one iteration");

    // ---- Adaptive: predicted weighted start, stealing, measured re-tile. ----
    let mut cm = CostMap::predict(&p, &dev, te, ta);
    let mut tiling = ElasticTiling::weighted(&p, te, ta, world, &cm.weights());
    let mut adaptive_walls = Vec::new();
    let mut adaptive_paths = Vec::new();
    let mut adaptive_ratios = Vec::new();
    let mut stolen = 0u64;
    let mut moved_units = 0usize;
    for _ in 0..iters {
        let t0 = Instant::now();
        let r = distributed_iteration_tiled(
            &p,
            &dev,
            &em,
            &pm,
            &grids,
            &cfg,
            &mut tiling,
            &policy,
            true,
        )
        .expect("adaptive iteration");
        adaptive_walls.push(t0.elapsed().as_secs_f64() * 1e3);
        // The whole point of the bitwise-safe migration path: the tiling
        // may move and ranks may steal, the observables may not.
        for (name, a, b) in [
            ("sigma.lesser", &r.result.sigma.lesser, &ref_sigma.lesser),
            ("sigma.greater", &r.result.sigma.greater, &ref_sigma.greater),
            ("pi.lesser", &r.result.pi.lesser, &ref_pi.lesser),
            ("pi.greater", &r.result.pi.greater, &ref_pi.greater),
        ] {
            if a.as_slice() != b.as_slice() {
                eprintln!("balance FAILED: adaptive {name} diverged from static tiling bitwise");
                std::process::exit(1);
            }
        }
        let bal = r.result.comm.balance.as_ref().expect("balance measured");
        adaptive_paths.push(max_busy_ms(&bal.rank_busy_secs));
        adaptive_ratios.push(bal.imbalance_ratio());
        stolen += bal.stolen_units;
        cm.observe_all(&bal.unit_secs);
        moved_units += maybe_rebalance(&mut tiling, bal, 1.5).len();
    }

    WorldBalance {
        world,
        units,
        static_cold_ms: static_walls[0],
        static_warm_ms: warm(&static_walls),
        adaptive_cold_ms: adaptive_walls[0],
        adaptive_warm_ms: warm(&adaptive_walls),
        static_path_ms: warm(&static_paths),
        adaptive_path_ms: warm(&adaptive_paths),
        // Before: the static tiling's steady-state imbalance. After: the
        // adaptive loop's steady state (last iteration, post re-tiling).
        imbalance_before: warm(&static_ratios),
        imbalance_after: *adaptive_ratios.last().expect("at least one iteration"),
        stolen_units: stolen,
        moved_units,
    }
}

/// Skewed-device load-balance scenario (CI `balance-regression` job):
/// compare static uniform tiling against cost-model-driven adaptive
/// tiling + intra-iteration work stealing, gate the imbalance-ratio
/// improvement, and optionally emit a `BENCH_balance.json`.
fn balance(flags: &[String]) {
    use qt_telemetry::json::Json;

    let mut out_path: Option<String> = None;
    let mut min_improvement = 2.0f64;
    let mut iters = 4usize;
    let mut i = 0;
    while i < flags.len() {
        let need = |what: &str| {
            flags.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        match flags[i].as_str() {
            "--out" => out_path = Some(need("--out")),
            "--min-improvement" => {
                min_improvement = need("--min-improvement").parse().unwrap_or_else(|_| {
                    eprintln!("--min-improvement needs a number");
                    std::process::exit(2);
                })
            }
            "--iters" => {
                iters = need("--iters").parse().unwrap_or_else(|_| {
                    eprintln!("--iters needs an integer");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!(
                    "unknown balance flag {other:?} (expected --out/--min-improvement/--iters)"
                );
                std::process::exit(2);
            }
        }
        i += 2;
    }
    let iters = iters.max(2);

    println!("== balance: adaptive tiling + work stealing on a skewed device ==");
    qt_telemetry::reset_all();
    qt_telemetry::set_enabled(true);
    let runs: Vec<WorldBalance> = [4usize, 8]
        .iter()
        .map(|&w| balance_world(w, iters))
        .collect();

    println!(
        "  {:<6} {:>6} | {:>10} {:>10} | {:>10} {:>10} | {:>9} {:>9} | {:>8} {:>8} {:>8} | {:>7} {:>6}",
        "world",
        "units",
        "stat cold",
        "stat warm",
        "adpt cold",
        "adpt warm",
        "stat path",
        "adpt path",
        "imb pre",
        "imb post",
        "improve",
        "stolen",
        "moved"
    );
    let mut failures = Vec::new();
    for r in &runs {
        println!(
            "  {:<6} {:>6} | {:>8.1}ms {:>8.1}ms | {:>8.1}ms {:>8.1}ms | {:>7.1}ms {:>7.1}ms | {:>8.2} {:>8.2} {:>7.2}x | {:>7} {:>6}",
            r.world,
            r.units,
            r.static_cold_ms,
            r.static_warm_ms,
            r.adaptive_cold_ms,
            r.adaptive_warm_ms,
            r.static_path_ms,
            r.adaptive_path_ms,
            r.imbalance_before,
            r.imbalance_after,
            r.improvement(),
            r.stolen_units,
            r.moved_units
        );
        if r.improvement() < min_improvement {
            failures.push(format!(
                "world {}: imbalance improvement {:.2}x < required {min_improvement:.2}x",
                r.world,
                r.improvement()
            ));
        }
        if r.adaptive_path_ms >= r.static_path_ms {
            failures.push(format!(
                "world {}: adaptive critical path {:.1} ms did not beat static {:.1} ms",
                r.world, r.adaptive_path_ms, r.static_path_ms
            ));
        }
    }
    println!(
        "  (path = max per-rank busy time, the iteration wall on a world with real cores; \
         the cold/warm columns are host wall-clock and include the shared GF phase)"
    );

    if let Some(path) = &out_path {
        let worlds: Vec<Json> = runs
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("world".to_string(), Json::Num(r.world as f64)),
                    ("units".to_string(), Json::Num(r.units as f64)),
                    ("static_cold_ms".to_string(), Json::Num(r.static_cold_ms)),
                    ("static_warm_ms".to_string(), Json::Num(r.static_warm_ms)),
                    (
                        "adaptive_cold_ms".to_string(),
                        Json::Num(r.adaptive_cold_ms),
                    ),
                    (
                        "adaptive_warm_ms".to_string(),
                        Json::Num(r.adaptive_warm_ms),
                    ),
                    ("static_path_ms".to_string(), Json::Num(r.static_path_ms)),
                    (
                        "adaptive_path_ms".to_string(),
                        Json::Num(r.adaptive_path_ms),
                    ),
                    (
                        "imbalance_before".to_string(),
                        Json::Num(r.imbalance_before),
                    ),
                    ("imbalance_after".to_string(), Json::Num(r.imbalance_after)),
                    ("improvement".to_string(), Json::Num(r.improvement())),
                    ("stolen_units".to_string(), Json::Num(r.stolen_units as f64)),
                    ("moved_units".to_string(), Json::Num(r.moved_units as f64)),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("min_improvement".to_string(), Json::Num(min_improvement)),
            ("worlds".to_string(), Json::Arr(worlds)),
        ]);
        std::fs::write(path, doc.dump()).expect("write balance json");
        println!("  results written to {path}");
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("balance FAILED: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "  gate OK: imbalance improvement >= {min_improvement:.2}x and adaptive critical \
         path below static at both world sizes\n"
    );
}

/// Re-parse and re-validate a report written by `profile` (CI smoke).
/// One executed sweep point of a corpus scenario: the observables and
/// coverage fingerprint that get pinned in the golden record.
struct CorpusPoint {
    bias: f64,
    temperature: f64,
    converged: bool,
    iterations: usize,
    current: f64,
    total_points: usize,
    /// Flattened grid indices the health layer quarantined, in order.
    quarantine: Vec<usize>,
}

fn bits_hex(v: f64) -> String {
    format!("{:#018x}", v.to_bits())
}

fn parse_bits(s: &str) -> Option<u64> {
    u64::from_str_radix(s.trim_start_matches("0x"), 16).ok()
}

fn scenario_error_tag(e: &qt_scenario::ScenarioError) -> &'static str {
    use qt_scenario::ScenarioError as E;
    match e {
        E::Syntax { .. } => "syntax",
        E::UnknownKey { .. } => "unknown-key",
        E::TypeMismatch { .. } => "type-mismatch",
        E::MissingKey { .. } => "missing-key",
        E::OutOfRange { .. } => "out-of-range",
        E::Invalid { .. } => "invalid",
    }
}

/// `reproduce corpus`: run the scenario zoo and self-gate against the
/// committed golden records.
///
/// Tiers, all fail-closed (any gate miss exits 1):
///  - invalid corpus: every `corpus/invalid/*.toml` must be rejected
///    with exactly the `ScenarioError` variant its `#! expect:` header
///    declares — the strict-validation contract, pinned as data;
///  - golden runs: every `corpus/scenarios/*.toml` builds and sweeps;
///    observables must match the golden record bitwise or within the
///    tolerance the record itself states, and the quarantine fingerprint
///    must match exactly (disordered scenarios must quarantine at least
///    one point and report it honestly);
///  - chaos matrix (`--chaos`, fault-inject builds): each clean scenario
///    re-runs through the service with a mid-sweep rank kill; recovery
///    must be bitwise invisible against both the in-process fault-free
///    service run and the golden service record.
fn corpus_cmd(flags: &[String]) {
    use qt_core::scf::{run_scf_with, ScfOptions};
    use qt_telemetry::counters;
    use qt_telemetry::json::Json;

    let mut dir = "corpus".to_string();
    let mut write_golden = false;
    let mut chaos = false;
    let mut only: Option<Vec<String>> = None;
    let mut report_path: Option<String> = None;
    let mut i = 0;
    while i < flags.len() {
        let need = |what: &str| {
            flags.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        match flags[i].as_str() {
            "--dir" => {
                dir = need("--dir");
                i += 1;
            }
            "--write-golden" => write_golden = true,
            "--chaos" => chaos = true,
            "--scenarios" => {
                only = Some(need("--scenarios").split(',').map(str::to_string).collect());
                i += 1;
            }
            "--report" => {
                report_path = Some(need("--report"));
                i += 1;
            }
            other => {
                eprintln!(
                    "unknown corpus flag {other:?} (expected --dir/--write-golden/--chaos/\
                     --scenarios a,b/--report <path>)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    #[cfg(not(feature = "fault-inject"))]
    if chaos {
        eprintln!("--chaos requires building with --features fault-inject");
        std::process::exit(2);
    }

    println!("== corpus: golden-result scenario zoo ==");
    qt_telemetry::reset_all();
    qt_telemetry::set_enabled(true);
    qt_telemetry::set_journaling(true);
    let mut failures: Vec<String> = Vec::new();

    let toml_files = |sub: &str| -> Vec<std::path::PathBuf> {
        let path = std::path::Path::new(&dir).join(sub);
        let mut files: Vec<_> = match std::fs::read_dir(&path) {
            Ok(entries) => entries
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "toml"))
                .collect(),
            Err(e) => {
                eprintln!("cannot read corpus directory {}: {e}", path.display());
                std::process::exit(1);
            }
        };
        files.sort();
        files
    };

    // ---- Tier 0: the invalid corpus must be rejected, precisely. ----
    println!("-- invalid corpus: strict validation --");
    for path in toml_files("invalid") {
        let name = path
            .file_stem()
            .unwrap_or_default()
            .to_string_lossy()
            .into_owned();
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", path.display());
            std::process::exit(1);
        });
        let Some(expect) = src
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("#! expect:"))
            .map(str::trim)
        else {
            failures.push(format!(
                "invalid/{name}: missing `#! expect: <variant>` header line"
            ));
            continue;
        };
        match qt_scenario::load(&src) {
            Ok(_) => failures.push(format!(
                "invalid/{name}: expected {expect} rejection but the scenario built"
            )),
            Err(e) if scenario_error_tag(&e) == expect => {
                println!("  {name:<24} rejected as expected: {e}");
            }
            Err(e) => failures.push(format!(
                "invalid/{name}: expected {expect}, got {}: {e}",
                scenario_error_tag(&e)
            )),
        }
    }

    // ---- Tier 1: golden scenario runs. ----
    println!("-- golden runs --");
    let selected = |name: &str| only.as_ref().is_none_or(|o| o.iter().any(|n| n == name));
    // Built scenarios kept for the chaos tier (clean ones only).
    let mut chaos_queue: Vec<(qt_scenario::BuiltScenario, Vec<CorpusPoint>)> = Vec::new();
    for path in toml_files("scenarios") {
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", path.display());
            std::process::exit(1);
        });
        let stem = path
            .file_stem()
            .unwrap_or_default()
            .to_string_lossy()
            .into_owned();
        if !selected(&stem) {
            continue;
        }
        let built = match qt_scenario::load(&src) {
            Ok(b) => b,
            Err(e) => {
                failures.push(format!("scenarios/{stem}: failed to build: {e}"));
                continue;
            }
        };
        let name = built.scenario.name.clone();
        if name != stem {
            failures.push(format!(
                "scenarios/{stem}: scenario name {name:?} disagrees with its file name"
            ));
        }
        let sweep = built.sweep_points();
        println!("  {name}: {} sweep points", sweep.len());
        let mut points = Vec::with_capacity(sweep.len());
        let mut run_failed = false;
        for &(bias, temperature) in &sweep {
            let cfg = built.config_at(bias, temperature);
            match run_scf_with(&built.sim, &cfg, ScfOptions::default()) {
                Ok(out) => {
                    let cov = &out.electron.coverage;
                    println!(
                        "    bias {bias:>5.2} V  T {temperature:>5.0} K  current {:>12.4e}  \
                         iters {:>2}  quarantined {}/{}",
                        out.electron.current,
                        out.iterations,
                        cov.quarantined.len(),
                        cov.total_points
                    );
                    points.push(CorpusPoint {
                        bias,
                        temperature,
                        converged: out.converged,
                        iterations: out.iterations,
                        current: out.electron.current,
                        total_points: cov.total_points,
                        quarantine: cov.quarantined.iter().map(|q| q.grid_index).collect(),
                    });
                }
                Err(e) => {
                    failures.push(format!(
                        "{name}: point (bias {bias}, T {temperature}) failed outright: {e}"
                    ));
                    run_failed = true;
                }
            }
        }
        counters::add_corpus_scenario_run();
        if run_failed {
            counters::add_corpus_mismatched();
            continue;
        }

        // Disorder honesty gate: a disordered scenario that never
        // quarantines is not exercising the health layer it exists to
        // pin; and whatever it quarantines must be an honest report.
        if built
            .disorder
            .as_ref()
            .is_some_and(|d| d.vacancy_fraction > 0.0)
        {
            let quarantined: usize = points.iter().map(|p| p.quarantine.len()).sum();
            if quarantined == 0 {
                failures.push(format!(
                    "{name}: disordered scenario quarantined nothing — the vacancy \
                     resonance is not reaching the health layer"
                ));
            }
            for p in &points {
                let mut seen = std::collections::BTreeSet::new();
                for &idx in &p.quarantine {
                    if idx >= p.total_points {
                        failures.push(format!(
                            "{name}: dishonest coverage at bias {}: quarantined index \
                             {idx} >= total_points {}",
                            p.bias, p.total_points
                        ));
                    }
                    if !seen.insert(idx) {
                        failures.push(format!(
                            "{name}: dishonest coverage at bias {}: index {idx} \
                             quarantined twice",
                            p.bias
                        ));
                    }
                }
            }
        }

        let golden_path = std::path::Path::new(&dir)
            .join("golden")
            .join(format!("{name}.json"));
        if write_golden {
            #[cfg_attr(not(feature = "fault-inject"), allow(unused_mut))]
            let mut obj = vec![
                ("scenario".to_string(), Json::Str(name.clone())),
                (
                    "tolerance".to_string(),
                    Json::Obj(vec![
                        ("abs".to_string(), Json::Num(1e-12)),
                        ("rel".to_string(), Json::Num(1e-9)),
                    ]),
                ),
                (
                    "points".to_string(),
                    Json::Arr(
                        points
                            .iter()
                            .map(|p| {
                                Json::Obj(vec![
                                    ("bias".to_string(), Json::Num(p.bias)),
                                    ("temperature".to_string(), Json::Num(p.temperature)),
                                    ("converged".to_string(), Json::Bool(p.converged)),
                                    ("iterations".to_string(), Json::Num(p.iterations as f64)),
                                    ("current".to_string(), Json::Num(p.current)),
                                    ("current_bits".to_string(), Json::Str(bits_hex(p.current))),
                                    ("total_points".to_string(), Json::Num(p.total_points as f64)),
                                    (
                                        "quarantine".to_string(),
                                        Json::Arr(
                                            p.quarantine
                                                .iter()
                                                .map(|&q| Json::Num(q as f64))
                                                .collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ];
            #[cfg(feature = "fault-inject")]
            if chaos && built.disorder.is_none() {
                let service = corpus_service_sweep(&built, None, &mut failures);
                obj.push((
                    "service".to_string(),
                    Json::Arr(
                        service
                            .iter()
                            .map(|p| {
                                Json::Obj(vec![
                                    ("bias".to_string(), Json::Num(p.bias)),
                                    ("current_bits".to_string(), Json::Str(bits_hex(p.current))),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            std::fs::create_dir_all(golden_path.parent().unwrap()).ok();
            let body = Json::Obj(obj).dump() + "\n";
            std::fs::write(&golden_path, body).unwrap_or_else(|e| {
                eprintln!("cannot write {}: {e}", golden_path.display());
                std::process::exit(1);
            });
            println!("    golden record written: {}", golden_path.display());
        } else {
            match compare_golden(&name, &golden_path, &points) {
                Ok(()) => counters::add_corpus_matched(),
                Err(diffs) => {
                    counters::add_corpus_mismatched();
                    failures.extend(diffs);
                }
            }
        }
        if built.disorder.is_none() {
            chaos_queue.push((built, points));
        }
    }

    // ---- Tier 2: chaos matrix (fault-inject builds only). ----
    #[cfg(feature = "fault-inject")]
    if chaos && !write_golden {
        println!("-- chaos matrix: mid-sweep rank kill per scenario --");
        for (built, _) in &chaos_queue {
            let name = built.scenario.name.clone();
            let reference = corpus_service_sweep(built, None, &mut failures);
            let killed = corpus_service_sweep(built, Some(1), &mut failures);
            qt_telemetry::counters::add_corpus_chaos_rerun();
            if reference.len() != killed.len() {
                failures.push(format!(
                    "{name}: chaos rerun answered {} points, fault-free answered {}",
                    killed.len(),
                    reference.len()
                ));
                continue;
            }
            let mut diverged = 0usize;
            for (a, b) in reference.iter().zip(&killed) {
                if a.current.to_bits() != b.current.to_bits() {
                    diverged += 1;
                    failures.push(format!(
                        "{name}: chaos rerun diverged at bias {} V: {:e} vs {:e}",
                        a.bias, a.current, b.current
                    ));
                }
            }
            // Gate the fault-free service run against the golden service
            // record too: recovery being self-consistent is not enough if
            // the service itself drifted from the committed baseline.
            let golden_path = std::path::Path::new(&dir)
                .join("golden")
                .join(format!("{name}.json"));
            match std::fs::read_to_string(&golden_path)
                .ok()
                .and_then(|s| qt_telemetry::json::Json::parse(&s).ok())
            {
                Some(doc) => match doc.get("service").and_then(|s| s.as_array()) {
                    Some(records) if records.len() == reference.len() => {
                        for (i, (rec, got)) in records.iter().zip(&reference).enumerate() {
                            let bits = rec
                                .get("current_bits")
                                .and_then(|b| b.as_str())
                                .and_then(parse_bits);
                            if bits != Some(got.current.to_bits()) {
                                failures.push(format!(
                                    "{name}: service point {i} drifted from the golden \
                                     service record (bias {} V)",
                                    got.bias
                                ));
                            }
                        }
                    }
                    _ => failures.push(format!(
                        "{name}: golden record has no matching service block — \
                         regenerate with --write-golden --chaos"
                    )),
                },
                None => failures.push(format!(
                    "{name}: no readable golden record for the chaos gate"
                )),
            }
            if diverged == 0 {
                println!(
                    "  {name}: rank kill bitwise invisible across {} points",
                    reference.len()
                );
            }
        }
    }
    let _ = &chaos_queue;

    if let Some(path) = &report_path {
        let rep = qt_telemetry::TelemetryReport::from_current();
        if let Err(e) = rep.validate() {
            failures.push(format!("telemetry report failed validation: {e}"));
        }
        std::fs::write(path, rep.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("  report written to {path}");
    }

    let rep = qt_telemetry::report::CorpusReport::from_counters();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("corpus FAILED: {f}");
        }
        std::process::exit(1);
    }
    println!(
        "corpus OK: {} built, {} rejected as expected, {} run, {} matched, {} chaos reruns",
        rep.scenarios_built,
        rep.scenarios_rejected,
        rep.scenarios_run,
        rep.matched,
        rep.chaos_reruns
    );
}

/// Compare one scenario's run against its golden record. Observables
/// match bitwise or within the tolerance the record itself states; the
/// coverage fingerprint must match exactly. Every mismatching current is
/// journaled as a [`qt_telemetry::EventKind::CorpusMismatch`] so a
/// postmortem carries the exact bit patterns.
fn compare_golden(
    name: &str,
    golden_path: &std::path::Path,
    points: &[CorpusPoint],
) -> Result<(), Vec<String>> {
    use qt_telemetry::json::Json;
    let src = match std::fs::read_to_string(golden_path) {
        Ok(s) => s,
        Err(e) => {
            return Err(vec![format!(
                "{name}: no golden record at {} ({e}) — run `reproduce corpus --write-golden`",
                golden_path.display()
            )])
        }
    };
    let doc = match Json::parse(&src) {
        Ok(d) => d,
        Err(e) => return Err(vec![format!("{name}: golden record unparsable: {e}")]),
    };
    let abs_tol = doc
        .get("tolerance")
        .and_then(|t| t.get("abs"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let rel_tol = doc
        .get("tolerance")
        .and_then(|t| t.get("rel"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let Some(golden) = doc.get("points").and_then(|p| p.as_array()) else {
        return Err(vec![format!("{name}: golden record has no points array")]);
    };
    let mut diffs = Vec::new();
    if golden.len() != points.len() {
        return Err(vec![format!(
            "{name}: sweep shape changed: {} golden points, {} run",
            golden.len(),
            points.len()
        )]);
    }
    for (i, (g, p)) in golden.iter().zip(points).enumerate() {
        let gf = |key: &str| g.get(key).and_then(Json::as_f64);
        if gf("bias") != Some(p.bias) || gf("temperature") != Some(p.temperature) {
            diffs.push(format!(
                "{name}: point {i} sweep coordinates changed (golden bias {:?}, run {})",
                gf("bias"),
                p.bias
            ));
            continue;
        }
        let golden_bits = g
            .get("current_bits")
            .and_then(|b| b.as_str())
            .and_then(parse_bits);
        let Some(golden_bits) = golden_bits else {
            diffs.push(format!(
                "{name}: point {i} golden record lacks current_bits"
            ));
            continue;
        };
        let golden_current = f64::from_bits(golden_bits);
        let exact = golden_bits == p.current.to_bits();
        let within =
            (p.current - golden_current).abs() <= abs_tol.max(rel_tol * golden_current.abs());
        if !exact && !within {
            qt_telemetry::journal::emit(qt_telemetry::EventKind::CorpusMismatch {
                point: i as u64,
                golden_bits,
                got_bits: p.current.to_bits(),
            });
            diffs.push(format!(
                "{name}: point {i} (bias {} V) current {:e} diverged from golden {:e} \
                 (|Δ| {:e}, tolerance abs {abs_tol:e} rel {rel_tol:e})",
                p.bias,
                p.current,
                golden_current,
                (p.current - golden_current).abs()
            ));
        } else if !exact {
            println!(
                "    point {i}: current within tolerance of golden (|Δ| {:e})",
                (p.current - golden_current).abs()
            );
        }
        if g.get("converged").and_then(Json::as_bool) != Some(p.converged) {
            diffs.push(format!("{name}: point {i} convergence flag changed"));
        }
        if g.get("iterations").and_then(Json::as_u64) != Some(p.iterations as u64) {
            diffs.push(format!(
                "{name}: point {i} iteration count changed (golden {:?}, run {})",
                g.get("iterations").and_then(Json::as_u64),
                p.iterations
            ));
        }
        if g.get("total_points").and_then(Json::as_u64) != Some(p.total_points as u64) {
            diffs.push(format!("{name}: point {i} coverage denominator changed"));
        }
        let golden_quarantine: Option<Vec<usize>> =
            g.get("quarantine").and_then(|q| q.as_array()).map(|a| {
                a.iter()
                    .filter_map(|v| v.as_u64().map(|u| u as usize))
                    .collect()
            });
        if golden_quarantine.as_deref() != Some(&p.quarantine[..]) {
            diffs.push(format!(
                "{name}: point {i} quarantine fingerprint changed (golden {:?}, run {:?})",
                golden_quarantine, p.quarantine
            ));
        }
    }
    if diffs.is_empty() {
        println!("    matches golden record ({} points)", points.len());
        Ok(())
    } else {
        Err(diffs)
    }
}

/// Run one scenario's bias sweep through the service layer, optionally
/// killing a pool rank mid-sweep. A single worker keeps the warm-start
/// deposit order deterministic, so two runs of the same sweep are
/// bitwise comparable.
#[cfg(feature = "fault-inject")]
fn corpus_service_sweep(
    built: &qt_scenario::BuiltScenario,
    kill_rank: Option<usize>,
    failures: &mut Vec<String>,
) -> Vec<qt_serve::PointResult> {
    use qt_serve::{ServeConfig, Service, SweepRequest, SweepStatus, VariantSpec};
    let name = &built.scenario.name;
    let temperature = built.scenario.sweep.temperatures[0];
    let spec = VariantSpec {
        params: built.params,
        emin: built.scenario.grid.emin,
        emax: built.scenario.grid.emax,
        cfg: built.config_at(0.0, temperature),
    };
    let svc = match Service::start(
        vec![spec],
        ServeConfig {
            workers: 1,
            pool_slots: 4,
            ..Default::default()
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            failures.push(format!("{name}: service refused the scenario variant: {e}"));
            return Vec::new();
        }
    };
    let req = SweepRequest {
        chaos_kill_rank: kill_rank,
        ..SweepRequest::new(0, built.scenario.sweep.biases.clone())
    };
    let ticket = match svc.submit(req) {
        Ok(t) => t,
        Err(e) => {
            failures.push(format!("{name}: service rejected the sweep: {e}"));
            return Vec::new();
        }
    };
    let resp = ticket.wait_timeout(std::time::Duration::from_secs(600));
    svc.shutdown();
    match resp.map(|r| r.status) {
        Some(SweepStatus::Completed { points }) => points,
        Some(other) => {
            failures.push(format!("{name}: service sweep did not complete: {other:?}"));
            Vec::new()
        }
        None => {
            failures.push(format!("{name}: service sweep unanswered after 600 s"));
            Vec::new()
        }
    }
}

fn check_report(flags: &[String]) {
    let mut require_boundary_hits = false;
    let mut require_health = false;
    let mut require_kernel_selection = false;
    let mut require_service = false;
    let mut require_corpus = false;
    let mut require_balance: Option<f64> = None;
    let mut path: Option<String> = None;
    let mut i = 0;
    while i < flags.len() {
        match flags[i].as_str() {
            "--require-boundary-hits" => require_boundary_hits = true,
            "--require-health" => require_health = true,
            "--require-kernel-selection" => require_kernel_selection = true,
            "--require-service" => require_service = true,
            "--require-corpus" => require_corpus = true,
            "--require-balance" => {
                let v = flags.get(i + 1).and_then(|v| v.parse().ok());
                require_balance = Some(v.unwrap_or_else(|| {
                    eprintln!("--require-balance needs a max imbalance ratio");
                    std::process::exit(2);
                }));
                i += 1;
            }
            f if !f.starts_with("--") => path = Some(f.to_string()),
            other => {
                eprintln!(
                    "unknown check-report flag {other:?} (expected --require-boundary-hits/\
                     --require-health/--require-kernel-selection/--require-service/\
                     --require-corpus/--require-balance <ratio>)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(path) = path else {
        eprintln!("check-report needs a file path");
        std::process::exit(2);
    };
    let path = &path;
    let json = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let rep = match qt_telemetry::TelemetryReport::from_json(&json) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = rep.validate() {
        eprintln!("report FAILED validation: {e}");
        std::process::exit(1);
    }
    if require_boundary_hits && rep.boundary_cache_hits == 0 {
        eprintln!(
            "report FAILED: boundary_cache_hits is 0 — warm SCF iterations \
             did not reuse memoized contact self-energies"
        );
        std::process::exit(1);
    }
    if require_health && rep.health.is_none() {
        eprintln!(
            "report FAILED: no health block — the run predates the \
             resilience layer or stripped its counters"
        );
        std::process::exit(1);
    }
    if require_health && rep.elasticity.is_none() {
        eprintln!(
            "report FAILED: no elasticity block — the run predates the \
             rank-failure recovery layer or stripped its counters"
        );
        std::process::exit(1);
    }
    if require_kernel_selection {
        let Some(k) = &rep.kernel_selection else {
            eprintln!(
                "report FAILED: no kernel_selection block — the run never routed a \
                 coupling product through the auto-selector"
            );
            std::process::exit(1);
        };
        if k.sparse_selected + k.dense_selected == 0 {
            eprintln!("report FAILED: kernel_selection block recorded zero decisions");
            std::process::exit(1);
        }
    }
    if require_service {
        let Some(s) = &rep.service else {
            eprintln!(
                "report FAILED: no service block — the run did not go through \
                 the qt-serve admission path"
            );
            std::process::exit(1);
        };
        if s.admitted == 0 {
            eprintln!("report FAILED: service block recorded zero admitted requests");
            std::process::exit(1);
        }
    }
    if require_corpus {
        let Some(c) = &rep.corpus else {
            eprintln!(
                "report FAILED: no corpus block — the run did not execute any \
                 golden-corpus scenarios"
            );
            std::process::exit(1);
        };
        if c.scenarios_run == 0 {
            eprintln!("report FAILED: corpus block recorded zero scenarios executed");
            std::process::exit(1);
        }
        if c.mismatched > 0 {
            eprintln!(
                "report FAILED: corpus recorded {} scenario(s) diverging from their \
                 golden records",
                c.mismatched
            );
            std::process::exit(1);
        }
    }
    if let Some(max_ratio) = require_balance {
        let Some(b) = &rep.balance else {
            eprintln!(
                "report FAILED: no balance block — the run did not measure \
                 per-rank busy times"
            );
            std::process::exit(1);
        };
        if b.imbalance_ratio > max_ratio {
            eprintln!(
                "report FAILED: imbalance ratio {:.3} exceeds the required ceiling {max_ratio:.3}",
                b.imbalance_ratio
            );
            std::process::exit(1);
        }
    }
    let exact = rep.residuals.iter().filter(|r| r.exact).count();
    println!(
        "report OK: {} phases, {} residuals ({} exact, all vanishing), {} convergence points, {} ranks",
        rep.phases.len(),
        rep.residuals.len(),
        exact,
        rep.convergence.len(),
        rep.comm.len()
    );
}

fn sdfg_figs() {
    println!("== Figs. 8-12: SSE kernel transformation pipeline ==");
    use qt_sdfg::library;
    let b: qt_sdfg::Bindings = [
        ("Nkz", 5i64),
        ("NE", 64),
        ("Nqz", 5),
        ("Nw", 8),
        ("N3D", 3),
        ("NA", 64),
        ("NB", 6),
        ("Norb", 4),
    ]
    .iter()
    .map(|&(k, v)| (k.to_string(), v))
    .collect();
    let mut tree = library::sse_sigma_tree();
    let steps = library::transform_sse_sigma(&mut tree, &b).expect("pipeline");
    for s in &steps {
        println!(
            "  {:<44} {:>12.2} Gflop {:>14} accesses {:>10} KiB transient",
            s.name,
            s.stats.flops as f64 / 1e9,
            s.stats.total_accesses(),
            s.stats.transient_bytes / 1024
        );
    }
    println!();
}
