//! GEMM throughput sweep over the shape classes the simulator produces.
//!
//! Three families dominate the flop budget (§4.2 / Table 3):
//!
//! * `rgf_block` — the dense `bs × bs` block products of the RGF recursions
//!   (Table 6's triple products, the 512³ acceptance shape);
//! * `sse_batch` — the untransformed-SSE hot loop: thousands of tiny
//!   `Norb × Norb` products, served by `batched_gemm_acc`;
//! * `dace_wide` — the fused Fig. 11c window GEMM: `Norb × (Nω·Norb) × Norb`.
//!
//! Throughput is reported via `Throughput::Elements` with one element per
//! real flop (8 per complex MAC), so criterion's `elem/s` column reads
//! directly as flop/s. Each blocked measurement is paired with the
//! `gemm_naive_*` seed kernel on the same operands, so `BENCH_*.json`
//! tracks the blocked-vs-seed speedup across PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qt_linalg::{c64, gemm, Complex64};
use rand::{Rng as _, SeedableRng};

fn cvec(r: &mut rand::rngs::StdRng, len: usize) -> Vec<Complex64> {
    (0..len)
        .map(|_| c64(r.random_range(-1.0..1.0), r.random_range(-1.0..1.0)))
        .collect()
}

fn flops(m: usize, k: usize, n: usize, batch: usize) -> u64 {
    8 * (m * k * n * batch) as u64
}

/// RGF block products: square GEMMs at the block sizes the solver hits.
fn bench_rgf_block(c: &mut Criterion) {
    let mut r = rand::rngs::StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("gemm/rgf_block");
    group.sample_size(10);
    for n in [64usize, 128, 256, 512] {
        let a = cvec(&mut r, n * n);
        let b = cvec(&mut r, n * n);
        let mut out = vec![Complex64::ZERO; n * n];
        group.throughput(Throughput::Elements(flops(n, n, n, 1)));
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, &n| {
            bench.iter(|| gemm::gemm_raw_acc(n, n, n, &a, &b, &mut out))
        });
        group.bench_with_input(BenchmarkId::new("naive_seed", n), &n, |bench, &n| {
            bench.iter(|| gemm::gemm_naive_acc(n, n, n, &a, &b, &mut out))
        });
    }
    group.finish();
}

/// Untransformed-SSE batches: 1000 tiny Norb-cubed products per pass.
fn bench_sse_batch(c: &mut Criterion) {
    let mut r = rand::rngs::StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("gemm/sse_batch");
    group.sample_size(10);
    let batch = 1000usize;
    for no in [4usize, 8, 16, 32] {
        let a = cvec(&mut r, batch * no * no);
        let b = cvec(&mut r, batch * no * no);
        let mut out = vec![Complex64::ZERO; batch * no * no];
        group.throughput(Throughput::Elements(flops(no, no, no, batch)));
        group.bench_with_input(BenchmarkId::new("batched", no), &no, |bench, &no| {
            bench.iter(|| gemm::batched_gemm_acc(no, no, no, batch, &a, &b, &mut out))
        });
        group.bench_with_input(BenchmarkId::new("naive_seed", no), &no, |bench, &no| {
            bench.iter(|| gemm::gemm_naive_batched_acc(no, no, no, batch, &a, &b, &mut out))
        });
    }
    group.finish();
}

/// The fused DaCe window GEMM: small output, wide inner dimension.
fn bench_dace_wide(c: &mut Criterion) {
    let mut r = rand::rngs::StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("gemm/dace_wide");
    group.sample_size(10);
    for (no, win) in [(4usize, 30usize), (8, 30), (16, 30), (8, 128)] {
        let nn = no * no;
        let a = cvec(&mut r, win * nn);
        let b = cvec(&mut r, win * nn);
        let mut out = vec![Complex64::ZERO; nn];
        let scale = c64(0.5, -0.25);
        let id = format!("{no}x{}x{no}", win * no);
        group.throughput(Throughput::Elements(flops(no, win * no, no, 1)));
        group.bench_with_input(BenchmarkId::new("window", &id), &no, |bench, _| {
            bench.iter(|| gemm::gemm_window_acc(no, win, &a, &b, &mut out, scale))
        });
        group.bench_with_input(BenchmarkId::new("naive_seed", &id), &no, |bench, _| {
            bench.iter(|| gemm::gemm_naive_window_acc(no, win, &a, &b, &mut out, scale))
        });
    }
    group.finish();
}

/// Telemetry overhead: the instrumented blocked path with telemetry
/// *disabled* against the `INSTRUMENT = false` monomorphization with
/// telemetry *absent*, on identical operands. The acceptance bound for
/// this group is a <2% gap — the disabled path pays only a relaxed atomic
/// load per GEMM plus the sharded flop-counter add.
fn bench_telemetry_overhead(c: &mut Criterion) {
    qt_telemetry::set_enabled(false);
    let mut r = rand::rngs::StdRng::seed_from_u64(4);
    let mut group = c.benchmark_group("gemm/telemetry_overhead");
    group.sample_size(20);
    for n in [64usize, 256] {
        let a = cvec(&mut r, n * n);
        let b = cvec(&mut r, n * n);
        let mut out = vec![Complex64::ZERO; n * n];
        group.throughput(Throughput::Elements(flops(n, n, n, 1)));
        group.bench_with_input(BenchmarkId::new("disabled", n), &n, |bench, &n| {
            bench.iter(|| gemm::gemm_blocked_acc(n, n, n, &a, &b, &mut out))
        });
        group.bench_with_input(BenchmarkId::new("uninstrumented", n), &n, |bench, &n| {
            bench.iter(|| gemm::gemm_blocked_acc_uninstrumented(n, n, n, &a, &b, &mut out))
        });
    }
    group.finish();
    qt_telemetry::set_enabled(true);
}

criterion_group!(
    benches,
    bench_rgf_block,
    bench_sse_batch,
    bench_dace_wide,
    bench_telemetry_overhead
);
criterion_main!(benches);
