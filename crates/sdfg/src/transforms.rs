//! Graph transformations on the scope tree (§4, Figs. 7–12).
//!
//! Each function is one of the paper's rewrites. They validate their
//! pattern's preconditions and return an error string when the tree does not
//! match, mirroring how DaCe transformations check applicability before
//! mutating the graph.

use crate::propagate::ParamRange;
use crate::stree::{Access, Node, OpKind, ScopeTree};
use crate::subset::{Dim, Subset};
use crate::symexpr::SymExpr;

/// Tiling specification for one map parameter.
#[derive(Clone, Debug)]
pub struct TileSpec {
    /// Parameter to tile (e.g. `kz`).
    pub param: String,
    /// Number of tiles (`n_kz`); becomes the outer parameter's range.
    pub num_tiles: SymExpr,
    /// Tile size (`s_kz`).
    pub tile_size: SymExpr,
}

impl TileSpec {
    pub fn new(
        param: impl Into<String>,
        num_tiles: impl Into<SymExpr>,
        tile_size: impl Into<SymExpr>,
    ) -> Self {
        TileSpec {
            param: param.into(),
            num_tiles: num_tiles.into(),
            tile_size: tile_size.into(),
        }
    }
}

/// **Map tiling** (Fig. 7): split each listed parameter `p` of the map into
/// an outer `t_p ∈ [0, n_p)` and an inner `p ∈ [t_p·s_p, (t_p+1)·s_p)`.
/// Unlisted parameters stay in the inner map. The outer map models the
/// distribution across processes; propagating memlets through the inner map
/// then yields per-process communication volumes (§4.1).
pub fn map_tiling(tree: &mut ScopeTree, map_label: &str, tiles: &[TileSpec]) -> Result<(), String> {
    let node = tree
        .find_map_mut(map_label)
        .ok_or_else(|| format!("no map labeled `{map_label}`"))?;
    let Node::Map {
        label,
        params,
        body,
    } = node
    else {
        unreachable!()
    };
    for t in tiles {
        if !params.iter().any(|p| p.name == t.param) {
            return Err(format!("map `{map_label}` has no parameter `{}`", t.param));
        }
    }
    let mut outer_params = Vec::new();
    let mut inner_params = Vec::new();
    for p in params.iter() {
        if let Some(t) = tiles.iter().find(|t| t.param == p.name) {
            let tp = format!("t{}", p.name);
            outer_params.push(ParamRange::new(
                tp.clone(),
                SymExpr::int(0),
                t.num_tiles.clone(),
            ));
            let tsym = SymExpr::sym(tp);
            inner_params.push(ParamRange::new(
                p.name.clone(),
                tsym.clone() * t.tile_size.clone(),
                (tsym + SymExpr::int(1)) * t.tile_size.clone(),
            ));
        } else {
            inner_params.push(p.clone());
        }
    }
    let inner = Node::map(format!("{label}_tile"), inner_params, std::mem::take(body));
    *node = Node::map(label.clone(), outer_params, vec![inner]);
    Ok(())
}

fn subset_params(subset: &Subset) -> Vec<String> {
    let mut out = Vec::new();
    for dim in &subset.0 {
        match dim {
            Dim::Index(e) => out.extend(e.symbols()),
            Dim::Range(r) => {
                out.extend(r.begin.symbols());
                out.extend(r.end.symbols());
            }
            Dim::Indirect { args, .. } => {
                for a in args {
                    out.extend(a.symbols());
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

fn compute_params(inputs: &[Access], outputs: &[Access]) -> Vec<String> {
    let mut out = Vec::new();
    for acc in inputs.iter().chain(outputs) {
        out.extend(subset_params(&acc.subset));
    }
    out.sort();
    out.dedup();
    out
}

/// **Map fission** (Fig. 9): split a map whose body is several compute nodes
/// into one map per compute. Each resulting map keeps only the parameters
/// its compute actually uses (the transformation "automatically detects that
/// the top-left and bottom maps are independent of the `j` symbol, and
/// removes it").
///
/// Transient arrays exchanged between the fissioned computes must already be
/// declared (and indexed) at full tensor rank — the builder in
/// [`crate::library`] constructs them that way, matching the paper's
/// statement that fission "substitutes the temporary matrices with
/// multi-dimensional tensors".
pub fn map_fission(tree: &mut ScopeTree, map_label: &str) -> Result<(), String> {
    // Locate the map's position among its siblings.
    let node = tree
        .find_map_mut(map_label)
        .ok_or_else(|| format!("no map labeled `{map_label}`"))?;
    let Node::Map { params, body, .. } = node else {
        unreachable!()
    };
    if body.len() < 2 {
        return Err("map fission requires at least two compute nodes in the body".into());
    }
    if body.iter().any(|n| matches!(n, Node::Map { .. })) {
        return Err("map fission over nested maps is not supported".into());
    }
    let params = params.clone();
    let computes = std::mem::take(body);
    let mut new_maps = Vec::new();
    for compute in computes {
        let Node::Compute {
            label,
            op,
            inputs,
            outputs,
            flops,
        } = compute
        else {
            unreachable!()
        };
        let used = compute_params(&inputs, &outputs);
        let kept: Vec<ParamRange> = params
            .iter()
            .filter(|p| used.contains(&p.name))
            .cloned()
            .collect();
        new_maps.push(Node::map(
            format!("map_{label}"),
            kept,
            vec![Node::Compute {
                label,
                op,
                inputs,
                outputs,
                flops,
            }],
        ));
    }
    // Replace the original map node with the first new map and append the
    // rest as siblings. Simplest correct approach: rebuild at the tree
    // level — the fissioned map must be a root or a direct child of a map.
    replace_with_many(&mut tree.roots, map_label, new_maps)
}

fn replace_with_many(
    nodes: &mut Vec<Node>,
    label: &str,
    replacements: Vec<Node>,
) -> Result<(), String> {
    if let Some(pos) = nodes.iter().position(|n| n.label() == label) {
        nodes.splice(pos..pos + 1, replacements);
        return Ok(());
    }
    for node in nodes.iter_mut() {
        if let Node::Map { body, .. } = node {
            if replace_with_many(body, label, replacements.clone()).is_ok() {
                return Ok(());
            }
        }
    }
    Err(format!("node `{label}` not found for replacement"))
}

/// **Redundancy removal** (Fig. 10b): remove parameters that enter a map's
/// computation only as offsets `kept − removed` where `kept` already spans
/// the full dimension. `pairs` lists `(kept, removed)` parameter names.
///
/// Preconditions checked:
/// 1. every *input* subset of the map's computes depends on `kept`/`removed`
///    only through the affine combination `kept − removed`;
/// 2. the output arrays are transient (we are free to re-shape them).
///
/// Effect: the `removed` parameters disappear from the map; input index
/// expressions `kept − removed` are rewritten to `kept`; output dimensions
/// indexed by pure `removed` are dropped from the array and its accesses.
/// Downstream consumers of the re-shaped arrays have their reads rewritten
/// from `[… kept_dim=kept, …, removed_dim=removed …]` to
/// `[… kept_dim = kept − removed …]`.
pub fn redundancy_removal(
    tree: &mut ScopeTree,
    map_label: &str,
    pairs: &[(String, String)],
) -> Result<(), String> {
    let node = tree
        .find_map_mut(map_label)
        .ok_or_else(|| format!("no map labeled `{map_label}`"))?;
    let Node::Map { params, body, .. } = node else {
        unreachable!()
    };
    // Collect output arrays and their dims indexed by removed params.
    let mut reshaped: Vec<(String, Vec<usize>)> = Vec::new(); // (array, dropped dims)
    for n in body.iter() {
        let Node::Compute {
            inputs, outputs, ..
        } = n
        else {
            return Err("redundancy removal expects compute-only bodies".into());
        };
        for acc in inputs {
            for dim in &acc.subset.0 {
                check_offset_only(dim, pairs)?;
            }
        }
        for acc in outputs {
            let mut dropped = Vec::new();
            for (d, dim) in acc.subset.0.iter().enumerate() {
                if let Dim::Index(e) = dim {
                    if let Some((_, removed)) =
                        pairs.iter().find(|(_, r)| e == &SymExpr::sym(r.clone()))
                    {
                        let _ = removed;
                        dropped.push(d);
                    }
                }
            }
            reshaped.push((acc.array.clone(), dropped));
        }
    }
    // Rewrite the map body.
    for n in body.iter_mut() {
        let Node::Compute {
            inputs, outputs, ..
        } = n
        else {
            unreachable!()
        };
        for acc in inputs.iter_mut() {
            for dim in acc.subset.0.iter_mut() {
                rewrite_offset_to_kept(dim, pairs);
            }
        }
        for acc in outputs.iter_mut() {
            let (_, dropped) = reshaped
                .iter()
                .find(|(a, _)| a == &acc.array)
                .expect("collected above");
            let dims: Vec<Dim> = acc
                .subset
                .0
                .iter()
                .enumerate()
                .filter(|(d, _)| !dropped.contains(d))
                .map(|(_, dim)| dim.clone())
                .collect();
            acc.subset = Subset::new(dims);
        }
    }
    // Remove the parameters from the map.
    params.retain(|p| !pairs.iter().any(|(_, r)| r == &p.name));
    // Re-shape the transient arrays and rewrite all other accesses in the tree.
    for (array, dropped) in &reshaped {
        if dropped.is_empty() {
            continue;
        }
        let desc = tree
            .arrays
            .get_mut(array)
            .ok_or_else(|| format!("unknown array `{array}`"))?;
        if !desc.transient {
            return Err(format!("cannot re-shape non-transient array `{array}`"));
        }
        desc.shape = desc
            .shape
            .iter()
            .enumerate()
            .filter(|(d, _)| !dropped.contains(d))
            .map(|(_, s)| s.clone())
            .collect();
        rewrite_consumers(&mut tree.roots, map_label, array, dropped, pairs);
    }
    Ok(())
}

/// Check a dimension depends on the pair params only via `kept - removed`.
fn check_offset_only(dim: &Dim, pairs: &[(String, String)]) -> Result<(), String> {
    let exprs: Vec<&SymExpr> = match dim {
        Dim::Index(e) => vec![e],
        Dim::Range(r) => vec![&r.begin, &r.end],
        Dim::Indirect { args, .. } => args.iter().collect(),
    };
    for e in exprs {
        let syms = e.symbols();
        for (kept, removed) in pairs {
            let has_k = syms.contains(kept);
            let has_r = syms.contains(removed);
            if !has_k && !has_r {
                continue;
            }
            let Some((coeffs, _)) = e.as_affine() else {
                return Err(format!("non-affine dependence on `{kept}`/`{removed}`"));
            };
            let ck = coeffs.get(kept).copied().unwrap_or(0);
            let cr = coeffs.get(removed).copied().unwrap_or(0);
            if !(ck == 1 && cr == -1) {
                return Err(format!(
                    "input depends on `{kept}`,`{removed}` with coefficients ({ck},{cr}), not (1,-1)"
                ));
            }
        }
    }
    Ok(())
}

/// Rewrite `kept - removed` to `kept` in a dimension.
fn rewrite_offset_to_kept(dim: &mut Dim, pairs: &[(String, String)]) {
    let rewrite = |e: &SymExpr| -> SymExpr {
        let mut out = e.clone();
        for (_, removed) in pairs {
            out = out.subs(removed, &SymExpr::int(0));
        }
        out
    };
    match dim {
        Dim::Index(e) => *e = rewrite(e),
        Dim::Range(r) => {
            r.begin = rewrite(&r.begin);
            r.end = rewrite(&r.end);
        }
        Dim::Indirect { args, .. } => {
            for a in args.iter_mut() {
                *a = rewrite(a);
            }
        }
    }
}

/// Rewrite consumers of a re-shaped transient: reads that indexed the
/// dropped `removed` dims now fold the offset into the kept dims
/// (`[kz, E, qz, w, …] → [kz − qz, E − w, …]`).
fn rewrite_consumers(
    nodes: &mut [Node],
    skip_map: &str,
    array: &str,
    dropped: &[usize],
    pairs: &[(String, String)],
) {
    for node in nodes {
        match node {
            Node::Map { label, body, .. } => {
                if label != skip_map {
                    rewrite_consumers(body, skip_map, array, dropped, pairs);
                }
            }
            Node::Compute {
                inputs, outputs, ..
            } => {
                for acc in inputs.iter_mut().chain(outputs.iter_mut()) {
                    if acc.array != array {
                        continue;
                    }
                    // Fold each dropped dim's removed param into the
                    // matching kept dim, then drop the dim.
                    let mut dims = acc.subset.0.clone();
                    for &d in dropped {
                        if let Dim::Index(removed_expr) = &dims[d] {
                            // Identify which removed param this dim holds.
                            if let Some((kept, removed)) = pairs
                                .iter()
                                .find(|(_, r)| removed_expr == &SymExpr::sym(r.clone()))
                            {
                                // Substitute kept -> kept - removed in all dims.
                                for dim in dims.iter_mut() {
                                    subtract_in_dim(dim, kept, removed);
                                }
                            }
                        }
                    }
                    let dims: Vec<Dim> = dims
                        .into_iter()
                        .enumerate()
                        .filter(|(d, _)| !dropped.contains(d))
                        .map(|(_, dim)| dim)
                        .collect();
                    acc.subset = Subset::new(dims);
                }
            }
        }
    }
}

fn subtract_in_dim(dim: &mut Dim, kept: &str, removed: &str) {
    let sub =
        |e: &SymExpr| -> SymExpr { e.subs(kept, &(SymExpr::sym(kept) - SymExpr::sym(removed))) };
    match dim {
        Dim::Index(e) => {
            if e.symbols().contains(&kept.to_string()) {
                *e = sub(e);
            }
        }
        Dim::Range(r) => {
            if r.begin.symbols().contains(&kept.to_string()) {
                r.begin = sub(&r.begin);
            }
            if r.end.symbols().contains(&kept.to_string()) {
                r.end = sub(&r.end);
            }
        }
        Dim::Indirect { .. } => {}
    }
}

/// **Data-layout transformation** (Fig. 10c): permute the dimensions of an
/// array so that batched operations access contiguous memory. Rewrites the
/// array descriptor and every access in the tree: output dimension `d` is
/// old dimension `perm[d]`.
pub fn data_layout(tree: &mut ScopeTree, array: &str, perm: &[usize]) -> Result<(), String> {
    let desc = tree
        .arrays
        .get_mut(array)
        .ok_or_else(|| format!("unknown array `{array}`"))?;
    if perm.len() != desc.shape.len() {
        return Err(format!(
            "permutation rank {} does not match array rank {}",
            perm.len(),
            desc.shape.len()
        ));
    }
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        if p >= perm.len() || seen[p] {
            return Err("invalid permutation".into());
        }
        seen[p] = true;
    }
    desc.shape = perm.iter().map(|&p| desc.shape[p].clone()).collect();
    fn rewrite(nodes: &mut [Node], array: &str, perm: &[usize]) {
        for node in nodes {
            match node {
                Node::Map { body, .. } => rewrite(body, array, perm),
                Node::Compute {
                    inputs, outputs, ..
                } => {
                    for acc in inputs.iter_mut().chain(outputs.iter_mut()) {
                        if acc.array == array {
                            acc.subset = Subset::new(
                                perm.iter().map(|&p| acc.subset.0[p].clone()).collect(),
                            );
                        }
                    }
                }
            }
        }
    }
    rewrite(&mut tree.roots, array, perm);
    Ok(())
}

/// **Map expansion** (Fig. 11b): split one map into two nested maps, the
/// outer holding `outer_params` (in their original order) and the inner the
/// rest.
pub fn map_expansion(
    tree: &mut ScopeTree,
    map_label: &str,
    inner_params: &[&str],
) -> Result<(), String> {
    let node = tree
        .find_map_mut(map_label)
        .ok_or_else(|| format!("no map labeled `{map_label}`"))?;
    let Node::Map {
        label,
        params,
        body,
    } = node
    else {
        unreachable!()
    };
    for ip in inner_params {
        if !params.iter().any(|p| &p.name == ip) {
            return Err(format!("map `{map_label}` has no parameter `{ip}`"));
        }
    }
    let (inner, outer): (Vec<ParamRange>, Vec<ParamRange>) = params
        .clone()
        .into_iter()
        .partition(|p| inner_params.contains(&p.name.as_str()));
    let inner_map = Node::map(format!("{label}_inner"), inner, std::mem::take(body));
    *node = Node::map(label.clone(), outer, vec![inner_map]);
    Ok(())
}

/// **Multiplication fusion** (Fig. 10d / 11c): absorb the listed map
/// parameters into a single wide GEMM. The parameters are removed from the
/// map; every access dimension that indexed them pointwise becomes a full
/// range, and the compute node becomes [`OpKind::BatchedGemm`] with the
/// absorbed batch volume (per-invocation flops scale by the same factor —
/// the total flop count is unchanged, only the operation granularity).
pub fn multiplication_fusion(
    tree: &mut ScopeTree,
    map_label: &str,
    contract: &[&str],
) -> Result<(), String> {
    let node = tree
        .find_map_mut(map_label)
        .ok_or_else(|| format!("no map labeled `{map_label}`"))?;
    let Node::Map { params, body, .. } = node else {
        unreachable!()
    };
    if body.len() != 1 {
        return Err("multiplication fusion expects a single compute in the map".into());
    }
    let mut contracted: Vec<ParamRange> = Vec::new();
    for c in contract {
        let Some(p) = params.iter().find(|p| &p.name == c) else {
            return Err(format!("map `{map_label}` has no parameter `{c}`"));
        };
        contracted.push(p.clone());
    }
    params.retain(|p| !contract.contains(&p.name.as_str()));
    let batch = contracted
        .iter()
        .fold(SymExpr::int(1), |a, p| a * p.range.length());
    let Node::Compute {
        op,
        inputs,
        outputs,
        flops,
        ..
    } = &mut body[0]
    else {
        return Err("multiplication fusion expects a compute node".into());
    };
    if !matches!(op, OpKind::MatMul | OpKind::BatchedGemm { .. }) {
        return Err("multiplication fusion applies to matrix-multiply computes".into());
    }
    for acc in inputs.iter_mut().chain(outputs.iter_mut()) {
        for d in acc.subset.0.iter_mut() {
            if let Dim::Index(e) = d {
                let syms = e.symbols();
                if contracted.iter().any(|p| syms.contains(&p.name)) {
                    // Propagate the index over the contracted parameters
                    // (Fig. 11b: `E − ω` over ω ∈ [0, Nω) becomes the
                    // range `E − Nω + 1 : E + 1`).
                    *d = Dim::Range(crate::propagate::propagate_index(e, &contracted));
                }
            }
        }
    }
    *flops = (flops.clone() * batch.clone()).simplified();
    *op = OpKind::BatchedGemm { batch };
    Ok(())
}

/// **Map fusion** (Fig. 12): fuse sibling maps with identical leading
/// parameters into one map over those parameters, nesting each original
/// body under the remaining parameters. Transient arrays whose dimensions
/// are indexed pointwise by the fused parameters lose those dimensions —
/// this is the memory-footprint reduction the paper closes §4.2 with.
pub fn map_fusion(
    tree: &mut ScopeTree,
    labels: &[&str],
    fused_params: &[&str],
    fused_label: &str,
) -> Result<(), String> {
    // Extract the maps (must all be roots or siblings under one parent —
    // we support roots, which is where fission left them).
    let mut extracted: Vec<Node> = Vec::new();
    for &l in labels {
        let pos = tree
            .roots
            .iter()
            .position(|n| n.label() == l)
            .ok_or_else(|| format!("map `{l}` is not a root of the tree"))?;
        extracted.push(tree.roots.remove(pos));
    }
    // Verify each contains the fused params and build its residual map.
    let mut fused_ranges: Option<Vec<ParamRange>> = None;
    let mut new_body: Vec<Node> = Vec::new();
    for node in extracted {
        let Node::Map {
            label,
            params,
            body,
        } = node
        else {
            return Err("map fusion applies to map nodes".into());
        };
        let (shared, residual): (Vec<ParamRange>, Vec<ParamRange>) = params
            .into_iter()
            .partition(|p| fused_params.contains(&p.name.as_str()));
        if shared.len() != fused_params.len() {
            return Err(format!("map `{label}` lacks some fused parameters"));
        }
        match &fused_ranges {
            None => fused_ranges = Some(shared),
            Some(existing) => {
                for (a, b) in existing.iter().zip(&shared) {
                    if a.name != b.name || a.range != b.range {
                        return Err("fused parameter ranges differ between maps".into());
                    }
                }
            }
        }
        if residual.is_empty() {
            new_body.extend(body);
        } else {
            new_body.push(Node::map(format!("{label}_rest"), residual, body));
        }
    }
    let fused = Node::map(
        fused_label,
        fused_ranges.expect("at least one map"),
        new_body,
    );
    tree.roots.push(fused);
    // Shrink transients: drop dims indexed pointwise by fused params
    // everywhere they appear.
    let transient_names: Vec<String> = tree
        .arrays
        .iter()
        .filter(|(_, d)| d.transient)
        .map(|(n, _)| n.clone())
        .collect();
    for name in transient_names {
        shrink_transient(tree, &name, fused_params)?;
    }
    Ok(())
}

/// Drop the dimensions of `array` that every access indexes with exactly one
/// of `params` (pointwise). No-op if accesses disagree.
fn shrink_transient(tree: &mut ScopeTree, array: &str, params: &[&str]) -> Result<(), String> {
    // Gather all accesses' subsets.
    let mut subsets: Vec<Subset> = Vec::new();
    fn gather(nodes: &[Node], array: &str, out: &mut Vec<Subset>) {
        for n in nodes {
            match n {
                Node::Map { body, .. } => gather(body, array, out),
                Node::Compute {
                    inputs, outputs, ..
                } => {
                    for acc in inputs.iter().chain(outputs) {
                        if acc.array == array {
                            out.push(acc.subset.clone());
                        }
                    }
                }
            }
        }
    }
    gather(&tree.roots, array, &mut subsets);
    if subsets.is_empty() {
        return Ok(());
    }
    let ndim = subsets[0].ndim();
    let mut droppable: Vec<usize> = Vec::new();
    for d in 0..ndim {
        let all_param_indexed = subsets.iter().all(|s| {
            matches!(&s.0[d], Dim::Index(e)
                if params.iter().any(|p| e == &SymExpr::sym(p.to_string())))
        });
        if all_param_indexed {
            droppable.push(d);
        }
    }
    if droppable.is_empty() {
        return Ok(());
    }
    let desc = tree.arrays.get_mut(array).expect("exists");
    desc.shape = desc
        .shape
        .iter()
        .enumerate()
        .filter(|(d, _)| !droppable.contains(d))
        .map(|(_, s)| s.clone())
        .collect();
    fn rewrite(nodes: &mut [Node], array: &str, droppable: &[usize]) {
        for n in nodes {
            match n {
                Node::Map { body, .. } => rewrite(body, array, droppable),
                Node::Compute {
                    inputs, outputs, ..
                } => {
                    for acc in inputs.iter_mut().chain(outputs.iter_mut()) {
                        if acc.array == array {
                            acc.subset = Subset::new(
                                acc.subset
                                    .0
                                    .iter()
                                    .enumerate()
                                    .filter(|(d, _)| !droppable.contains(d))
                                    .map(|(_, dim)| dim.clone())
                                    .collect(),
                            );
                        }
                    }
                }
            }
        }
    }
    rewrite(&mut tree.roots, array, &droppable);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stree::{ArrayDesc, Dtype};
    use crate::symexpr::Bindings;

    fn bind(pairs: &[(&str, i64)]) -> Bindings {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    /// map [i=0:M]: B[i] = f(A[i]) — tile i by 4 tiles of size s.
    #[test]
    fn tiling_splits_ranges() {
        let mut t = ScopeTree::new("t");
        let m = SymExpr::sym("M");
        t.add_array(
            "A",
            ArrayDesc::new(vec![m.clone()], Dtype::Complex128, false),
        );
        t.add_array(
            "B",
            ArrayDesc::new(vec![m.clone()], Dtype::Complex128, false),
        );
        t.roots.push(Node::map(
            "work",
            vec![ParamRange::new("i", 0, m.clone())],
            vec![Node::compute(
                "f",
                OpKind::Tasklet,
                vec![Access::read(
                    "A",
                    Subset::new(vec![Dim::idx(SymExpr::sym("i"))]),
                )],
                vec![Access::write(
                    "B",
                    Subset::new(vec![Dim::idx(SymExpr::sym("i"))]),
                )],
                SymExpr::int(1),
            )],
        ));
        map_tiling(
            &mut t,
            "work",
            &[TileSpec::new("i", SymExpr::sym("Ti"), SymExpr::sym("si"))],
        )
        .unwrap();
        assert!(t.validate().is_ok());
        assert_eq!(t.num_maps(), 2);
        // Outer map runs over ti ∈ [0, Ti); inner over [ti*si, (ti+1)*si).
        let Node::Map { params, body, .. } = t.find_map("work").unwrap() else {
            panic!()
        };
        assert_eq!(params[0].name, "ti");
        let Node::Map { params: inner, .. } = &body[0] else {
            panic!()
        };
        let b = bind(&[("ti", 2), ("si", 10), ("M", 40), ("Ti", 4)]);
        assert_eq!(inner[0].range.begin.eval(&b).unwrap(), 20);
        assert_eq!(inner[0].range.end.eval(&b).unwrap(), 30);
        // Total accesses unchanged: Ti*si iterations.
        let stats = t.stats(&b, &[]);
        assert_eq!(stats.accesses["A"], 40);
    }

    fn fission_fixture() -> ScopeTree {
        // map [i=0:M, j=0:N]:
        //   tmp[i, j] = A[i] * W[j]        (uses i, j)
        //   OUT[i] += tmp[i, j]            (uses i, j)
        //   AUX[j] = W[j] * W[j]           (uses j only)
        let mut t = ScopeTree::new("fiss");
        let m = SymExpr::sym("M");
        let n = SymExpr::sym("N");
        t.add_array(
            "A",
            ArrayDesc::new(vec![m.clone()], Dtype::Complex128, false),
        );
        t.add_array(
            "W",
            ArrayDesc::new(vec![n.clone()], Dtype::Complex128, false),
        );
        t.add_array(
            "OUT",
            ArrayDesc::new(vec![m.clone()], Dtype::Complex128, false),
        );
        t.add_array(
            "AUX",
            ArrayDesc::new(vec![n.clone()], Dtype::Complex128, false),
        );
        t.add_array(
            "tmp",
            ArrayDesc::new(vec![m.clone(), n.clone()], Dtype::Complex128, true),
        );
        let i = SymExpr::sym("i");
        let j = SymExpr::sym("j");
        t.roots.push(Node::map(
            "big",
            vec![ParamRange::new("i", 0, m), ParamRange::new("j", 0, n)],
            vec![
                Node::compute(
                    "mul",
                    OpKind::Tasklet,
                    vec![
                        Access::read("A", Subset::new(vec![Dim::idx(i.clone())])),
                        Access::read("W", Subset::new(vec![Dim::idx(j.clone())])),
                    ],
                    vec![Access::write(
                        "tmp",
                        Subset::new(vec![Dim::idx(i.clone()), Dim::idx(j.clone())]),
                    )],
                    SymExpr::int(6),
                ),
                Node::compute(
                    "reduce",
                    OpKind::Tasklet,
                    vec![Access::read(
                        "tmp",
                        Subset::new(vec![Dim::idx(i.clone()), Dim::idx(j.clone())]),
                    )],
                    vec![Access::accumulate(
                        "OUT",
                        Subset::new(vec![Dim::idx(i.clone())]),
                    )],
                    SymExpr::int(2),
                ),
                Node::compute(
                    "aux",
                    OpKind::Tasklet,
                    vec![Access::read("W", Subset::new(vec![Dim::idx(j.clone())]))],
                    vec![Access::write("AUX", Subset::new(vec![Dim::idx(j.clone())]))],
                    SymExpr::int(6),
                ),
            ],
        ));
        t
    }

    #[test]
    fn fission_prunes_unused_params() {
        let mut t = fission_fixture();
        let b = bind(&[("M", 8), ("N", 3)]);
        let before = t.stats(&b, &[]);
        map_fission(&mut t, "big").unwrap();
        assert!(t.validate().is_ok());
        assert_eq!(t.roots.len(), 3);
        // `aux` map must have dropped `i`: its W accesses fall from M*N to N.
        let Node::Map { params, .. } = t.find_map("map_aux").unwrap() else {
            panic!()
        };
        assert_eq!(params.len(), 1);
        assert_eq!(params[0].name, "j");
        let after = t.stats(&b, &[]);
        // W read by `mul` (M*N) + `aux` (now N instead of M*N).
        assert_eq!(before.accesses["W"], 8 * 3 + 8 * 3);
        assert_eq!(after.accesses["W"], 8 * 3 + 3);
        // aux flops shrink by factor M.
        assert_eq!(before.flops - after.flops, 6 * (8 * 3 - 3));
    }

    #[test]
    fn redundancy_removal_drops_offset_params() {
        // map [k=0:K, q=0:Q]: T[k, q] = G[k - q]  →  map [k=0:K]: T[k] = G[k]
        let mut t = ScopeTree::new("rr");
        let kk = SymExpr::sym("K");
        let qq = SymExpr::sym("Q");
        t.add_array(
            "G",
            ArrayDesc::new(vec![kk.clone()], Dtype::Complex128, false),
        );
        t.add_array(
            "T",
            ArrayDesc::new(vec![kk.clone(), qq.clone()], Dtype::Complex128, true),
        );
        t.add_array(
            "OUT",
            ArrayDesc::new(vec![kk.clone(), qq.clone()], Dtype::Complex128, false),
        );
        let k = SymExpr::sym("k");
        let q = SymExpr::sym("q");
        t.roots.push(Node::map(
            "produce",
            vec![
                ParamRange::new("k", 0, kk.clone()),
                ParamRange::new("q", 0, qq.clone()),
            ],
            vec![Node::compute(
                "copy",
                OpKind::Tasklet,
                vec![Access::read(
                    "G",
                    Subset::new(vec![Dim::idx(k.clone() - q.clone())]),
                )],
                vec![Access::write(
                    "T",
                    Subset::new(vec![Dim::idx(k.clone()), Dim::idx(q.clone())]),
                )],
                SymExpr::int(1),
            )],
        ));
        // A consumer reading T[k, q].
        t.roots.push(Node::map(
            "consume",
            vec![
                ParamRange::new("k", 0, kk.clone()),
                ParamRange::new("q", 0, qq.clone()),
            ],
            vec![Node::compute(
                "use",
                OpKind::Tasklet,
                vec![Access::read(
                    "T",
                    Subset::new(vec![Dim::idx(k.clone()), Dim::idx(q.clone())]),
                )],
                vec![Access::write(
                    "OUT",
                    Subset::new(vec![Dim::idx(k.clone()), Dim::idx(q.clone())]),
                )],
                SymExpr::int(1),
            )],
        ));
        redundancy_removal(&mut t, "produce", &[("k".to_string(), "q".to_string())]).unwrap();
        assert!(t.validate().is_ok());
        // Producer lost q.
        let Node::Map { params, .. } = t.find_map("produce").unwrap() else {
            panic!()
        };
        assert_eq!(params.len(), 1);
        // T is now 1-D.
        assert_eq!(t.arrays["T"].shape.len(), 1);
        // Consumer reads T[k - q].
        let Node::Map { body, .. } = t.find_map("consume").unwrap() else {
            panic!()
        };
        let Node::Compute { inputs, .. } = &body[0] else {
            panic!()
        };
        assert_eq!(inputs[0].subset.0.len(), 1);
        let Dim::Index(e) = &inputs[0].subset.0[0] else {
            panic!()
        };
        assert_eq!(e, &(k.clone() - q.clone()));
        // Producer flop volume drops by factor Q.
        let b = bind(&[("K", 10), ("Q", 4)]);
        let stats = t.stats(&b, &[]);
        assert_eq!(stats.accesses["G"], 10);
    }

    #[test]
    fn redundancy_removal_rejects_wrong_pattern() {
        // G[k + q] has coefficients (1, 1): not removable.
        let mut t = ScopeTree::new("rr2");
        let kk = SymExpr::sym("K");
        t.add_array(
            "G",
            ArrayDesc::new(vec![kk.clone()], Dtype::Complex128, false),
        );
        t.add_array(
            "T",
            ArrayDesc::new(vec![kk.clone()], Dtype::Complex128, true),
        );
        let k = SymExpr::sym("k");
        let q = SymExpr::sym("q");
        t.roots.push(Node::map(
            "produce",
            vec![
                ParamRange::new("k", 0, kk.clone()),
                ParamRange::new("q", 0, 4),
            ],
            vec![Node::compute(
                "copy",
                OpKind::Tasklet,
                vec![Access::read(
                    "G",
                    Subset::new(vec![Dim::idx(k.clone() + q.clone())]),
                )],
                vec![Access::write("T", Subset::new(vec![Dim::idx(k.clone())]))],
                SymExpr::int(1),
            )],
        ));
        assert!(
            redundancy_removal(&mut t, "produce", &[("k".to_string(), "q".to_string())]).is_err()
        );
    }

    #[test]
    fn data_layout_permutes_shapes_and_accesses() {
        let mut t = ScopeTree::new("dl");
        t.add_array(
            "X",
            ArrayDesc::new(
                vec![SymExpr::sym("A"), SymExpr::sym("B"), SymExpr::sym("C")],
                Dtype::Complex128,
                false,
            ),
        );
        t.roots.push(Node::map(
            "m",
            vec![ParamRange::new("a", 0, SymExpr::sym("A"))],
            vec![Node::compute(
                "c",
                OpKind::Tasklet,
                vec![Access::read(
                    "X",
                    Subset::new(vec![
                        Dim::idx(SymExpr::sym("a")),
                        Dim::full(SymExpr::sym("B")),
                        Dim::full(SymExpr::sym("C")),
                    ]),
                )],
                vec![],
                SymExpr::int(1),
            )],
        ));
        data_layout(&mut t, "X", &[1, 2, 0]).unwrap();
        assert_eq!(t.arrays["X"].shape[0], SymExpr::sym("B"));
        assert_eq!(t.arrays["X"].shape[2], SymExpr::sym("A"));
        let Node::Map { body, .. } = t.find_map("m").unwrap() else {
            panic!()
        };
        let Node::Compute { inputs, .. } = &body[0] else {
            panic!()
        };
        assert!(matches!(&inputs[0].subset.0[2], Dim::Index(e) if e == &SymExpr::sym("a")));
        // Bad permutation rejected.
        assert!(data_layout(&mut t, "X", &[0, 0, 1]).is_err());
    }

    #[test]
    fn expansion_nests_params() {
        let mut t = ScopeTree::new("ex");
        t.add_array(
            "A",
            ArrayDesc::new(vec![SymExpr::sym("N")], Dtype::Complex128, false),
        );
        t.roots.push(Node::map(
            "m",
            vec![
                ParamRange::new("i", 0, SymExpr::sym("N")),
                ParamRange::new("w", 0, SymExpr::sym("W")),
            ],
            vec![Node::compute(
                "c",
                OpKind::Tasklet,
                vec![Access::read(
                    "A",
                    Subset::new(vec![Dim::idx(SymExpr::sym("i"))]),
                )],
                vec![],
                SymExpr::int(1),
            )],
        ));
        map_expansion(&mut t, "m", &["w"]).unwrap();
        assert_eq!(t.num_maps(), 2);
        let Node::Map { params, body, .. } = t.find_map("m").unwrap() else {
            panic!()
        };
        assert_eq!(params.len(), 1);
        assert_eq!(params[0].name, "i");
        let Node::Map { params: inner, .. } = &body[0] else {
            panic!()
        };
        assert_eq!(inner[0].name, "w");
    }

    #[test]
    fn fusion_contracts_batch_into_gemm() {
        // map [a=0:NA, e=0:NE]: OUT[a, e] = M1[a, e] @ M2  (Norb^3 matmul)
        let mut t = ScopeTree::new("mf");
        let na = SymExpr::sym("NA");
        let ne = SymExpr::sym("NE");
        t.add_array(
            "M1",
            ArrayDesc::new(vec![na.clone(), ne.clone()], Dtype::Complex128, false),
        );
        t.add_array(
            "OUT",
            ArrayDesc::new(vec![na.clone(), ne.clone()], Dtype::Complex128, false),
        );
        t.roots.push(Node::map(
            "m",
            vec![
                ParamRange::new("a", 0, na.clone()),
                ParamRange::new("e", 0, ne.clone()),
            ],
            vec![Node::compute(
                "mm",
                OpKind::MatMul,
                vec![Access::read(
                    "M1",
                    Subset::new(vec![
                        Dim::idx(SymExpr::sym("a")),
                        Dim::idx(SymExpr::sym("e")),
                    ]),
                )],
                vec![Access::write(
                    "OUT",
                    Subset::new(vec![
                        Dim::idx(SymExpr::sym("a")),
                        Dim::idx(SymExpr::sym("e")),
                    ]),
                )],
                SymExpr::int(100),
            )],
        ));
        let b = bind(&[("NA", 4), ("NE", 6)]);
        let before = t.stats(&b, &[]);
        multiplication_fusion(&mut t, "m", &["e"]).unwrap();
        assert!(t.validate().is_ok());
        let after = t.stats(&b, &[]);
        // Same total flop, fewer larger invocations.
        assert_eq!(before.flops, after.flops);
        let Node::Map { params, body, .. } = t.find_map("m").unwrap() else {
            panic!()
        };
        assert_eq!(params.len(), 1);
        let Node::Compute { op, inputs, .. } = &body[0] else {
            panic!()
        };
        assert!(matches!(op, OpKind::BatchedGemm { .. }));
        assert!(matches!(&inputs[0].subset.0[1], Dim::Range(_)));
    }

    #[test]
    fn map_fusion_shrinks_transients() {
        // Two root maps over (a), exchanging transient T[a, x].
        let mut t = ScopeTree::new("fuse");
        let na = SymExpr::sym("NA");
        let nx = SymExpr::sym("NX");
        t.add_array(
            "IN",
            ArrayDesc::new(vec![na.clone(), nx.clone()], Dtype::Complex128, false),
        );
        t.add_array(
            "T",
            ArrayDesc::new(vec![na.clone(), nx.clone()], Dtype::Complex128, true),
        );
        t.add_array(
            "OUT",
            ArrayDesc::new(vec![na.clone(), nx.clone()], Dtype::Complex128, false),
        );
        let a = SymExpr::sym("a");
        let x = SymExpr::sym("x");
        t.roots.push(Node::map(
            "p1",
            vec![
                ParamRange::new("a", 0, na.clone()),
                ParamRange::new("x", 0, nx.clone()),
            ],
            vec![Node::compute(
                "w",
                OpKind::Tasklet,
                vec![Access::read(
                    "IN",
                    Subset::new(vec![Dim::idx(a.clone()), Dim::idx(x.clone())]),
                )],
                vec![Access::write(
                    "T",
                    Subset::new(vec![Dim::idx(a.clone()), Dim::idx(x.clone())]),
                )],
                SymExpr::int(1),
            )],
        ));
        t.roots.push(Node::map(
            "p2",
            vec![
                ParamRange::new("a", 0, na.clone()),
                ParamRange::new("x", 0, nx.clone()),
            ],
            vec![Node::compute(
                "r",
                OpKind::Tasklet,
                vec![Access::read(
                    "T",
                    Subset::new(vec![Dim::idx(a.clone()), Dim::idx(x.clone())]),
                )],
                vec![Access::write(
                    "OUT",
                    Subset::new(vec![Dim::idx(a.clone()), Dim::idx(x.clone())]),
                )],
                SymExpr::int(1),
            )],
        ));
        let b = bind(&[("NA", 10), ("NX", 7)]);
        let before = t.stats(&b, &[]);
        assert_eq!(before.transient_bytes, 10 * 7 * 16);
        map_fusion(&mut t, &["p1", "p2"], &["a"], "fused").unwrap();
        assert!(t.validate().is_ok());
        // T lost the `a` dimension: footprint / NA.
        let after = t.stats(&b, &[]);
        assert_eq!(after.transient_bytes, 7 * 16);
        assert_eq!(t.arrays["T"].shape.len(), 1);
        assert_eq!(t.roots.len(), 1);
        // Semantics-preserving for movement on non-transients.
        assert_eq!(before.accesses["IN"], after.accesses["IN"]);
        assert_eq!(before.accesses["OUT"], after.accesses["OUT"]);
    }
}
