//! Complex GEMM kernels.
//!
//! Three entry points matter for the simulator:
//! * [`gemm`] / [`gemm_acc`] — general dense products for the RGF blocks;
//! * [`gemm_raw_acc`] — slice-level kernel so the SSE tensor code can multiply
//!   sub-views of large batched layouts without copying;
//! * [`batched_gemm_acc`] — many small `Norb x Norb` products, the hot loop of
//!   the *un*-transformed SSE kernel (the DaCe variant replaces it with one
//!   wide GEMM, cf. Fig. 10d/11c).
//!
//! The kernel is an `i-k-j` loop over row slices: the innermost loop streams
//! both `B`'s row and `C`'s row, which vectorizes well and avoids bounds
//! checks via slice iteration. Large products are parallelized with rayon
//! over row bands.

use crate::complex::Complex64;
use crate::dense::Matrix;
use crate::flops;
use rayon::prelude::*;

/// Below this many complex multiply-adds the product stays single-threaded.
const PAR_THRESHOLD: usize = 64 * 64 * 64;

/// `out = a @ b` (out must be zero- or garbage-initialized; it is overwritten).
pub fn gemm(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    out.fill_zero();
    gemm_acc(a, b, out);
}

/// `out += a @ b`.
pub fn gemm_acc(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "inner dimension mismatch");
    assert_eq!(out.shape(), (m, n), "output shape mismatch");
    gemm_raw_acc(m, k, n, a.as_slice(), b.as_slice(), out.as_mut_slice());
}

/// Slice-level `out[m x n] += a[m x k] @ b[k x n]`, all row-major.
pub fn gemm_raw_acc(m: usize, k: usize, n: usize, a: &[Complex64], b: &[Complex64], out: &mut [Complex64]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    flops::add_gemm_flops(m, k, n);
    if m * k * n >= PAR_THRESHOLD && m > 1 {
        // Parallelize across row bands of the output.
        let band = (m / rayon::current_num_threads().max(1)).max(1);
        out.par_chunks_mut(band * n)
            .enumerate()
            .for_each(|(band_idx, out_band)| {
                let i0 = band_idx * band;
                let rows = out_band.len() / n;
                gemm_serial(rows, k, n, &a[i0 * k..(i0 + rows) * k], b, out_band);
            });
    } else {
        gemm_serial(m, k, n, a, b, out);
    }
}

#[inline]
fn gemm_serial(m: usize, k: usize, n: usize, a: &[Complex64], b: &[Complex64], out: &mut [Complex64]) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == Complex64::ZERO {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                *o = o.mul_add(a_ip, b_pj);
            }
        }
    }
}

/// `out[idx] += a[idx] @ b[idx]` for a batch of equally-shaped small
/// matrices packed contiguously (each `m x k`, `k x n`, `m x n`).
pub fn batched_gemm_acc(
    m: usize,
    k: usize,
    n: usize,
    batch: usize,
    a: &[Complex64],
    b: &[Complex64],
    out: &mut [Complex64],
) {
    assert_eq!(a.len(), batch * m * k);
    assert_eq!(b.len(), batch * k * n);
    assert_eq!(out.len(), batch * m * n);
    flops::add_flops(8 * (batch * m * k * n) as u64);
    if batch * m * k * n >= PAR_THRESHOLD && batch > 1 {
        out.par_chunks_mut(m * n).enumerate().for_each(|(t, o)| {
            gemm_serial(m, k, n, &a[t * m * k..(t + 1) * m * k], &b[t * k * n..(t + 1) * k * n], o);
        });
    } else {
        for t in 0..batch {
            gemm_serial(
                m,
                k,
                n,
                &a[t * m * k..(t + 1) * m * k],
                &b[t * k * n..(t + 1) * k * n],
                &mut out[t * m * n..(t + 1) * m * n],
            );
        }
    }
}

/// `out += a @ b` where `b` is conjugate-transposed on the fly
/// (`out[m x n] += a[m x k] @ b^H`, with `b` stored row-major as `n x k`).
/// Avoids materializing `B^H` in the SSE Π kernel.
pub fn gemm_bdagger_acc(m: usize, k: usize, n: usize, a: &[Complex64], b: &[Complex64], out: &mut [Complex64]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    flops::add_gemm_flops(m, k, n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = Complex64::ZERO;
            for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                acc = acc.mul_add(x, y.conj());
            }
            out[i * n + j] += acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use rand::{Rng as _, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, k) = a.shape();
        let n = b.cols();
        Matrix::from_fn(m, n, |i, j| {
            (0..k).map(|p| a[(i, p)] * b[(p, j)]).sum()
        })
    }

    #[test]
    fn gemm_matches_naive() {
        let mut r = rng();
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (7, 5, 6), (16, 16, 16), (33, 17, 9)] {
            let a = Matrix::random(m, k, &mut r);
            let b = Matrix::random(k, n, &mut r);
            let mut out = Matrix::zeros(m, n);
            gemm(&a, &b, &mut out);
            assert!(out.max_abs_diff(&naive(&a, &b)) < 1e-12, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn gemm_parallel_path_matches() {
        let mut r = rng();
        let a = Matrix::random(80, 70, &mut r);
        let b = Matrix::random(70, 90, &mut r);
        let mut out = Matrix::zeros(80, 90);
        gemm(&a, &b, &mut out);
        assert!(out.max_abs_diff(&naive(&a, &b)) < 1e-10);
    }

    #[test]
    fn gemm_acc_accumulates() {
        let mut r = rng();
        let a = Matrix::random(4, 4, &mut r);
        let b = Matrix::random(4, 4, &mut r);
        let mut out = Matrix::identity(4);
        gemm_acc(&a, &b, &mut out);
        let expect = &Matrix::identity(4) + &naive(&a, &b);
        assert!(out.max_abs_diff(&expect) < 1e-13);
    }

    #[test]
    fn batched_matches_loop_of_gemms() {
        let mut r = rng();
        let (m, k, n, batch) = (3, 4, 2, 5);
        let a: Vec<_> = (0..batch * m * k)
            .map(|_| c64(r.random_range(-1.0..1.0), r.random_range(-1.0..1.0)))
            .collect();
        let b: Vec<_> = (0..batch * k * n)
            .map(|_| c64(r.random_range(-1.0..1.0), r.random_range(-1.0..1.0)))
            .collect();
        let mut out = vec![Complex64::ZERO; batch * m * n];
        batched_gemm_acc(m, k, n, batch, &a, &b, &mut out);
        for t in 0..batch {
            let am = Matrix::from_vec(m, k, a[t * m * k..(t + 1) * m * k].to_vec());
            let bm = Matrix::from_vec(k, n, b[t * k * n..(t + 1) * k * n].to_vec());
            let expect = naive(&am, &bm);
            let got = Matrix::from_vec(m, n, out[t * m * n..(t + 1) * m * n].to_vec());
            assert!(got.max_abs_diff(&expect) < 1e-12);
        }
    }

    #[test]
    fn bdagger_matches_explicit_dagger() {
        let mut r = rng();
        let a = Matrix::random(3, 5, &mut r);
        let b = Matrix::random(4, 5, &mut r); // b^H is 5x4
        let mut out = vec![Complex64::ZERO; 3 * 4];
        gemm_bdagger_acc(3, 5, 4, a.as_slice(), b.as_slice(), &mut out);
        let expect = a.matmul(&b.dagger());
        let got = Matrix::from_vec(3, 4, out);
        assert!(got.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn flop_accounting() {
        let (_, d) = crate::flops::count_flops(|| {
            let a = Matrix::zeros(2, 3);
            let b = Matrix::zeros(3, 4);
            let mut out = Matrix::zeros(2, 4);
            gemm(&a, &b, &mut out);
        });
        assert_eq!(d, 8 * 2 * 3 * 4);
    }
}
