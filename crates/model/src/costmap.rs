//! Per-work-unit cost model for the adaptive tiling (§4.1 extended).
//!
//! The tile search of §4.1 predicts *aggregate* runtime from machine
//! parameters; load balancing needs the cost of each individual `(energy,
//! atom)` tile. [`CostMap`] combines three sources, in increasing order of
//! authority:
//!
//! 1. **predicted flops** — the exact tile-restricted SSE count
//!    ([`qt_core::flops::sse_dace_flops_tile`]) plus the unit's RGF energy
//!    chunk ([`qt_core::flops::rgf_flops_chunk`]); sums over all units
//!    reproduce the global exact models, so predicted shares partition the
//!    true total;
//! 2. **quarantine masks** — grid points excluded by the health layer
//!    ([`qt_core::health::CoverageReport`]) do no SSE work, so a unit's
//!    prediction is scaled by its live-point fraction;
//! 3. **measured seconds** — per-unit wall times reported back by the
//!    distributed runtime; once a unit has been measured, its weight is
//!    the measurement, and the measured units also fit a global flop rate
//!    that converts the remaining predictions into seconds.
//!
//! [`CostMap::weights`] therefore always returns *commensurable* per-unit
//! costs (seconds when any measurement exists, flops otherwise — the
//! weighted partitioner only cares about ratios).

use crate::machine::Machine;
use qt_core::device::Device;
use qt_core::flops::{rgf_flops_chunk, sse_dace_flops_tile};
use qt_core::health::CoverageReport;
use qt_core::params::SimParams;
use qt_dist::decomp::{BlockPartition, DaceDecomp};

/// Per-unit cost estimates for one `TE × TA` unit grid.
#[derive(Clone, Debug)]
pub struct CostMap {
    /// The unit grid the costs refer to (unit `u` = tile `(u/TA, u%TA)`).
    pub dec: DaceDecomp,
    /// Predicted flops per unit (SSE tile + RGF chunk), quarantine-scaled.
    pub predicted_flops: Vec<f64>,
    /// Fraction of each unit's electron grid points still live (1.0 until
    /// [`CostMap::apply_quarantine`] reports exclusions).
    pub live_fraction: Vec<f64>,
    /// Latest measured wall seconds per unit, `None` until observed.
    pub measured_secs: Vec<Option<f64>>,
    /// Seconds per flop seeded from a machine model, refined by
    /// observations. `None` until either source provides one.
    secs_per_flop: Option<f64>,
}

impl CostMap {
    /// Predict per-unit costs for a `te × ta` tiling of the device. The
    /// prediction covers the SSE tile work — the phase the weighted
    /// partitioner schedules; the GF phase keeps its own uniform energy
    /// split (see [`CostMap::predict_with_gf`] for the combined model).
    pub fn predict(p: &SimParams, dev: &Device, te: usize, ta: usize) -> Self {
        let dec = DaceDecomp::new(p, te, ta);
        let units = dec.procs();
        let mut predicted = Vec::with_capacity(units);
        for u in 0..units {
            let (i, j) = dec.coords(u);
            let e_range = dec.energy.range(i);
            let a_range = dec.atoms.range(j);
            predicted.push(sse_dace_flops_tile(p, dev, &e_range, &a_range) as f64);
        }
        CostMap {
            dec,
            predicted_flops: predicted,
            live_fraction: vec![1.0; units],
            measured_secs: vec![None; units],
            secs_per_flop: None,
        }
    }

    /// Like [`CostMap::predict`] but each unit also carries its GF-phase
    /// RGF energy chunk (`BlockPartition(NE, units)`), for whole-iteration
    /// cost accounting (e.g. the `reproduce profile` table).
    pub fn predict_with_gf(p: &SimParams, dev: &Device, te: usize, ta: usize) -> Self {
        Self::predict_with_gf_scaled(p, dev, te, ta, 1.0)
    }

    /// [`CostMap::predict_with_gf`] with a kernel-dependent scale on the
    /// RGF chunk: `rgf_scale` is the fraction of the all-dense RGF flops
    /// the configured multiply strategy actually performs (see
    /// [`rgf_flop_scale`]). The SSE share is untouched — kernel selection
    /// only affects the coupling products inside RGF.
    pub fn predict_with_gf_scaled(
        p: &SimParams,
        dev: &Device,
        te: usize,
        ta: usize,
        rgf_scale: f64,
    ) -> Self {
        let mut cm = Self::predict(p, dev, te, ta);
        let units = cm.predicted_flops.len();
        let gf = BlockPartition::new(p.ne, units);
        for (u, f) in cm.predicted_flops.iter_mut().enumerate() {
            *f += rgf_flops_chunk(p, gf.len(u)) * rgf_scale;
        }
        cm
    }

    /// Seed the flop→seconds conversion from a machine model (one GPU's
    /// effective SSE rate). Observations override this as they arrive.
    pub fn seed_rate_from(&mut self, m: &Machine) {
        let rate = m.gpu_peak_flops * m.eff_sse;
        if rate > 0.0 {
            self.secs_per_flop = Some(1.0 / rate);
        }
    }

    /// Scale each unit's prediction by the fraction of its electron grid
    /// points the health layer left live. `report` covers the flattened
    /// `Nkz × NE` electron grid (`grid_index = kz·NE + e`); a quarantined
    /// point removes that energy's share of the unit's SSE work for one
    /// momentum point.
    pub fn apply_quarantine(&mut self, p: &SimParams, report: &CoverageReport) {
        if report.quarantined.is_empty() {
            return;
        }
        let te = self.dec.te;
        // Quarantined energies per energy-tile row, over all kz.
        let mut dead_by_tile = vec![0usize; te];
        for q in &report.quarantined {
            let e = q.grid_index % p.ne;
            dead_by_tile[self.dec.energy.owner(e)] += 1;
        }
        for u in 0..self.predicted_flops.len() {
            let (i, _) = self.dec.coords(u);
            let points = self.dec.energy.len(i) * p.nkz;
            if points == 0 {
                continue;
            }
            let dead = dead_by_tile[i].min(points);
            let live = (points - dead) as f64 / points as f64;
            // Rescale relative to the previous mask so repeated
            // applications don't compound.
            let prev = self.live_fraction[u];
            if prev > 0.0 {
                self.predicted_flops[u] *= live / prev;
            }
            self.live_fraction[u] = live;
        }
    }

    /// Record a measured wall time for one unit and refresh the fitted
    /// flop rate from all measured units.
    pub fn observe(&mut self, unit: usize, secs: f64) {
        if secs.is_finite() && secs >= 0.0 {
            self.measured_secs[unit] = Some(secs);
            self.refit();
        }
    }

    /// Record measured wall times for every unit at once (e.g. from the
    /// per-unit telemetry of one SCF iteration). Non-finite entries are
    /// ignored.
    pub fn observe_all(&mut self, secs: &[f64]) {
        for (u, &s) in secs.iter().enumerate().take(self.measured_secs.len()) {
            if s.is_finite() && s >= 0.0 {
                self.measured_secs[u] = Some(s);
            }
        }
        self.refit();
    }

    fn refit(&mut self) {
        let mut flops = 0.0;
        let mut secs = 0.0;
        for (u, m) in self.measured_secs.iter().enumerate() {
            if let Some(s) = m {
                flops += self.predicted_flops[u];
                secs += s;
            }
        }
        if flops > 0.0 && secs > 0.0 {
            self.secs_per_flop = Some(secs / flops);
        }
    }

    /// Commensurable per-unit weights for the partitioner: measured
    /// seconds where available, predictions converted through the fitted
    /// (or seeded) rate otherwise. With no rate at all the raw flop
    /// counts are returned — only ratios matter downstream.
    pub fn weights(&self) -> Vec<f64> {
        (0..self.predicted_flops.len())
            .map(|u| match (self.measured_secs[u], self.secs_per_flop) {
                (Some(s), _) => s,
                (None, Some(spf)) => self.predicted_flops[u] * spf,
                (None, None) => self.predicted_flops[u],
            })
            .collect()
    }
}

/// Fraction of RGF's per-block flops spent in the off-diagonal coupling
/// products — the ops the Table 6 kernel selector can route to CSR. Per
/// interior block the solver performs 11 coupling GEMM-equivalents
/// (4 forward, 7 backward), ~9 dense-only GEMM-equivalents on the
/// Green's-function blocks (the two `·gᴿ†` updates of `G<` are fused
/// into one), and one LU inversion (~⅓ of a GEMM at the same order), so
/// the routable share is `11 / (20 + 1/3)`.
pub const RGF_COUPLING_FLOP_FRACTION: f64 = 11.0 / (20.0 + 1.0 / 3.0);

/// Fraction of the all-dense RGF flops performed when the coupling
/// products run sparse at the given structural `density`: the dense-only
/// share stays, the routable share shrinks linearly with the nonzeros.
/// `density = 1` (or anything above the crossover, where the selector
/// keeps GEMM) gives 1.0.
pub fn rgf_flop_scale(density: f64) -> f64 {
    let d = density.clamp(0.0, 1.0);
    1.0 - RGF_COUPLING_FLOP_FRACTION * (1.0 - d)
}

/// Busy-time imbalance ratio `max / mean` of per-rank loads — the metric
/// the adaptive layer reports and gates on. 1.0 is perfect balance; empty
/// or all-zero loads report 1.0 (nothing to balance).
pub fn imbalance_ratio(loads: &[f64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let sum: f64 = loads.iter().sum();
    let max = loads.iter().cloned().fold(0.0, f64::max);
    let mean = sum / loads.len() as f64;
    if mean <= 0.0 {
        1.0
    } else {
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_core::health::{NumericalError, QuarantinedPoint};

    fn small() -> (SimParams, Device) {
        let p = SimParams::test_small();
        let dev = Device::new(&p);
        (p, dev)
    }

    #[test]
    fn predictions_partition_the_exact_totals() {
        let (p, dev) = small();
        let cm = CostMap::predict(&p, &dev, 3, 4);
        let sse_total = qt_core::flops::sse_dace_flops_exact(&p, &dev) as f64;
        let sum: f64 = cm.predicted_flops.iter().sum();
        assert!(
            (sum - sse_total).abs() < 1e-6 * sse_total,
            "sum {sum} vs {sse_total}"
        );
        let cm_gf = CostMap::predict_with_gf(&p, &dev, 3, 4);
        let expect = sse_total + qt_core::flops::rgf_flops(&p);
        let sum_gf: f64 = cm_gf.predicted_flops.iter().sum();
        assert!(
            (sum_gf - expect).abs() < 1e-6 * expect,
            "sum {sum_gf} vs {expect}"
        );
    }

    #[test]
    fn gf_scaled_prediction_shrinks_only_the_rgf_share() {
        let (p, dev) = small();
        let sse_total = qt_core::flops::sse_dace_flops_exact(&p, &dev) as f64;
        let rgf_total = qt_core::flops::rgf_flops(&p);
        let scale = rgf_flop_scale(0.1);
        assert!(scale > 0.0 && scale < 1.0);
        let cm = CostMap::predict_with_gf_scaled(&p, &dev, 3, 4, scale);
        let sum: f64 = cm.predicted_flops.iter().sum();
        let expect = sse_total + scale * rgf_total;
        assert!(
            (sum - expect).abs() < 1e-6 * expect,
            "sum {sum} vs {expect}"
        );
        // scale = 1 reproduces predict_with_gf exactly.
        let full: f64 = CostMap::predict_with_gf(&p, &dev, 3, 4)
            .predicted_flops
            .iter()
            .sum();
        assert!((full - (sse_total + rgf_total)).abs() < 1e-6 * full);
        // Density-1 scaling is the identity; density-0 keeps the
        // dense-only share.
        assert_eq!(rgf_flop_scale(1.0), 1.0);
        assert!((rgf_flop_scale(0.0) - (1.0 - RGF_COUPLING_FLOP_FRACTION)).abs() < 1e-15);
    }

    #[test]
    fn skew_shows_up_in_predictions() {
        let p = SimParams::test_small();
        let dev = Device::skewed(&p, 1, 1);
        let cm = CostMap::predict(&p, &dev, 1, 4);
        // Atom tile 0 covers the heavy slab; the last tile is all light.
        assert!(
            cm.predicted_flops[0] > 1.5 * cm.predicted_flops[3],
            "{:?}",
            cm.predicted_flops
        );
    }

    #[test]
    fn quarantine_scales_only_the_hit_tiles() {
        let (p, dev) = small();
        let mut cm = CostMap::predict(&p, &dev, 3, 4);
        let before = cm.predicted_flops.clone();
        // Quarantine every energy of tile row 0 at kz = 0.
        let quarantined = cm
            .dec
            .energy
            .range(0)
            .map(|e| QuarantinedPoint {
                grid_index: e, // kz = 0
                error: NumericalError::singular("rgf", e),
            })
            .collect();
        let report = CoverageReport {
            total_points: p.nkz * p.ne,
            quarantined,
        };
        cm.apply_quarantine(&p, &report);
        for (u, &b) in before.iter().enumerate() {
            let (i, _) = cm.dec.coords(u);
            if i == 0 {
                assert!(cm.predicted_flops[u] < b);
                assert!(cm.live_fraction[u] < 1.0);
            } else {
                assert_eq!(cm.predicted_flops[u], b);
            }
        }
        // Idempotent: applying the same report again must not compound.
        let once = cm.predicted_flops.clone();
        cm.apply_quarantine(&p, &report);
        for (u, &o) in once.iter().enumerate() {
            assert!((cm.predicted_flops[u] - o).abs() <= 1e-9 * o.max(1.0));
        }
    }

    #[test]
    fn measurements_override_predictions() {
        let (p, dev) = small();
        let mut cm = CostMap::predict(&p, &dev, 2, 2);
        let w0 = cm.weights();
        assert_eq!(w0, cm.predicted_flops, "no rate: raw flops");
        cm.observe(0, 2.0);
        let w1 = cm.weights();
        assert_eq!(w1[0], 2.0);
        // Unmeasured units now go through the fitted rate: seconds scale.
        let spf = 2.0 / cm.predicted_flops[0];
        assert!((w1[1] - cm.predicted_flops[1] * spf).abs() < 1e-12);
    }

    #[test]
    fn machine_seed_gives_seconds_before_any_measurement() {
        let (p, dev) = small();
        let mut cm = CostMap::predict(&p, &dev, 2, 2);
        cm.seed_rate_from(&crate::machine::PIZ_DAINT);
        let w = cm.weights();
        assert!(w.iter().all(|&x| x > 0.0 && x < 1.0), "{w:?}");
    }

    #[test]
    fn imbalance_ratio_basics() {
        assert_eq!(imbalance_ratio(&[]), 1.0);
        assert_eq!(imbalance_ratio(&[0.0, 0.0]), 1.0);
        assert_eq!(imbalance_ratio(&[1.0, 1.0, 1.0]), 1.0);
        let r = imbalance_ratio(&[3.0, 1.0]);
        assert!((r - 1.5).abs() < 1e-12);
    }
}
