//! # qt-sdfg — a data-centric intermediate representation
//!
//! A from-scratch reimplementation of the Stateful DataFlow multiGraph
//! (SDFG) machinery the paper builds on: symbolic integer expressions,
//! symbolic memlet subsets, memlet propagation through map scopes
//! (including performance-engineer-supplied indirection models, §4.1), a
//! transformable scope-tree representation, the six graph transformations of
//! §4.2 (map tiling, fission, redundancy removal, data layout,
//! expansion/GEMM substitution, fusion), data-movement statistics, and
//! GraphViz export of the flat node/edge view used in the paper's figures.

pub mod frontend;
pub mod graph;
pub mod library;
pub mod propagate;
pub mod sdfg;
pub mod stree;
pub mod subset;
pub mod symexpr;
pub mod transforms;

pub use frontend::{parse_program, ParseError, FIG5_SSE_SIGMA};
pub use graph::StateGraph;
pub use propagate::{propagate_index, propagate_subset, IndirectionModel, ParamRange};
pub use sdfg::{qt_simulation_sdfg, InterstateEdge, Sdfg};
pub use stree::{Access, ArrayDesc, Dtype, Node, OpKind, ScopeTree, TreeStats};
pub use subset::{Dim, Range, Subset};
pub use symexpr::{Bindings, SymExpr};
pub use transforms::TileSpec;
