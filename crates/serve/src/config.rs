//! Request/response types and service configuration.

use std::path::PathBuf;
use std::time::Duration;

use qt_core::params::SimParams;
use qt_core::scf::ScfConfig;

/// A registered device variant: the geometry/model parameters plus the
/// solver configuration its sweeps run under. Each variant owns one
/// shared `Simulation` (and thus one boundary cache) inside the service.
#[derive(Clone, Debug)]
pub struct VariantSpec {
    pub params: SimParams,
    /// Electron energy window (eV).
    pub emin: f64,
    pub emax: f64,
    /// Base solver configuration; the per-point bias overrides
    /// `cfg.gf.contacts.mu_left/mu_right` as `±bias/2`.
    pub cfg: ScfConfig,
}

/// One client request: solve an IV sweep of `biases` for `variant`.
#[derive(Clone, Debug)]
pub struct SweepRequest {
    /// Index into the service's variant table.
    pub variant: usize,
    /// Bias points (V); point `i` runs at `mu_left = +b/2`,
    /// `mu_right = -b/2`.
    pub biases: Vec<f64>,
    /// Wall-clock budget for the whole sweep; `None` = no deadline.
    pub deadline: Option<Duration>,
    /// Chaos hook: before solving, run one elastic distributed health
    /// probe that kills this pool rank mid-iteration (requires the
    /// `fault-inject` feature; ignored without it). The dead rank is
    /// retired from the pool; the sweep itself is unaffected — recovery
    /// is bitwise-exact.
    pub chaos_kill_rank: Option<usize>,
    /// Chaos hook: scale the warm seed of this point index into garbage
    /// so its warm solve cannot converge, forcing the validated
    /// cold-solve fallback path.
    pub poison_warm_point: Option<usize>,
}

impl SweepRequest {
    /// A plain sweep with no deadline and no chaos hooks.
    pub fn new(variant: usize, biases: Vec<f64>) -> Self {
        SweepRequest {
            variant,
            biases,
            deadline: None,
            chaos_kill_rank: None,
            poison_warm_point: None,
        }
    }
}

/// Outcome of one bias point.
#[derive(Clone, Debug, PartialEq)]
pub struct PointResult {
    /// The bias (V) this point ran at.
    pub bias: f64,
    /// Terminal electrical current of the converged solve.
    pub current: f64,
    /// Born iterations the final (answering) solve executed.
    pub iterations: usize,
    pub converged: bool,
    /// Whether a neighbor seed was attempted for this point (even if the
    /// answer ultimately came from the cold fallback).
    pub warm_started: bool,
    /// Whether a warm attempt failed validation and the answer comes
    /// from the cold fallback solve.
    pub degraded_to_cold: bool,
    /// Transient-failure retries the point consumed.
    pub retries: u32,
}

/// Terminal status of a sweep request.
#[derive(Clone, Debug, PartialEq)]
pub enum SweepStatus {
    /// Every point answered.
    Completed { points: Vec<PointResult> },
    /// A point failed after exhausting its retry budget; the points
    /// completed before it are still returned.
    Failed {
        error: String,
        completed: Vec<PointResult>,
    },
    /// The deadline watchdog cancelled the sweep mid-flight.
    DeadlineExpired { completed: Vec<PointResult> },
    /// Shutdown drained the sweep mid-flight; `checkpoints` lists the
    /// QTCKPT01 files written for the interrupted point (resumable via
    /// `run_scf_with` + `ScfOptions::resume`).
    Drained {
        completed: Vec<PointResult>,
        checkpoints: Vec<PathBuf>,
    },
    /// The request was still queued when the service shut down; nothing
    /// was solved.
    ShutDown,
}

/// Typed response delivered on the request's private channel.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepResponse {
    /// Service-assigned request id (also the journal attribution unit).
    pub id: u64,
    pub status: SweepStatus,
}

/// The client's handle on an admitted request.
pub struct SweepTicket {
    pub id: u64,
    pub(crate) rx: crossbeam::channel::Receiver<SweepResponse>,
}

impl SweepTicket {
    /// Block until the response arrives. `None` only if the service was
    /// torn down without answering (a bug, not a protocol state).
    pub fn wait(self) -> Option<SweepResponse> {
        self.rx.recv().ok()
    }

    /// Block up to `timeout` for the response; `None` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<SweepResponse> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// Why a submit was refused. All variants are retryable except
/// `UnknownVariant`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission queue is at capacity; retry after the hint.
    QueueFull { retry_after: Duration },
    /// The variant's circuit breaker is open (recent repeated failures);
    /// retry after the cooldown.
    BreakerOpen { retry_after: Duration },
    /// The service is draining; no new work is admitted.
    ShuttingDown,
    /// No such variant index registered.
    UnknownVariant { variant: usize },
    /// A bias in the sweep is NaN or infinite. Rejected at admission:
    /// a non-finite bias would otherwise reach the warm store's nearest-
    /// neighbor comparison (and the contact occupations) and poison the
    /// worker. Not retryable — the request itself is malformed.
    NonFiniteBias { index: usize },
    /// The variant registration itself was invalid (bad dimensions or
    /// energy window); carries the builder's explanation.
    InvalidVariant { variant: usize, reason: String },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { retry_after } => {
                write!(f, "queue full, retry after {retry_after:?}")
            }
            SubmitError::BreakerOpen { retry_after } => {
                write!(f, "circuit breaker open, retry after {retry_after:?}")
            }
            SubmitError::ShuttingDown => write!(f, "service is shutting down"),
            SubmitError::UnknownVariant { variant } => {
                write!(f, "unknown device variant {variant}")
            }
            SubmitError::NonFiniteBias { index } => {
                write!(f, "bias point {index} is not finite")
            }
            SubmitError::InvalidVariant { variant, reason } => {
                write!(f, "variant {variant} is invalid: {reason}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Service tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum requests admitted but not yet finished dequeuing; beyond
    /// it submits get [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Worker threads pulling sweeps off the queue.
    pub workers: usize,
    /// World slots in the shared rank pool.
    pub pool_slots: usize,
    /// Slots one solve leases from the pool.
    pub slots_per_solve: usize,
    /// Transient-failure retries per point (on top of the first try).
    pub max_retries: u32,
    /// Base backoff before retry `k` sleeps `retry_backoff * 2^k`.
    pub retry_backoff: Duration,
    /// Consecutive failed requests that open a variant's breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects the variant before allowing a
    /// probe request through.
    pub breaker_cooldown: Duration,
    /// Directory for drain checkpoints; `None` disables drain
    /// checkpointing (cancelled points lose their progress).
    pub drain_dir: Option<PathBuf>,
    /// Base of the `QueueFull` retry-after hint (scaled by queue depth).
    pub retry_after_hint: Duration,
    /// Maximum warm-start seeds retained per variant. A long-running
    /// service sweeping many distinct biases would otherwise grow seed
    /// memory without bound (each seed holds full Σ/Π tensors). At
    /// capacity the store evicts the seed whose absence least hurts
    /// bias-space coverage (the one crowding its nearest neighbor,
    /// oldest on ties) — see `WarmStore`.
    pub warm_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 16,
            workers: 2,
            pool_slots: 4,
            slots_per_solve: 1,
            max_retries: 2,
            retry_backoff: Duration::from_millis(10),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(500),
            drain_dir: None,
            retry_after_hint: Duration::from_millis(100),
            warm_capacity: 16,
        }
    }
}
