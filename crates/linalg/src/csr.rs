//! Compressed-sparse-row complex matrices.
//!
//! The Hamiltonian blocks produced by a localized-basis DFT code are sparse
//! (each orbital couples to a few dozen neighbors), so the RGF triple
//! products `F[n] @ gR[n+1] @ E[n+1]` can be evaluated along three routes
//! (§5.1.2 / Table 6): densify-then-GEMM, CSR×dense (CSRMM), or fully sparse
//! CSR×CSR (CSRGEMM). All three are implemented here.

use crate::complex::Complex64;
use crate::dense::Matrix;
use crate::flops;

/// CSR sparse matrix over [`Complex64`].
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<Complex64>,
}

impl CsrMatrix {
    /// Empty (all-zero) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Identity of order `n`.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            data: vec![Complex64::ONE; n],
        }
    }

    /// Build from triplets `(row, col, value)`; duplicate entries are summed.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        mut triplets: Vec<(usize, usize, Complex64)>,
    ) -> Self {
        triplets.sort_by_key(|&(r, c, _)| (r, c));
        let mut indptr = vec![0usize; rows + 1];
        let mut indices: Vec<usize> = Vec::with_capacity(triplets.len());
        let mut data: Vec<Complex64> = Vec::with_capacity(triplets.len());
        let mut last: Option<(usize, usize)> = None;
        for (r, c, v) in triplets {
            assert!(r < rows && c < cols, "triplet out of bounds");
            if last == Some((r, c)) {
                *data.last_mut().unwrap() += v;
            } else {
                indices.push(c);
                data.push(v);
                indptr[r + 1] += 1;
                last = Some((r, c));
            }
        }
        for r in 0..rows {
            indptr[r + 1] += indptr[r];
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            data,
        }
    }

    /// Convert from dense, dropping entries with modulus `<= tol`.
    pub fn from_dense(m: &Matrix, tol: f64) -> Self {
        let (rows, cols) = m.shape();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0);
        for i in 0..rows {
            for j in 0..cols {
                let v = m[(i, j)];
                if v.abs() > tol {
                    indices.push(j);
                    data.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            data,
        }
    }

    /// Convert to dense. Counted as the memory traffic of a densification.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for idx in self.indptr[i]..self.indptr[i + 1] {
                m[(i, self.indices[idx])] = self.data[idx];
            }
        }
        m
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structural) non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Fraction of non-zero entries.
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// Iterate `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, Complex64)> + '_ {
        (0..self.rows).flat_map(move |i| {
            (self.indptr[i]..self.indptr[i + 1])
                .map(move |idx| (i, self.indices[idx], self.data[idx]))
        })
    }

    /// Sparse × dense → dense (`CSRMM` forward form).
    pub fn mul_dense(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.cols, b.rows(), "inner dimension mismatch");
        let n = b.cols();
        let mut out = Matrix::zeros(self.rows, n);
        flops::add_flops(8 * self.nnz() as u64 * n as u64);
        for i in 0..self.rows {
            for idx in self.indptr[i]..self.indptr[i + 1] {
                let a = self.data[idx];
                let k = self.indices[idx];
                let b_row = b.row(k);
                let out_row = out.row_mut(i);
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o = o.mul_add(a, bv);
                }
            }
        }
        out
    }

    /// Dense × sparse → dense (the "transposed dense-CSR" form of CSRMM).
    pub fn rmul_dense(&self, a: &Matrix) -> Matrix {
        assert_eq!(a.cols(), self.rows, "inner dimension mismatch");
        let m = a.rows();
        let mut out = Matrix::zeros(m, self.cols);
        flops::add_flops(8 * self.nnz() as u64 * m as u64);
        for i in 0..m {
            for k in 0..self.rows {
                let av = a[(i, k)];
                if av == Complex64::ZERO {
                    continue;
                }
                for idx in self.indptr[k]..self.indptr[k + 1] {
                    let j = self.indices[idx];
                    out[(i, j)] = out[(i, j)].mul_add(av, self.data[idx]);
                }
            }
        }
        out
    }

    /// Sparse × sparse → sparse (Gustavson's algorithm, `CSRGEMM`).
    pub fn mul_csr(&self, b: &CsrMatrix) -> CsrMatrix {
        assert_eq!(self.cols, b.rows, "inner dimension mismatch");
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0);
        // Dense accumulator row with occupancy markers.
        let mut acc = vec![Complex64::ZERO; b.cols];
        let mut marker = vec![usize::MAX; b.cols];
        let mut touched: Vec<usize> = Vec::new();
        let mut muladds: u64 = 0;
        for i in 0..self.rows {
            touched.clear();
            for idx in self.indptr[i]..self.indptr[i + 1] {
                let a = self.data[idx];
                let k = self.indices[idx];
                for bidx in b.indptr[k]..b.indptr[k + 1] {
                    let j = b.indices[bidx];
                    muladds += 1;
                    if marker[j] != i {
                        marker[j] = i;
                        acc[j] = a * b.data[bidx];
                        touched.push(j);
                    } else {
                        acc[j] = acc[j].mul_add(a, b.data[bidx]);
                    }
                }
            }
            touched.sort_unstable();
            for &j in &touched {
                indices.push(j);
                data.push(acc[j]);
            }
            indptr.push(indices.len());
        }
        flops::add_flops(8 * muladds);
        CsrMatrix {
            rows: self.rows,
            cols: b.cols,
            indptr,
            indices,
            data,
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &j in &self.indices {
            counts[j + 1] += 1;
        }
        for j in 0..self.cols {
            counts[j + 1] += counts[j];
        }
        let indptr = counts.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut data = vec![Complex64::ZERO; self.nnz()];
        let mut next = counts;
        for (i, j, v) in self.iter() {
            let pos = next[j];
            indices[pos] = i;
            data[pos] = v;
            next[j] += 1;
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            data,
        }
    }

    /// Sparse matrix-vector product.
    pub fn matvec(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.cols);
        flops::add_flops(8 * self.nnz() as u64);
        let mut y = vec![Complex64::ZERO; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = Complex64::ZERO;
            for idx in self.indptr[i]..self.indptr[i + 1] {
                acc = acc.mul_add(self.data[idx], x[self.indices[idx]]);
            }
            *yi = acc;
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use rand::{Rng, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    fn random_sparse(rows: usize, cols: usize, density: f64, r: &mut impl Rng) -> CsrMatrix {
        let dense = Matrix::from_fn(rows, cols, |_, _| {
            if r.random_range(0.0..1.0) < density {
                c64(r.random_range(-1.0..1.0), r.random_range(-1.0..1.0))
            } else {
                Complex64::ZERO
            }
        });
        CsrMatrix::from_dense(&dense, 0.0)
    }

    #[test]
    fn dense_roundtrip() {
        let mut r = rng();
        let s = random_sparse(9, 7, 0.3, &mut r);
        let back = CsrMatrix::from_dense(&s.to_dense(), 0.0);
        assert_eq!(s, back);
    }

    #[test]
    fn spmm_matches_dense() {
        let mut r = rng();
        let s = random_sparse(8, 6, 0.4, &mut r);
        let b = Matrix::random(6, 5, &mut r);
        let got = s.mul_dense(&b);
        let expect = s.to_dense().matmul(&b);
        assert!(got.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn rmul_matches_dense() {
        let mut r = rng();
        let s = random_sparse(6, 8, 0.4, &mut r);
        let a = Matrix::random(5, 6, &mut r);
        let got = s.rmul_dense(&a);
        let expect = a.matmul(&s.to_dense());
        assert!(got.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn spgemm_matches_dense() {
        let mut r = rng();
        let a = random_sparse(7, 9, 0.35, &mut r);
        let b = random_sparse(9, 4, 0.35, &mut r);
        let got = a.mul_csr(&b).to_dense();
        let expect = a.to_dense().matmul(&b.to_dense());
        assert!(got.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let mut r = rng();
        let s = random_sparse(6, 9, 0.3, &mut r);
        let got = s.transpose().to_dense();
        let expect = s.to_dense().transpose();
        assert!(got.max_abs_diff(&expect) < 1e-14);
    }

    #[test]
    fn identity_behaves() {
        let mut r = rng();
        let s = random_sparse(5, 5, 0.5, &mut r);
        let i = CsrMatrix::identity(5);
        assert!(i.mul_csr(&s).to_dense().max_abs_diff(&s.to_dense()) < 1e-15);
        assert!(s.mul_csr(&i).to_dense().max_abs_diff(&s.to_dense()) < 1e-15);
    }

    #[test]
    fn matvec_matches_dense() {
        let mut r = rng();
        let s = random_sparse(6, 6, 0.5, &mut r);
        let x: Vec<_> = (0..6)
            .map(|_| c64(r.random_range(-1.0..1.0), 0.3))
            .collect();
        let y = s.matvec(&x);
        let d = s.to_dense();
        for i in 0..6 {
            let expect: Complex64 = (0..6).map(|j| d[(i, j)] * x[j]).sum();
            assert!((y[i] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn triplets_sum_duplicates() {
        let t = vec![
            (0, 0, c64(1.0, 0.0)),
            (0, 0, c64(2.0, 0.0)),
            (1, 1, c64(3.0, 0.0)),
        ];
        let s = CsrMatrix::from_triplets(2, 2, t);
        let d = s.to_dense();
        assert!((d[(0, 0)] - c64(3.0, 0.0)).abs() < 1e-15);
        assert!((d[(1, 1)] - c64(3.0, 0.0)).abs() < 1e-15);
    }

    #[test]
    fn empty_rows_handled() {
        let t = vec![(3, 1, c64(1.0, 0.0))];
        let s = CsrMatrix::from_triplets(5, 3, t);
        assert_eq!(s.nnz(), 1);
        let d = s.to_dense();
        assert_eq!(d[(3, 1)], c64(1.0, 0.0));
    }

    #[test]
    fn density_and_nnz() {
        let s = CsrMatrix::identity(10);
        assert_eq!(s.nnz(), 10);
        assert!((s.density() - 0.1).abs() < 1e-15);
    }
}
