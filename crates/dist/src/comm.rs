//! Simulated message passing: an MPI-like communicator over OS threads.
//!
//! Substitution (DESIGN.md §4): the paper's MPI runs on Piz Daint/Summit.
//! Communication *volume* is hardware-independent, so a rank-per-thread
//! world with per-edge byte accounting reproduces the paper's volume
//! measurements (Tables 4–5) exactly, and lets the distributed SSE schemes
//! run for real at reduced scale.
//!
//! Messages are `Vec<Complex64>` payloads tagged with a `u64`; each ordered
//! pair of ranks has its own FIFO channel, so point-to-point ordering is
//! MPI-like. Sends are non-blocking (unbounded channels); receives block.
//!
//! With the `fault-inject` feature a world can carry a
//! [`crate::fault::FaultPlan`]: every remote transmission then goes through
//! a reliable-delivery protocol (checksummed frames, sender-side
//! retransmission with exponential backoff, receiver-side timeout and
//! discard of corrupted frames). Worlds without a plan — including every
//! world built by [`ThreadComm::world`] — take exactly the fault-free path,
//! so the byte-accounting model stays exact.

use crossbeam::channel::{unbounded, Receiver, Sender};
use qt_linalg::Complex64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

#[cfg(feature = "fault-inject")]
use crate::fault::{self, FaultAction, FaultPlan};
#[cfg(feature = "fault-inject")]
use std::cell::RefCell;

/// Bytes per payload element.
pub const ELEM_BYTES: u64 = 16;

#[cfg(not(feature = "fault-inject"))]
type Payload = (u64, Vec<Complex64>);
/// `(tag, data, checksum)` — the checksum is 0 and ignored unless the
/// world carries a fault plan.
#[cfg(feature = "fault-inject")]
type Payload = (u64, Vec<Complex64>, u64);

struct WorldInner {
    n: usize,
    /// `senders[dst][src]` sends into `receivers`' matching channel.
    senders: Vec<Vec<Sender<Payload>>>,
    /// Bytes sent per rank.
    sent: Vec<AtomicU64>,
    /// Bytes received per rank.
    received: Vec<AtomicU64>,
    barrier: Barrier,
    /// Installed fault schedule; `None` means the fault-free fast path.
    #[cfg(feature = "fault-inject")]
    plan: Option<Arc<FaultPlan>>,
}

/// One rank's endpoint.
pub struct ThreadComm {
    rank: usize,
    world: Arc<WorldInner>,
    /// `receivers[src]` yields messages sent by `src` to this rank.
    receivers: Vec<Receiver<Payload>>,
    /// Per-destination ordinal of the next logical message, the `msg_idx`
    /// fed to the deterministic fault schedule. Single-threaded per rank.
    #[cfg(feature = "fault-inject")]
    msg_seq: RefCell<Vec<u64>>,
}

impl ThreadComm {
    /// Create a world of `n` ranks; returns one endpoint per rank.
    pub fn world(n: usize) -> Vec<ThreadComm> {
        #[cfg(feature = "fault-inject")]
        return Self::build(n, None);
        #[cfg(not(feature = "fault-inject"))]
        Self::build(n)
    }

    /// Create a world whose remote traffic runs under `plan`'s fault
    /// schedule and recovery protocol.
    #[cfg(feature = "fault-inject")]
    pub fn world_with_faults(n: usize, plan: FaultPlan) -> Vec<ThreadComm> {
        Self::build(n, Some(Arc::new(plan)))
    }

    fn build(
        n: usize,
        #[cfg(feature = "fault-inject")] plan: Option<Arc<FaultPlan>>,
    ) -> Vec<ThreadComm> {
        assert!(n > 0);
        let mut senders = vec![Vec::with_capacity(n); n];
        let mut receivers: Vec<Vec<Receiver<Payload>>> = (0..n).map(|_| Vec::new()).collect();
        for dst in 0..n {
            for _src in 0..n {
                let (tx, rx) = unbounded();
                senders[dst].push(tx);
                receivers[dst].push(rx);
            }
        }
        let inner = Arc::new(WorldInner {
            n,
            senders,
            sent: (0..n).map(|_| AtomicU64::new(0)).collect(),
            received: (0..n).map(|_| AtomicU64::new(0)).collect(),
            barrier: Barrier::new(n),
            #[cfg(feature = "fault-inject")]
            plan,
        });
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, rxs)| ThreadComm {
                rank,
                world: inner.clone(),
                receivers: rxs,
                #[cfg(feature = "fault-inject")]
                msg_seq: RefCell::new(vec![0; n]),
            })
            .collect()
    }

    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    pub fn size(&self) -> usize {
        self.world.n
    }

    /// Point-to-point send (non-blocking). Self-sends are allowed and do
    /// not count toward network bytes.
    pub fn send(&self, dst: usize, tag: u64, data: Vec<Complex64>) {
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = &self.world.plan {
            let plan = plan.clone();
            self.send_with_plan(&plan, dst, tag, data);
            return;
        }
        let bytes = data.len() as u64 * ELEM_BYTES;
        if dst != self.rank {
            self.world.sent[self.rank].fetch_add(bytes, Ordering::Relaxed);
            self.world.received[dst].fetch_add(bytes, Ordering::Relaxed);
            // Single accounting point for network traffic: phase spans and
            // the telemetry report read the same byte stream the
            // per-rank counters feed.
            qt_telemetry::counters::add_bytes(bytes);
        }
        self.world.senders[dst][self.rank]
            .send(Self::frame(tag, data))
            .expect("receiver alive");
    }

    #[cfg(not(feature = "fault-inject"))]
    #[inline]
    fn frame(tag: u64, data: Vec<Complex64>) -> Payload {
        (tag, data)
    }

    #[cfg(feature = "fault-inject")]
    #[inline]
    fn frame(tag: u64, data: Vec<Complex64>) -> Payload {
        (tag, data, 0)
    }

    /// Reliable send under a fault plan: each wire attempt rolls the
    /// deterministic schedule; drops and corruptions trigger a
    /// backed-off retransmission, and (under `guarantee_delivery`) the
    /// final attempt always carries the clean frame — so the receiver
    /// obtains the exact payload a fault-free run would.
    #[cfg(feature = "fault-inject")]
    fn send_with_plan(&self, plan: &FaultPlan, dst: usize, tag: u64, data: Vec<Complex64>) {
        if dst == self.rank {
            // Self-sends never cross the network: no faults, no bytes.
            self.world.senders[dst][self.rank]
                .send((tag, data, 0))
                .expect("receiver alive");
            return;
        }
        let msg_idx = {
            let mut seq = self.msg_seq.borrow_mut();
            let idx = seq[dst];
            seq[dst] += 1;
            idx
        };
        let bytes = data.len() as u64 * ELEM_BYTES;
        let cksum = fault::checksum(&data);
        let max = plan.retry.max_attempts.max(1);
        let mut payload = Some(data);
        for attempt in 0..max {
            let is_last = attempt + 1 == max;
            match plan.decide(self.rank, dst, msg_idx, attempt, is_last) {
                FaultAction::Drop => {
                    // The frame left this rank's NIC and vanished: the
                    // send-side bytes are spent, nothing arrives.
                    self.world.sent[self.rank].fetch_add(bytes, Ordering::Relaxed);
                    qt_telemetry::counters::add_bytes(bytes);
                    qt_telemetry::counters::add_comm_retry();
                    std::thread::sleep(plan.retry.backoff(attempt));
                }
                FaultAction::Corrupt => {
                    // A mangled frame arrives (and costs both sides'
                    // bytes); its checksum is broken so the receiver is
                    // guaranteed to discard it and keep waiting.
                    let garbage =
                        fault::corrupted_copy(payload.as_deref().unwrap(), plan.seed ^ msg_idx);
                    self.world.sent[self.rank].fetch_add(bytes, Ordering::Relaxed);
                    self.world.received[dst].fetch_add(bytes, Ordering::Relaxed);
                    qt_telemetry::counters::add_bytes(bytes);
                    qt_telemetry::counters::add_comm_retry();
                    self.world.senders[dst][self.rank]
                        .send((tag, garbage, cksum ^ fault::BROKEN_CHECKSUM_XOR))
                        .expect("receiver alive");
                    std::thread::sleep(plan.retry.backoff(attempt));
                }
                action @ (FaultAction::Deliver | FaultAction::Delay) => {
                    if action == FaultAction::Delay {
                        std::thread::sleep(plan.delay);
                    }
                    self.world.sent[self.rank].fetch_add(bytes, Ordering::Relaxed);
                    self.world.received[dst].fetch_add(bytes, Ordering::Relaxed);
                    qt_telemetry::counters::add_bytes(bytes);
                    self.world.senders[dst][self.rank]
                        .send((tag, payload.take().expect("delivered once"), cksum))
                        .expect("receiver alive");
                    return;
                }
            }
        }
        panic!(
            "rank {} -> {}: message {} exhausted {} attempts without delivery",
            self.rank, dst, msg_idx, max
        );
    }

    /// Blocking receive of the next message from `src`; asserts the tag
    /// matches (protocols here are deterministic).
    pub fn recv(&self, src: usize, tag: u64) -> Vec<Complex64> {
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = &self.world.plan {
            let plan = plan.clone();
            return self.recv_with_plan(&plan, src, tag);
        }
        let payload = self.receivers[src].recv().expect("sender alive");
        let (got_tag, data) = Self::unframe(payload);
        assert_eq!(
            got_tag, tag,
            "rank {} expected tag {tag} from {src}, got {got_tag}",
            self.rank
        );
        data
    }

    #[cfg(not(feature = "fault-inject"))]
    #[inline]
    fn unframe(p: Payload) -> (u64, Vec<Complex64>) {
        p
    }

    #[cfg(feature = "fault-inject")]
    #[inline]
    fn unframe(p: Payload) -> (u64, Vec<Complex64>) {
        (p.0, p.1)
    }

    /// Receive under a fault plan: validate the checksum, discard
    /// corrupted frames (the retransmission is already on its way), and
    /// bound how long a silent channel is tolerated via
    /// `retry.recv_timeout` × `retry.max_attempts`.
    #[cfg(feature = "fault-inject")]
    fn recv_with_plan(&self, plan: &FaultPlan, src: usize, tag: u64) -> Vec<Complex64> {
        use crossbeam::channel::RecvTimeoutError;
        let mut timeouts = 0u32;
        loop {
            match self.receivers[src].recv_timeout(plan.retry.recv_timeout) {
                Ok((got_tag, data, cksum)) => {
                    if src == self.rank || fault::checksum(&data) == cksum {
                        assert_eq!(
                            got_tag, tag,
                            "rank {} expected tag {tag} from {src}, got {got_tag}",
                            self.rank
                        );
                        return data;
                    }
                    // Corrupted in transit: discard; the sender counted
                    // the fault and is retransmitting.
                }
                Err(RecvTimeoutError::Timeout) => {
                    timeouts += 1;
                    qt_telemetry::counters::add_comm_retry();
                    assert!(
                        timeouts <= plan.retry.max_attempts,
                        "rank {} timed out {timeouts} times waiting for tag {tag} from {src}",
                        self.rank
                    );
                    std::thread::sleep(plan.retry.backoff(timeouts));
                }
                Err(RecvTimeoutError::Disconnected) => panic!("sender alive"),
            }
        }
    }

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.world.barrier.wait();
    }

    /// Broadcast from `root`: returns the payload on every rank.
    pub fn bcast(&self, root: usize, data: Option<Vec<Complex64>>, tag: u64) -> Vec<Complex64> {
        if self.rank == root {
            let data = data.expect("root must provide data");
            for dst in 0..self.size() {
                if dst != root {
                    self.send(dst, tag, data.clone());
                }
            }
            data
        } else {
            self.recv(root, tag)
        }
    }

    /// All-to-all with variable counts: `sendbufs[dst]` goes to `dst`;
    /// returns `recvbufs[src]`.
    pub fn alltoallv(&self, sendbufs: Vec<Vec<Complex64>>, tag: u64) -> Vec<Vec<Complex64>> {
        assert_eq!(sendbufs.len(), self.size());
        for (dst, buf) in sendbufs.into_iter().enumerate() {
            self.send(dst, tag, buf);
        }
        (0..self.size()).map(|src| self.recv(src, tag)).collect()
    }

    /// Element-wise sum-reduction to `root`; returns `Some(total)` on root.
    pub fn reduce_sum(
        &self,
        root: usize,
        mut data: Vec<Complex64>,
        tag: u64,
    ) -> Option<Vec<Complex64>> {
        if self.rank == root {
            for src in 0..self.size() {
                if src == root {
                    continue;
                }
                let part = self.recv(src, tag);
                assert_eq!(part.len(), data.len());
                for (d, p) in data.iter_mut().zip(part) {
                    *d += p;
                }
            }
            Some(data)
        } else {
            self.send(root, tag, data);
            None
        }
    }

    /// Element-wise sum-reduction, result on every rank.
    pub fn allreduce_sum(&self, data: Vec<Complex64>, tag: u64) -> Vec<Complex64> {
        let n = data.len();
        match self.reduce_sum(0, data, tag) {
            Some(total) => self.bcast(0, Some(total), tag.wrapping_add(1)),
            None => {
                let out = self.bcast(0, None, tag.wrapping_add(1));
                assert_eq!(out.len(), n);
                out
            }
        }
    }

    /// Total bytes this rank has sent so far.
    pub fn bytes_sent(&self) -> u64 {
        self.world.sent[self.rank].load(Ordering::Relaxed)
    }

    /// Total bytes this rank has received so far.
    pub fn bytes_received(&self) -> u64 {
        self.world.received[self.rank].load(Ordering::Relaxed)
    }

    /// Total bytes moved across the whole world (sum of sends).
    pub fn world_bytes(&self) -> u64 {
        self.world
            .sent
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }
}

/// Run `f` on `n` ranks (one OS thread each) and collect the results in
/// rank order.
pub fn run_world<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(ThreadComm) -> T + Sync,
{
    run_comms(ThreadComm::world(n), f)
}

/// Run `f` on `n` ranks under `plan`'s deterministic fault schedule. The
/// stalled rank (if any) sleeps `plan.stall` before starting its work, so
/// every peer's receive path exercises the timeout/backoff protocol.
#[cfg(feature = "fault-inject")]
pub fn run_world_with_faults<T, F>(n: usize, plan: FaultPlan, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(ThreadComm) -> T + Sync,
{
    let stalled = plan.stalled_rank;
    let stall = plan.stall;
    let comms = ThreadComm::world_with_faults(n, plan);
    run_comms(comms, move |comm| {
        if stalled == Some(comm.rank()) {
            std::thread::sleep(stall);
        }
        f(comm)
    })
}

fn run_comms<T, F>(comms: Vec<ThreadComm>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(ThreadComm) -> T + Sync,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| scope.spawn(|| f(comm)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_linalg::c64;

    #[test]
    fn point_to_point_roundtrip() {
        let out = run_world(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, vec![c64(1.0, 2.0), c64(3.0, 4.0)]);
                0.0
            } else {
                let data = comm.recv(0, 7);
                data[1].re
            }
        });
        assert_eq!(out[1], 3.0);
    }

    #[test]
    fn byte_accounting() {
        let out = run_world(3, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 0, vec![Complex64::ZERO; 10]);
                comm.send(2, 0, vec![Complex64::ZERO; 5]);
            } else {
                comm.recv(0, 0);
            }
            comm.barrier();
            (comm.bytes_sent(), comm.bytes_received(), comm.world_bytes())
        });
        assert_eq!(out[0].0, 15 * 16);
        assert_eq!(out[1].1, 10 * 16);
        assert_eq!(out[2].1, 5 * 16);
        assert!(out.iter().all(|&(_, _, w)| w == 15 * 16));
    }

    #[test]
    fn self_send_is_free() {
        let out = run_world(1, |comm| {
            comm.send(0, 3, vec![Complex64::ZERO; 100]);
            let d = comm.recv(0, 3);
            (d.len(), comm.world_bytes())
        });
        assert_eq!(out[0], (100, 0));
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let out = run_world(4, |comm| {
            let data = if comm.rank() == 2 {
                Some(vec![c64(9.0, 0.0); 8])
            } else {
                None
            };
            let got = comm.bcast(2, data, 11);
            got[0].re
        });
        assert!(out.iter().all(|&v| v == 9.0));
    }

    #[test]
    fn alltoallv_exchanges_rank_stamped_buffers() {
        let out = run_world(3, |comm| {
            let sendbufs: Vec<Vec<Complex64>> = (0..3)
                .map(|dst| vec![c64(comm.rank() as f64, dst as f64); comm.rank() + 1])
                .collect();
            let recv = comm.alltoallv(sendbufs, 21);
            // recv[src] came from src, stamped (src, my_rank), len src+1.
            (0..3).all(|src| {
                recv[src].len() == src + 1 && recv[src][0] == c64(src as f64, comm.rank() as f64)
            })
        });
        assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn reductions_sum() {
        let out = run_world(4, |comm| {
            let data = vec![c64(1.0, comm.rank() as f64); 2];
            let total = comm.allreduce_sum(data, 31);
            total[0]
        });
        for v in out {
            assert_eq!(v, c64(4.0, 6.0)); // 1+1+1+1, 0+1+2+3
        }
    }

    #[test]
    fn ring_pipeline() {
        // Each rank forwards an accumulating token around the ring twice —
        // exercises interleaved send/recv across many ranks.
        let n = 8;
        let out = run_world(n, |comm| {
            let rank = comm.rank();
            let next = (rank + 1) % n;
            let prev = (rank + n - 1) % n;
            let mut value = 0.0;
            for lap in 0..2u64 {
                if rank == 0 {
                    comm.send(next, lap, vec![c64(value + 1.0, 0.0)]);
                    value = comm.recv(prev, lap)[0].re;
                } else {
                    let got = comm.recv(prev, lap)[0].re;
                    value = got;
                    comm.send(next, lap, vec![c64(got + 1.0, 0.0)]);
                }
            }
            value
        });
        // After two laps the token has been incremented 2n times; rank 0
        // sees the full count.
        assert_eq!(out[0], (2 * n) as f64);
    }

    #[test]
    fn world_of_one_runs_collectives() {
        let out = run_world(1, |comm| {
            let b = comm.bcast(0, Some(vec![c64(5.0, 0.0)]), 1);
            let r = comm.allreduce_sum(vec![c64(2.0, 0.0)], 2);
            let a = comm.alltoallv(vec![vec![c64(3.0, 0.0)]], 3);
            comm.barrier();
            b[0].re + r[0].re + a[0][0].re
        });
        assert_eq!(out[0], 10.0);
        // No network bytes for a single rank.
    }

    #[test]
    fn ordered_delivery_per_pair() {
        let out = run_world(2, |comm| {
            if comm.rank() == 0 {
                for i in 0..50u64 {
                    comm.send(1, i, vec![c64(i as f64, 0.0)]);
                }
                true
            } else {
                (0..50u64).all(|i| comm.recv(0, i)[0].re == i as f64)
            }
        });
        assert!(out[1]);
    }
}
