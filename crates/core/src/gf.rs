//! The GF phase (Fig. 6, left state): solve Eq. (1) for electrons over all
//! `(kz, E)` and Eq. (2) for phonons over all `(qz, ω)`.
//!
//! Each grid point is independent (embarrassingly parallel — the paper's
//! momentum+energy MPI decomposition); here the points fan out over a rayon
//! pool. The outputs are exactly the tensors the SSE phase consumes:
//! `G≷[Nkz, NE, NA, Norb, Norb]` and `D≷[Nqz, Nω, NA, NB+1, 3, 3]`
//! (slot `NB` holds the diagonal `D_aa`, slots `0..NB` the neighbor pairs).

use crate::boundary::{self, BoundaryConfig, Side};
use crate::device::Device;
use crate::grids::{bose, fermi, Grids};
use crate::hamiltonian::{ElectronModel, PhononModel};
use crate::params::{SimParams, N3D};
use crate::rgf;
use qt_linalg::{c64, BlockTridiag, Complex64, Matrix, SingularMatrix, Tensor};
use rayon::prelude::*;

/// Contact electrochemical potentials and temperature.
#[derive(Clone, Copy, Debug)]
pub struct Contacts {
    /// Left contact chemical potential (eV).
    pub mu_left: f64,
    /// Right contact chemical potential (eV).
    pub mu_right: f64,
    /// Lattice/contact temperature (K).
    pub temperature: f64,
}

impl Default for Contacts {
    fn default() -> Self {
        Contacts {
            mu_left: 0.05,
            mu_right: -0.05,
            temperature: 300.0,
        }
    }
}

/// Configuration of the GF phase.
#[derive(Clone, Copy, Debug)]
pub struct GfConfig {
    /// Contact broadening η (eV): imaginary part used when solving the
    /// lead surface Green's functions.
    pub eta: f64,
    /// Broadening inside the device. Defaults to 0 so that the only
    /// dissipation channels are the contacts and the scattering
    /// self-energies — this makes the equilibrium current vanish exactly
    /// (current conservation).
    pub device_eta: f64,
    /// Broadening inside the device for the *phonon* system (relative to
    /// ω·de). Interior vibrational modes decouple from the contacts almost
    /// completely, so a small damping is needed to bound `D` at resonance
    /// and keep the Born iteration stable.
    pub phonon_device_eta: f64,
    pub boundary: BoundaryConfig,
    pub contacts: Contacts,
}

impl Default for GfConfig {
    fn default() -> Self {
        GfConfig {
            eta: 1e-3,
            device_eta: 0.0,
            phonon_device_eta: 5e-2,
            boundary: BoundaryConfig::default(),
            contacts: Contacts::default(),
        }
    }
}

/// Electron scattering self-energies (diagonal per-atom blocks, §2:
/// "only the diagonal blocks of Σ are retained").
/// Shape `[Nkz, NE, NA, Norb, Norb]`.
#[derive(Clone, Debug)]
pub struct ElectronSelfEnergy {
    pub lesser: Tensor,
    pub greater: Tensor,
}

impl ElectronSelfEnergy {
    pub fn zeros(p: &SimParams) -> Self {
        let shape = [p.nkz, p.ne, p.na, p.norb, p.norb];
        ElectronSelfEnergy {
            lesser: Tensor::zeros(&shape),
            greater: Tensor::zeros(&shape),
        }
    }

    /// Retarded part via the paper's approximation `Σᴿ ≈ (Σ> − Σ<)/2`.
    pub fn retarded_block(&self, idx: &[usize; 3], norb: usize) -> Matrix {
        let g = self.greater.inner(&idx[..]);
        let l = self.lesser.inner(&idx[..]);
        Matrix::from_vec(
            norb,
            norb,
            g.iter()
                .zip(l)
                .map(|(&gg, &ll)| (gg - ll).scale(0.5))
                .collect(),
        )
    }
}

/// Phonon scattering self-energies. Shape `[Nqz, Nω, NA, NB+1, 3, 3]`;
/// slot `NB` is the diagonal `Π_aa`, slots `0..NB` the neighbor connections
/// (§2: "NB non-diagonal connections are kept for Π").
#[derive(Clone, Debug)]
pub struct PhononSelfEnergy {
    pub lesser: Tensor,
    pub greater: Tensor,
}

impl PhononSelfEnergy {
    pub fn zeros(p: &SimParams) -> Self {
        let shape = [p.nqz, p.nw, p.na, p.nb + 1, N3D, N3D];
        PhononSelfEnergy {
            lesser: Tensor::zeros(&shape),
            greater: Tensor::zeros(&shape),
        }
    }

    pub fn retarded_block(&self, idx: &[usize; 4]) -> Matrix {
        let g = self.greater.inner(&idx[..]);
        let l = self.lesser.inner(&idx[..]);
        Matrix::from_vec(
            N3D,
            N3D,
            g.iter()
                .zip(l)
                .map(|(&gg, &ll)| (gg - ll).scale(0.5))
                .collect(),
        )
    }
}

/// Output of the electron GF phase.
#[derive(Clone, Debug)]
pub struct ElectronGf {
    /// `G<[kz, E, a, :, :]` diagonal atom blocks.
    pub g_lesser: Tensor,
    /// `G>[kz, E, a, :, :]`.
    pub g_greater: Tensor,
    /// Left-contact current spectrum per `(kz, E)` (Meir–Wingreen trace).
    pub current_spectrum: Vec<f64>,
    /// Integrated electrical current (arbitrary units: e/ħ per 2π).
    pub current: f64,
    /// Energy-integrated bond current through every slab interface
    /// (`j_n = 2·Re tr[(−A_{n,n+1})·G<_{n+1,n}]`, length `bnum − 1`).
    /// In the ballistic limit these equal the contact current exactly —
    /// the current-conservation check of the whole RGF + boundary stack.
    pub bond_currents: Vec<f64>,
}

/// Output of the phonon GF phase.
#[derive(Clone, Debug)]
pub struct PhononGf {
    /// `D<[qz, ω, a, slot, :, :]` with slot `NB` diagonal.
    pub d_lesser: Tensor,
    /// `D>[qz, ω, a, slot, :, :]`.
    pub d_greater: Tensor,
    /// Integrated phonon energy current at the left contact.
    pub energy_current: f64,
}

/// Assemble `A = z·S − H` for one energy.
fn assemble_a(z: Complex64, s: &BlockTridiag, h: &BlockTridiag) -> BlockTridiag {
    let zs = s.scale(z);
    zs.sub(h)
}

/// Solve the electron Green's functions for every `(kz, E)` point.
pub fn electron_gf_phase(
    dev: &Device,
    em: &ElectronModel,
    p: &SimParams,
    grids: &Grids,
    sse: &ElectronSelfEnergy,
    cfg: &GfConfig,
) -> Result<ElectronGf, SingularMatrix> {
    let _span = qt_telemetry::Span::enter_global("gf/electron");
    let no = p.norb;
    let apb = dev.atoms_per_slab;
    // Hoist H(kz), S(kz) per momentum point.
    let hs: Vec<(BlockTridiag, BlockTridiag)> = grids
        .kz
        .iter()
        .map(|&kz| (em.hamiltonian(dev, kz), em.overlap_matrix(dev, kz)))
        .collect();
    let points: Vec<(usize, usize)> = (0..p.nkz)
        .flat_map(|k| (0..p.ne).map(move |e| (k, e)))
        .collect();
    type EPoint = (usize, usize, Vec<Complex64>, Vec<Complex64>, f64, Vec<f64>);
    let results: Vec<Result<EPoint, SingularMatrix>> = points
        .par_iter()
        .map(|&(k, e)| {
            let (h, s) = &hs[k];
            let energy = grids.energies[e];
            // Lead surface GF at finite broadening; device interior at
            // (near-)real energy so contacts are the only implicit bath.
            let z = c64(energy, cfg.eta);
            let z_dev = c64(energy, cfg.device_eta);
            let mut a = assemble_a(z_dev, s, h);
            // Boundary self-energies.
            let nbk = a.num_blocks();
            let sig_l = boundary::surface_self_energy(
                z,
                h.diag(0),
                h.upper(0),
                s.diag(0),
                s.upper(0),
                Side::Left,
                &cfg.boundary,
            )?;
            let sig_r = boundary::surface_self_energy(
                z,
                h.diag(nbk - 1),
                h.upper(nbk - 2),
                s.diag(nbk - 1),
                s.upper(nbk - 2),
                Side::Right,
                &cfg.boundary,
            )?;
            *a.diag_mut(0) -= &sig_l;
            *a.diag_mut(nbk - 1) -= &sig_r;
            let f_l = fermi(energy, cfg.contacts.mu_left, cfg.contacts.temperature);
            let f_r = fermi(energy, cfg.contacts.mu_right, cfg.contacts.temperature);
            let (bl_l, bg_l) = boundary::electron_lesser_greater(&sig_l, f_l);
            let (bl_r, _) = boundary::electron_lesser_greater(&sig_r, f_r);
            let bs = a.block_size();
            let mut sig_lesser = vec![Matrix::zeros(bs, bs); nbk];
            sig_lesser[0] += &bl_l;
            sig_lesser[nbk - 1] += &bl_r;
            // Scattering self-energies (diagonal atom blocks).
            for atom in 0..p.na {
                let slab = dev.slab_of(atom);
                let row = (atom % apb) * no;
                let sr = sse.retarded_block(&[k, e, atom], no);
                let sl = Matrix::from_vec(no, no, sse.lesser.inner(&[k, e, atom]).to_vec());
                // A -= Σᴿ_scatt
                for i in 0..no {
                    for j in 0..no {
                        let cur = a.diag(slab)[(row + i, row + j)];
                        a.diag_mut(slab)[(row + i, row + j)] = cur - sr[(i, j)];
                    }
                }
                for i in 0..no {
                    for j in 0..no {
                        let cur = sig_lesser[slab][(row + i, row + j)];
                        sig_lesser[slab][(row + i, row + j)] = cur + sl[(i, j)];
                    }
                }
            }
            let out = rgf::rgf(&a, &sig_lesser)?;
            // Gather per-atom diagonal blocks.
            let mut gl = Vec::with_capacity(p.na * no * no);
            let mut gg = Vec::with_capacity(p.na * no * no);
            for atom in 0..p.na {
                let slab = dev.slab_of(atom);
                let row = (atom % apb) * no;
                for i in 0..no {
                    for j in 0..no {
                        gl.push(out.gl_diag[slab][(row + i, row + j)]);
                        gg.push(out.gg_diag[slab][(row + i, row + j)]);
                    }
                }
            }
            // Meir–Wingreen current trace at the left contact:
            // i(E) = Re tr[Σ<_L G> − Σ>_L G<].
            let t1 = bl_l.matmul(&out.gg_diag[0]).trace();
            let t2 = bg_l.matmul(&out.gl_diag[0]).trace();
            let ispec = (t1 - t2).re;
            // Bond currents through every slab interface.
            let bonds: Vec<f64> = (0..nbk - 1)
                .map(|n| {
                    2.0 * a
                        .upper(n)
                        .scale(c64(-1.0, 0.0))
                        .matmul(&out.gl_lower[n])
                        .trace()
                        .re
                })
                .collect();
            Ok((k, e, gl, gg, ispec, bonds))
        })
        .collect();
    let mut g_lesser = Tensor::zeros(&[p.nkz, p.ne, p.na, no, no]);
    let mut g_greater = Tensor::zeros(&[p.nkz, p.ne, p.na, no, no]);
    let mut current_spectrum = vec![0.0; p.nkz * p.ne];
    let mut current = 0.0;
    let mut bond_currents = vec![0.0; p.bnum - 1];
    for r in results {
        let (k, e, gl, gg, ispec, bonds) = r?;
        g_lesser.inner_mut(&[k, e]).copy_from_slice(&gl);
        g_greater.inner_mut(&[k, e]).copy_from_slice(&gg);
        current_spectrum[k * p.ne + e] = ispec;
        current += ispec * grids.de / p.nkz as f64;
        for (acc, j) in bond_currents.iter_mut().zip(&bonds) {
            *acc += j * grids.de / p.nkz as f64;
        }
    }
    Ok(ElectronGf {
        g_lesser,
        g_greater,
        current_spectrum,
        current,
        bond_currents,
    })
}

/// Solve the phonon Green's functions for every `(qz, ω)` point.
pub fn phonon_gf_phase(
    dev: &Device,
    pm: &PhononModel,
    p: &SimParams,
    grids: &Grids,
    sse: &PhononSelfEnergy,
    cfg: &GfConfig,
) -> Result<PhononGf, SingularMatrix> {
    let _span = qt_telemetry::Span::enter_global("gf/phonon");
    let apb = dev.atoms_per_slab;
    let phis: Vec<BlockTridiag> = grids.qz.iter().map(|&qz| pm.dynamical(dev, qz)).collect();
    let bs = phis[0].block_size();
    let eye = Matrix::identity(bs);
    let zero = Matrix::zeros(bs, bs);
    let points: Vec<(usize, usize)> = (0..p.nqz)
        .flat_map(|q| (0..p.nw).map(move |w| (q, w)))
        .collect();
    type PhRes = (usize, usize, Vec<Complex64>, Vec<Complex64>, f64);
    let results: Vec<Result<PhRes, SingularMatrix>> = points
        .par_iter()
        .map(|&(q, w)| {
            let phi = &phis[q];
            let omega = grids.omegas[w];
            let z = c64(omega * omega, cfg.eta * omega.max(grids.de));
            let z_dev = c64(omega * omega, cfg.phonon_device_eta * omega.max(grids.de));
            // A = ω²·I − Φ − Πᴿ.
            let mut a = BlockTridiag::zeros(phi.num_blocks(), bs);
            let nbk = phi.num_blocks();
            for n in 0..nbk {
                let mut d = Matrix::scaled_identity(bs, z_dev);
                d -= phi.diag(n);
                *a.diag_mut(n) = d;
            }
            for n in 0..nbk - 1 {
                *a.upper_mut(n) = -phi.upper(n);
                *a.lower_mut(n) = -phi.lower(n);
            }
            // Boundary (equilibrium phonon baths at both contacts).
            let pi_l = boundary::surface_self_energy(
                z,
                phi.diag(0),
                phi.upper(0),
                &eye,
                &zero,
                Side::Left,
                &cfg.boundary,
            )?;
            let pi_r = boundary::surface_self_energy(
                z,
                phi.diag(nbk - 1),
                phi.upper(nbk - 2),
                &eye,
                &zero,
                Side::Right,
                &cfg.boundary,
            )?;
            *a.diag_mut(0) -= &pi_l;
            *a.diag_mut(nbk - 1) -= &pi_r;
            let n_occ = bose(omega, cfg.contacts.temperature);
            let (bl_l, bg_l) = boundary::phonon_lesser_greater(&pi_l, n_occ);
            let (bl_r, _) = boundary::phonon_lesser_greater(&pi_r, n_occ);
            let mut sig_lesser = vec![Matrix::zeros(bs, bs); nbk];
            sig_lesser[0] += &bl_l;
            sig_lesser[nbk - 1] += &bl_r;
            // Scattering Πᴿ: diagonal blocks plus neighbor connections.
            for atom in 0..p.na {
                let sa = dev.slab_of(atom);
                let ra = (atom % apb) * N3D;
                let pr = sse.retarded_block(&[q, w, atom, p.nb]);
                for i in 0..N3D {
                    for j in 0..N3D {
                        let cur = a.diag(sa)[(ra + i, ra + j)];
                        a.diag_mut(sa)[(ra + i, ra + j)] = cur - pr[(i, j)];
                    }
                }
                let pl = Matrix::from_vec(N3D, N3D, sse.lesser.inner(&[q, w, atom, p.nb]).to_vec());
                for i in 0..N3D {
                    for j in 0..N3D {
                        let cur = sig_lesser[sa][(ra + i, ra + j)];
                        sig_lesser[sa][(ra + i, ra + j)] = cur + pl[(i, j)];
                    }
                }
                // Neighbor connections of Πᴿ (off-diagonal, §2). Lesser
                // off-diagonal parts are kept in the SSE tensors but not
                // injected into RGF (block-diagonal Σ< assumption; see
                // DESIGN.md).
                for slot in 0..p.nb {
                    let Some(b) = dev.neighbor(atom, slot) else {
                        continue;
                    };
                    let sb = dev.slab_of(b);
                    let rb = (b % apb) * N3D;
                    let prn = sse.retarded_block(&[q, w, atom, slot]);
                    if sb == sa {
                        for i in 0..N3D {
                            for j in 0..N3D {
                                let cur = a.diag(sa)[(ra + i, rb + j)];
                                a.diag_mut(sa)[(ra + i, rb + j)] = cur - prn[(i, j)];
                            }
                        }
                    } else if sb == sa + 1 {
                        for i in 0..N3D {
                            for j in 0..N3D {
                                let cur = a.upper(sa)[(ra + i, rb + j)];
                                a.upper_mut(sa)[(ra + i, rb + j)] = cur - prn[(i, j)];
                            }
                        }
                    } else if sb + 1 == sa {
                        for i in 0..N3D {
                            for j in 0..N3D {
                                let cur = a.lower(sb)[(ra + i, rb + j)];
                                a.lower_mut(sb)[(ra + i, rb + j)] = cur - prn[(i, j)];
                            }
                        }
                    }
                }
            }
            let out = rgf::rgf(&a, &sig_lesser)?;
            // Gather D pairs: slots 0..NB neighbors, slot NB diagonal.
            let block_len = (p.nb + 1) * N3D * N3D;
            let mut dl = vec![Complex64::ZERO; p.na * block_len];
            let mut dg = vec![Complex64::ZERO; p.na * block_len];
            let write_pair = |dst_l: &mut [Complex64],
                              dst_g: &mut [Complex64],
                              atom: usize,
                              slot: usize,
                              b: usize| {
                let sa = dev.slab_of(atom);
                let sb = dev.slab_of(b);
                let ra = (atom % apb) * N3D;
                let rb = (b % apb) * N3D;
                let base = atom * block_len + slot * N3D * N3D;
                // Select the matrices holding rows of slab sa, cols sb.
                let (l_m, g_m, roff, coff): (Matrix, Matrix, usize, usize) = if sb == sa {
                    (out.gl_diag[sa].clone(), out.gg_diag[sa].clone(), ra, rb)
                } else if sb == sa + 1 {
                    let gl = out.gl_upper(sa);
                    let mut gg = gl.clone();
                    gg += &out.gr_upper[sa];
                    gg -= &out.gr_lower[sa].dagger();
                    (gl, gg, ra, rb)
                } else {
                    let gl = out.gl_lower[sb].clone();
                    let gg = out.gg_lower(sb);
                    (gl, gg, ra, rb)
                };
                for i in 0..N3D {
                    for j in 0..N3D {
                        dst_l[base + i * N3D + j] = l_m[(roff + i, coff + j)];
                        dst_g[base + i * N3D + j] = g_m[(roff + i, coff + j)];
                    }
                }
            };
            for atom in 0..p.na {
                write_pair(&mut dl, &mut dg, atom, p.nb, atom);
                for slot in 0..p.nb {
                    if let Some(b) = dev.neighbor(atom, slot) {
                        write_pair(&mut dl, &mut dg, atom, slot, b);
                    }
                }
            }
            let t1 = bl_l.matmul(&out.gg_diag[0]).trace();
            let t2 = bg_l.matmul(&out.gl_diag[0]).trace();
            let espec = (t1 - t2).re * omega;
            Ok((q, w, dl, dg, espec))
        })
        .collect();
    let mut d_lesser = Tensor::zeros(&[p.nqz, p.nw, p.na, p.nb + 1, N3D, N3D]);
    let mut d_greater = Tensor::zeros(&[p.nqz, p.nw, p.na, p.nb + 1, N3D, N3D]);
    let mut energy_current = 0.0;
    for r in results {
        let (q, w, dl, dg, espec) = r?;
        d_lesser.inner_mut(&[q, w]).copy_from_slice(&dl);
        d_greater.inner_mut(&[q, w]).copy_from_slice(&dg);
        energy_current += espec * grids.de / p.nqz as f64;
    }
    Ok(PhononGf {
        d_lesser,
        d_greater,
        energy_current,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SimParams, Device, ElectronModel, PhononModel, Grids) {
        let p = SimParams::test_small();
        let dev = Device::new(&p);
        let em = ElectronModel::for_params(&p);
        let pm = PhononModel::default();
        let grids = Grids::new(&p, -1.2, 1.2);
        (p, dev, em, pm, grids)
    }

    #[test]
    fn electron_phase_produces_physical_tensors() {
        let (p, dev, em, _, grids) = setup();
        let sse = ElectronSelfEnergy::zeros(&p);
        let cfg = GfConfig::default();
        let out = electron_gf_phase(&dev, &em, &p, &grids, &sse, &cfg).unwrap();
        assert_eq!(out.g_lesser.shape(), &[p.nkz, p.ne, p.na, p.norb, p.norb]);
        // Physicality: per-atom spectral weight i·tr(G> − G<) ≥ 0 and all
        // entries finite.
        for k in 0..p.nkz {
            for e in 0..p.ne {
                for a in 0..p.na {
                    let gl = out.g_lesser.inner(&[k, e, a]);
                    let gg = out.g_greater.inner(&[k, e, a]);
                    let mut spectral = 0.0;
                    for o in 0..p.norb {
                        let d = gg[o * p.norb + o] - gl[o * p.norb + o];
                        // i·(G> − G<) diagonal must be ≥ 0 (spectral func).
                        spectral += (Complex64::I * d).re;
                        assert!(d.is_finite());
                    }
                    assert!(
                        spectral >= -1e-9,
                        "negative spectral weight at ({k},{e},{a}): {spectral}"
                    );
                }
            }
        }
    }

    #[test]
    fn ballistic_current_is_conserved_through_the_device() {
        // Every slab interface must carry exactly the contact current —
        // the strongest end-to-end check of RGF's off-diagonal blocks and
        // the boundary self-energies.
        let (p, dev, em, _, grids) = setup();
        let sse = ElectronSelfEnergy::zeros(&p);
        let mut cfg = GfConfig::default();
        cfg.contacts.mu_left = 0.3;
        cfg.contacts.mu_right = -0.3;
        let out = electron_gf_phase(&dev, &em, &p, &grids, &sse, &cfg).unwrap();
        assert!(out.current.abs() > 1e-12);
        for (n, j) in out.bond_currents.iter().enumerate() {
            assert!(
                (j - out.current).abs() / out.current.abs() < 1e-9,
                "bond {n}: {j} vs contact {}",
                out.current
            );
        }
    }

    #[test]
    fn equilibrium_current_vanishes() {
        let (p, dev, em, _, grids) = setup();
        let sse = ElectronSelfEnergy::zeros(&p);
        let mut cfg = GfConfig::default();
        cfg.contacts.mu_left = 0.0;
        cfg.contacts.mu_right = 0.0;
        let out = electron_gf_phase(&dev, &em, &p, &grids, &sse, &cfg).unwrap();
        assert!(
            out.current.abs() < 1e-8,
            "equilibrium current must vanish, got {}",
            out.current
        );
    }

    #[test]
    fn bias_drives_current() {
        let (p, dev, em, _, grids) = setup();
        let sse = ElectronSelfEnergy::zeros(&p);
        let mut cfg = GfConfig::default();
        cfg.contacts.mu_left = 0.3;
        cfg.contacts.mu_right = -0.3;
        let fwd = electron_gf_phase(&dev, &em, &p, &grids, &sse, &cfg).unwrap();
        cfg.contacts.mu_left = -0.3;
        cfg.contacts.mu_right = 0.3;
        let rev = electron_gf_phase(&dev, &em, &p, &grids, &sse, &cfg).unwrap();
        assert!(fwd.current > 1e-10, "forward bias current {}", fwd.current);
        assert!(rev.current < -1e-10, "reverse bias current {}", rev.current);
    }

    #[test]
    fn phonon_phase_produces_physical_tensors() {
        let (p, dev, _, pm, grids) = setup();
        let sse = PhononSelfEnergy::zeros(&p);
        let cfg = GfConfig::default();
        let out = phonon_gf_phase(&dev, &pm, &p, &grids, &sse, &cfg).unwrap();
        assert_eq!(
            out.d_lesser.shape(),
            &[p.nqz, p.nw, p.na, p.nb + 1, N3D, N3D]
        );
        for q in 0..p.nqz {
            for w in 0..p.nw {
                for a in 0..p.na {
                    // Diagonal slot: spectral positivity of the phonon GF.
                    let dl = out.d_lesser.inner(&[q, w, a, p.nb]);
                    let dg = out.d_greater.inner(&[q, w, a, p.nb]);
                    let mut spectral = 0.0;
                    for i in 0..N3D {
                        let d = dg[i * N3D + i] - dl[i * N3D + i];
                        assert!(d.is_finite());
                        spectral += (Complex64::I * d).re;
                    }
                    assert!(
                        spectral >= -1e-9,
                        "phonon spectral weight at ({q},{w},{a}): {spectral}"
                    );
                }
            }
        }
    }

    #[test]
    fn scattering_self_energy_changes_gf() {
        let (p, dev, em, _, grids) = setup();
        let cfg = GfConfig::default();
        let zero_sse = ElectronSelfEnergy::zeros(&p);
        let base = electron_gf_phase(&dev, &em, &p, &grids, &zero_sse, &cfg).unwrap();
        // Inject a uniform lossy self-energy on every atom.
        let mut sse = ElectronSelfEnergy::zeros(&p);
        for k in 0..p.nkz {
            for e in 0..p.ne {
                for a in 0..p.na {
                    for o in 0..p.norb {
                        sse.lesser.set(&[k, e, a, o, o], c64(0.0, 0.01));
                        sse.greater.set(&[k, e, a, o, o], c64(0.0, -0.01));
                    }
                }
            }
        }
        let scat = electron_gf_phase(&dev, &em, &p, &grids, &sse, &cfg).unwrap();
        let diff = base.g_lesser.max_abs_diff(&scat.g_lesser);
        assert!(diff > 1e-8, "scattering must affect G<: {diff}");
    }
}
