//! Per-variant circuit breaker.
//!
//! A device variant whose sweeps keep failing (singular blocks, rank
//! loss past the recovery budget, non-convergent even cold) burns
//! worker time and retry budget for every client that touches it. The
//! breaker quarantines such a variant at admission time: after
//! `threshold` consecutive failed requests the variant is *open* —
//! submits are rejected immediately with a retry-after hint — until a
//! cooldown passes, when one probe request is allowed through
//! (half-open). A success closes the breaker and resets the count.

use std::time::{Duration, Instant};

#[derive(Clone, Copy, Debug, Default)]
struct VariantState {
    consecutive_failures: u32,
    open_until: Option<Instant>,
}

/// Consecutive-failure circuit breaker over a fixed set of variants.
/// Interior mutability belongs to the caller (the service holds it
/// behind a `Mutex` alongside the rest of its admission state).
#[derive(Debug)]
pub struct CircuitBreaker {
    states: Vec<VariantState>,
    threshold: u32,
    cooldown: Duration,
}

impl CircuitBreaker {
    pub fn new(variants: usize, threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            states: vec![VariantState::default(); variants],
            threshold: threshold.max(1),
            cooldown,
        }
    }

    /// Admission check. `Err(retry_after)` while the breaker is open;
    /// `Ok` otherwise. A check after the cooldown elapses transitions to
    /// half-open: it admits the caller as the probe and re-arms the
    /// cooldown so concurrent submits don't stampede the variant.
    pub fn check(&mut self, variant: usize, now: Instant) -> Result<(), Duration> {
        let st = &mut self.states[variant];
        match st.open_until {
            Some(until) if now < until => Err(until - now),
            Some(_) => {
                st.open_until = Some(now + self.cooldown);
                Ok(())
            }
            None => Ok(()),
        }
    }

    /// Record a failed request. Returns `true` when this failure opens
    /// the breaker (trip edge, not a level), so the caller can bump the
    /// counter and journal exactly once per trip.
    pub fn record_failure(&mut self, variant: usize, now: Instant) -> bool {
        let st = &mut self.states[variant];
        st.consecutive_failures += 1;
        if st.consecutive_failures >= self.threshold {
            let newly_open = st.open_until.is_none_or(|until| now >= until);
            st.open_until = Some(now + self.cooldown);
            return newly_open;
        }
        false
    }

    /// Record a successful request: closes the breaker and resets the
    /// failure count.
    pub fn record_success(&mut self, variant: usize) {
        self.states[variant] = VariantState::default();
    }

    /// Is the variant currently rejecting submits?
    pub fn is_open(&self, variant: usize, now: Instant) -> bool {
        self.states[variant]
            .open_until
            .is_some_and(|until| now < until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_and_recloses_on_success() {
        let mut br = CircuitBreaker::new(2, 3, Duration::from_secs(60));
        let t0 = Instant::now();
        assert!(br.check(0, t0).is_ok());
        assert!(!br.record_failure(0, t0));
        assert!(!br.record_failure(0, t0));
        assert!(br.record_failure(0, t0), "third failure trips");
        assert!(br.is_open(0, t0));
        let err = br.check(0, t0).unwrap_err();
        assert!(err <= Duration::from_secs(60));
        // The other variant is unaffected.
        assert!(br.check(1, t0).is_ok());
        // After the cooldown, one probe goes through (half-open)...
        let later = t0 + Duration::from_secs(61);
        assert!(br.check(0, later).is_ok());
        // ...and immediately re-arms against a stampede.
        assert!(br.check(0, later).is_err());
        // A success closes it for good.
        br.record_success(0);
        assert!(br.check(0, later).is_ok());
        assert!(br.check(0, later).is_ok());
    }

    #[test]
    fn failure_during_open_does_not_rejournal_the_trip() {
        let mut br = CircuitBreaker::new(1, 1, Duration::from_secs(60));
        let t0 = Instant::now();
        assert!(br.record_failure(0, t0), "first failure trips");
        assert!(
            !br.record_failure(0, t0),
            "failures while already open are not new trips"
        );
    }
}
