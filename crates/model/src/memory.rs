//! Per-process memory-footprint model.
//!
//! §5.2.1: the 10,240-atom run "is not possible on the original OMEN, due
//! to infeasible memory requirements of the algorithm". This module models
//! the per-rank working set of both variants so that claim is checkable:
//!
//! * **OMEN** keeps its energy slice of `G≷` (all kz, all atoms) *plus* the
//!   gathered `G≷(E ± ħω)` sideband working set spanning *all* atoms (no
//!   atom partitioning) and the broadcast phonon round slice.
//! * **DaCe** keeps one `(TE, TA)` tile of `G≷`/`Σ≷` with its `2Nω` energy
//!   halo and neighbor-window atom halo, the matching `D̃≷` window, and the
//!   per-pair rank-3 transients of the fused kernel (Fig. 12) — tensor-free
//!   with respect to the global 5-D/6-D objects.

use crate::machine::Machine;
use qt_core::params::{SimParams, N3D};

const C128: f64 = 16.0;

/// Bytes of one `G`-like tensor slice: `nkz · ne · na · norb²` complex.
fn g_bytes(p: &SimParams, ne: f64, na: f64) -> f64 {
    C128 * p.nkz as f64 * ne * na * (p.norb * p.norb) as f64
}

/// Bytes of one `D`-like tensor slice: `nqz · nω · na · (nb+1) · 9` complex.
fn d_bytes(p: &SimParams, na: f64) -> f64 {
    C128 * (p.nqz * p.nw) as f64 * na * (p.nb + 1) as f64 * (N3D * N3D) as f64
}

/// Per-rank working set of the original OMEN algorithm at `procs` ranks.
///
/// The dominant term is the gathered `G≷(E ± ħω, kz − qz)` working set for
/// the rank's energies: because OMEN does not partition the atom dimension,
/// every gathered slice spans all `NA` atoms — the DaCe tile formula with
/// `TA = 1`. This is exactly the "infeasible memory requirements" that
/// blocked the 10,240-atom run (§5.2.1).
pub fn omen_bytes_per_rank(p: &SimParams, procs: usize) -> f64 {
    let ne_local = p.ne as f64 / procs as f64;
    // Owned G≷ and Σ≷ slices (lesser + greater each).
    let owned = 2.0 * 2.0 * g_bytes(p, ne_local, p.na as f64);
    // Gathered sideband working set: (NE/P + 2Nω) energies × all atoms,
    // both tensors.
    let gathered = 2.0 * g_bytes(p, ne_local + 2.0 * p.nw as f64, p.na as f64);
    // One broadcast (qz, ω) round slice of D̃≷ plus the rank's owned share
    // of the Π≷ output.
    let d_round = 2.0 * C128 * p.na as f64 * (p.nb + 1) as f64 * (N3D * N3D) as f64;
    let pi_owned = 2.0 * d_bytes(p, p.na as f64) / procs as f64;
    // Hamiltonian derivative blocks (replicated static data).
    let dh = C128 * (p.na * p.nb * N3D) as f64 * (p.norb * p.norb) as f64;
    owned + gathered + d_round + pi_owned + dh
}

/// Per-rank working set of the DaCe variant at a `(TE, TA)` tiling.
pub fn dace_bytes_per_rank(p: &SimParams, te: usize, ta: usize) -> f64 {
    let ne_tile = p.ne as f64 / te as f64 + 2.0 * p.nw as f64;
    let na_tile = p.na as f64 / ta as f64 + p.nb as f64;
    // G≷ halo tile + Σ≷ tile (lesser + greater each).
    let g_tile = 2.0 * g_bytes(p, ne_tile, na_tile);
    let sigma_tile = 2.0 * g_bytes(p, p.ne as f64 / te as f64, p.na as f64 / ta as f64);
    // D̃≷ window for the atom tile.
    let d_tile = 2.0 * d_bytes(p, na_tile);
    // Fused-kernel transients (Fig. 12): 3 directions × (kz·NE window + ω
    // window) — rank-3, negligible but counted.
    let transients = 2.0
        * C128
        * (N3D as f64)
        * ((p.nkz * p.ne) as f64 + (p.nqz * p.nw) as f64)
        * (p.norb * p.norb) as f64;
    let dh = C128 * (p.na * p.nb * N3D) as f64 * (p.norb * p.norb) as f64;
    g_tile + sigma_tile + d_tile + transients + dh
}

/// Can the variant fit in the machine's per-rank memory at this scale?
pub fn fits(bytes_per_rank: f64, m: &Machine, mem_per_node_bytes: f64) -> bool {
    bytes_per_rank * m.procs_per_node as f64 <= mem_per_node_bytes
}

/// Memory per node of the two evaluation systems (bytes).
pub fn node_memory(m: &Machine) -> f64 {
    match m.name {
        "Piz Daint" => 64.0 * 1e9,
        "Summit" => 512.0 * 1e9,
        _ => 128.0 * 1e9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::SUMMIT;
    use crate::tilesearch;

    /// §5.2.1's claim: the 10,240-atom, Nkz=21 configuration is memory-
    /// infeasible for OMEN but fits under the DaCe tiling on Summit.
    #[test]
    fn extreme_run_memory_feasibility() {
        let p = SimParams::paper_si_10240(21);
        let nodes = 3525;
        let procs = nodes * SUMMIT.procs_per_node;
        let omen = omen_bytes_per_rank(&p, procs);
        assert!(
            !fits(omen, &SUMMIT, node_memory(&SUMMIT)),
            "OMEN per-rank {:.1} GB × {} ranks/node must exceed 512 GB",
            omen / 1e9,
            SUMMIT.procs_per_node
        );
        let t = tilesearch::optimal_tiling(&p, procs).expect("feasible tiling");
        let dace = dace_bytes_per_rank(&p, t.te, t.ta);
        assert!(
            fits(dace, &SUMMIT, node_memory(&SUMMIT)),
            "DaCe per-rank {:.1} GB must fit",
            dace / 1e9
        );
    }

    /// The 4,864-atom, Nkz=7 configuration (which OMEN *did* run in the
    /// paper) must be feasible for both variants at the paper's node count.
    #[test]
    fn comparison_config_fits_both() {
        let p = SimParams::paper_si_4864(7);
        let procs = 224; // 112 Piz Daint nodes × 2 ranks
        let omen = omen_bytes_per_rank(&p, procs);
        let m = &crate::machine::PIZ_DAINT;
        assert!(
            fits(omen, m, node_memory(m)),
            "OMEN at the paper's smallest config must fit: {:.1} GB/rank",
            omen / 1e9
        );
        let t = tilesearch::optimal_tiling(&p, procs).unwrap();
        assert!(fits(dace_bytes_per_rank(&p, t.te, t.ta), m, node_memory(m)));
    }

    /// DaCe's footprint shrinks with more processes; OMEN's phonon term
    /// does not (the full D≷ broadcast is the floor).
    #[test]
    fn scaling_behavior() {
        let p = SimParams::paper_si_10240(21);
        let omen_small = omen_bytes_per_rank(&p, 1000);
        let omen_large = omen_bytes_per_rank(&p, 20000);
        // The gathered 2Nω×NA sideband working set is the floor — it does
        // not shrink with more processes.
        let floor = 2.0 * g_bytes(&p, 2.0 * p.nw as f64, p.na as f64);
        assert!(omen_large >= floor, "gathered working-set floor");
        assert!(omen_small > omen_large);
        let dace_small = dace_bytes_per_rank(&p, 7, 100);
        let dace_large = dace_bytes_per_rank(&p, 21, 1000);
        assert!(dace_large < dace_small);
        assert!(dace_large < omen_large / 10.0, "order-of-magnitude gap");
    }
}
