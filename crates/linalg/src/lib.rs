//! # qt-linalg — numeric substrate for the quantum-transport simulator
//!
//! From-scratch complex linear algebra tailored to what the NEGF solver
//! needs: dense row-major matrices on a BLIS-style packed, cache-blocked,
//! register-tiled GEMM (see [`gemm`] and DESIGN.md "GEMM substrate"), batched
//! small GEMMs (the SSE hot loop), LU factorization (RGF block inverses), CSR
//! sparse kernels (the Table 6 design space), block tri-diagonal containers,
//! N-D tensors with layout permutation, and global flop accounting (our
//! substitute for the paper's `nvprof` counts).

pub mod block_tridiag;
pub mod complex;
pub mod csr;
pub mod dense;
pub mod eig;
pub mod flops;
pub mod gemm;
pub mod lu;
pub mod tensor;
pub mod workspace;

pub use block_tridiag::BlockTridiag;
pub use complex::{c64, Complex64};
pub use csr::CsrMatrix;
pub use dense::Matrix;
pub use eig::{eigh, psd_project_scaled_in_place, psd_projection, Eigh};
pub use flops::{add_flops, count_flops, flop_count, reset_flops};
pub use lu::{invert, invert_ws, solve, Lu, SingularMatrix};
pub use tensor::Tensor;
