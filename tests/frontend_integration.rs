//! Frontend → IR → transformation → serialization, end to end through the
//! public facade: the complete §3 developer workflow.

use dace_omen::sdfg::{
    library, parse_program, transforms, Bindings, Sdfg, StateGraph, FIG5_SSE_SIGMA,
};

fn bindings() -> Bindings {
    [
        ("Nkz", 2i64),
        ("NE", 10),
        ("Nqz", 2),
        ("Nw", 2),
        ("N3D", 3),
        ("NA", 8),
        ("NB", 3),
        ("Norb", 2),
    ]
    .iter()
    .map(|&(k, v)| (k.to_string(), v))
    .collect()
}

#[test]
fn dsl_to_transformed_sdfg_to_json() {
    // Parse the paper's Fig. 5 program.
    let mut tree = parse_program(FIG5_SSE_SIGMA).expect("parse");
    let b = bindings();
    let models = [library::neighbor_model()];
    let before = tree.stats(&b, &models);

    // Apply the performance engineer's rewrites.
    transforms::map_fission(&mut tree, "map0").unwrap();
    transforms::redundancy_removal(
        &mut tree,
        "map_stmt1",
        &[("kz".into(), "qz".into()), ("E".into(), "w".into())],
    )
    .unwrap();
    transforms::data_layout(&mut tree, "G", &[2, 0, 1, 3, 4]).unwrap();
    transforms::multiplication_fusion(&mut tree, "map_stmt1", &["kz", "E"]).unwrap();
    let after = tree.stats(&b, &models);
    assert!(after.flops < before.flops);

    // Package as a one-state SDFG, serialize, reload, and re-render.
    let mut sdfg = Sdfg::new("from_dsl");
    sdfg.add_state(tree);
    let json = sdfg.to_json();
    let back = Sdfg::from_json(&json).expect("roundtrip");
    assert!(back.validate().is_ok());
    let reloaded = back.states[0].stats(&b, &models);
    assert_eq!(reloaded.flops, after.flops, "stats survive serialization");
    assert_eq!(reloaded.accesses, after.accesses);
    // And it still renders.
    let dot = StateGraph::from_tree(&back.states[0]).to_dot();
    assert!(dot.contains("digraph"));
}

#[test]
fn frontend_rejects_malformed_programs_cleanly() {
    for bad in [
        "map i=0:M {",                          // unclosed scope
        "array A[",                             // unterminated decl
        "program p\nQ[i] = R[i]",               // unknown arrays
        "program p\narray A[N]\nA[x y] = A[x]", // bad expression
    ] {
        assert!(parse_program(bad).is_err(), "should reject: {bad}");
    }
}

#[test]
fn parsed_tree_equivalent_to_builder() {
    // The facade exposes both construction routes; they must agree.
    let b = bindings();
    let models = [library::neighbor_model()];
    let parsed = parse_program(FIG5_SSE_SIGMA).unwrap().stats(&b, &models);
    let built = library::sse_sigma_tree().stats(&b, &models);
    assert_eq!(parsed.flops, built.flops);
    assert_eq!(parsed.accesses, built.accesses);
}
