//! Simulation parameters (Table 1 of the paper).
//!
//! `SimParams` bundles every dimension of the problem. The paper's ranges
//! are enforced by [`SimParams::validate_paper_ranges`]; the laptop-scale
//! presets used by tests and examples keep the same *structure* (all code
//! paths exercised) at a few percent of the size.

use serde::{Deserialize, Serialize};

/// Degrees of freedom for crystal vibrations (fixed at 3 in the paper).
pub const N3D: usize = 3;

/// Full parameter set of a dissipative quantum-transport simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimParams {
    /// Number of electron momentum points (`Nkz`, 1–21).
    pub nkz: usize,
    /// Number of phonon momentum points (`Nqz`, 1–21).
    pub nqz: usize,
    /// Number of electron energy points (`NE`, 700–1500 at paper scale).
    pub ne: usize,
    /// Number of phonon frequencies (`Nω`, 10–100 at paper scale).
    pub nw: usize,
    /// Total number of atoms (`NA`).
    pub na: usize,
    /// Neighbors considered per atom (`NB`, 4–50).
    pub nb: usize,
    /// Orbitals per atom (`Norb`, 1–30).
    pub norb: usize,
    /// Number of RGF blocks (`bnum`); must divide `na`.
    pub bnum: usize,
}

impl SimParams {
    /// Tiny structurally-complete preset for unit tests.
    pub fn test_small() -> Self {
        SimParams {
            nkz: 3,
            nqz: 3,
            ne: 12,
            nw: 3,
            na: 16,
            nb: 4,
            norb: 2,
            bnum: 4,
        }
    }

    /// The 4,864-atom silicon structure used throughout §5
    /// (`NB = 34`, `Norb = 12`, `NE = 706`, `Nω = 70`).
    pub fn paper_si_4864(nkz: usize) -> Self {
        SimParams {
            nkz,
            nqz: nkz,
            ne: 706,
            nw: 70,
            na: 4864,
            nb: 34,
            norb: 12,
            bnum: 152,
        }
    }

    /// The 10,240-atom extreme-scale structure of Table 8
    /// (`NE = 1000`, `Nω = 70`). The fin is 4.8 nm wide versus 2.1 nm for
    /// the 4,864-atom device, so each transport slab holds ~2.3× more
    /// atoms (`bnum = 160`, 64 atoms per block).
    pub fn paper_si_10240(nkz: usize) -> Self {
        SimParams {
            nkz,
            nqz: nkz,
            ne: 1000,
            nw: 70,
            na: 10240,
            nb: 34,
            norb: 12,
            bnum: 160,
        }
    }

    /// Atoms per RGF block.
    pub fn atoms_per_block(&self) -> usize {
        self.na / self.bnum
    }

    /// Electron block order (`NA/bnum · Norb`).
    pub fn e_block_size(&self) -> usize {
        self.atoms_per_block() * self.norb
    }

    /// Phonon block order (`NA/bnum · 3`).
    pub fn ph_block_size(&self) -> usize {
        self.atoms_per_block() * N3D
    }

    /// Basic structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.na == 0 || self.bnum == 0 {
            return Err("na and bnum must be positive".into());
        }
        if !self.na.is_multiple_of(self.bnum) {
            return Err(format!("bnum {} must divide na {}", self.bnum, self.na));
        }
        if self.bnum < 2 {
            return Err("need at least 2 RGF blocks (two contacts)".into());
        }
        if self.nb >= self.na {
            return Err("nb must be smaller than na".into());
        }
        if self.nkz == 0 || self.nqz == 0 || self.ne == 0 || self.nw == 0 || self.norb == 0 {
            return Err("all dimensions must be positive".into());
        }
        if self.nw >= self.ne {
            return Err("nw must be smaller than ne (energy window)".into());
        }
        Ok(())
    }

    /// Check against the ranges of Table 1 (paper-scale runs only).
    pub fn validate_paper_ranges(&self) -> Result<(), String> {
        self.validate()?;
        let checks = [
            ("Nkz", self.nkz, 1, 21),
            ("Nqz", self.nqz, 1, 21),
            ("NE", self.ne, 700, 1500),
            ("Nw", self.nw, 10, 100),
            ("NB", self.nb, 4, 50),
            ("Norb", self.norb, 1, 30),
        ];
        for (name, v, lo, hi) in checks {
            if v < lo || v > hi {
                return Err(format!("{name} = {v} outside Table 1 range [{lo}, {hi}]"));
            }
        }
        Ok(())
    }

    /// Size in bytes of the electron Green's-function tensor
    /// `[Nkz, NE, NA, Norb, Norb]` of complex128.
    pub fn g_tensor_bytes(&self) -> u64 {
        16 * (self.nkz * self.ne * self.na * self.norb * self.norb) as u64
    }

    /// Size in bytes of the phonon tensor `[Nqz, Nω, NA, NB+1, 3, 3]`.
    pub fn d_tensor_bytes(&self) -> u64 {
        16 * (self.nqz * self.nw * self.na * (self.nb + 1) * N3D * N3D) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(SimParams::test_small().validate().is_ok());
        assert!(SimParams::paper_si_4864(7).validate_paper_ranges().is_ok());
        assert!(SimParams::paper_si_10240(21)
            .validate_paper_ranges()
            .is_ok());
    }

    #[test]
    fn invalid_block_count_rejected() {
        let mut p = SimParams::test_small();
        p.bnum = 3; // does not divide 16
        assert!(p.validate().is_err());
        p.bnum = 1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn paper_ranges_enforced() {
        let mut p = SimParams::paper_si_4864(7);
        p.nkz = 25;
        assert!(p.validate_paper_ranges().is_err());
        let mut p = SimParams::paper_si_4864(7);
        p.ne = 100;
        assert!(p.validate_paper_ranges().is_err());
    }

    #[test]
    fn derived_block_sizes() {
        let p = SimParams::paper_si_4864(7);
        assert_eq!(p.atoms_per_block(), 32);
        assert_eq!(p.e_block_size(), 32 * 12);
        assert_eq!(p.ph_block_size(), 96);
    }

    #[test]
    fn tensor_sizes_match_paper_magnitudes() {
        // The 4,864-atom G≷ tensor at Nkz=7, NE=706 is ~51 GiB (×2 for
        // lesser+greater) — the memory pressure §1 describes.
        let p = SimParams::paper_si_4864(7);
        let gib = p.g_tensor_bytes() as f64 / (1u64 << 30) as f64;
        assert!(gib > 45.0 && gib < 60.0, "G tensor: {gib} GiB");
    }
}
