//! Offline stand-in for `criterion` 0.7.
//!
//! The build environment has no registry access, so the workspace patches
//! `criterion` to this crate. Benchmarks compile and run: each
//! `Bencher::iter` body is timed over a fixed warm-up plus measurement
//! loop and the mean is printed. No statistics, plots, or baselines —
//! enough to keep `cargo bench` targets building and producing numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            text: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.text)
    }
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Default)]
pub struct Bencher {
    mean_ns: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        for _ in 0..3 {
            black_box(f());
        }
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget || iters < 10 {
            black_box(f());
            iters += 1;
            if iters >= 1_000_000 {
                break;
            }
        }
        self.mean_ns = Some(start.elapsed().as_nanos() as f64 / iters as f64);
    }

    fn report(&self, name: &str) {
        match self.mean_ns {
            Some(ns) => println!("bench {name}: {:.1} ns/iter", ns),
            None => println!("bench {name}: no measurement"),
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("sample");
        group.sample_size(10);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n) * black_box(n))
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
