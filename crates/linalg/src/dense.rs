//! Dense row-major complex matrices.
//!
//! This is the workhorse container of the RGF solver and the SSE kernels:
//! Green's-function blocks are `Norb x Norb` … `(NA/bnum·Norb)^2` dense
//! complex matrices. The API deliberately mirrors what the paper's Python
//! reference does with `numpy.ndarray` (`@`, `+`, scalar `*`, `.conj().T`).

use crate::complex::{c64, Complex64};
use crate::gemm;
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// Dense row-major matrix of [`Complex64`].
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl Matrix {
    /// `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Build from a row-major data vector (must have `rows*cols` entries).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Consume the matrix, yielding its row-major backing vector (the
    /// workspace-arena recycling path).
    pub fn into_vec(self) -> Vec<Complex64> {
        self.data
    }

    /// Overwrite `self` with `src` without allocating.
    pub fn copy_from(&mut self, src: &Matrix) {
        assert_eq!(self.shape(), src.shape());
        self.data.copy_from_slice(&src.data);
    }

    /// In-place `self -= other^dagger` without materializing the
    /// conjugate transpose (the `G> = G< + G^R − (G^R)^dagger` identity).
    pub fn sub_dagger_assign(&mut self, other: &Matrix) {
        assert_eq!(self.rows, other.cols);
        assert_eq!(self.cols, other.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                self.data[i * self.cols + j] -= other[(j, i)].conj();
            }
        }
    }

    /// Diagonal matrix from a slice.
    pub fn from_diag(diag: &[Complex64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Identity scaled by `z`.
    pub fn scaled_identity(n: usize, z: Complex64) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = z;
        }
        m
    }

    #[inline(always)]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline(always)]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline(always)]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    #[inline(always)]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    #[inline(always)]
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline(always)]
    pub fn row(&self, i: usize) -> &[Complex64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    #[inline(always)]
    pub fn row_mut(&mut self, i: usize) -> &mut [Complex64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Transpose (no conjugation).
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Conjugate transpose `A^dagger` — the `A` of `G^A = (G^R)^dagger`.
    pub fn dagger(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Element-wise conjugate.
    pub fn conj(&self) -> Matrix {
        let mut out = self.clone();
        for z in out.data.iter_mut() {
            *z = z.conj();
        }
        out
    }

    /// Trace (sum of diagonal entries); requires square.
    pub fn trace(&self) -> Complex64 {
        assert!(self.is_square());
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest entry modulus.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Largest modulus of the entry-wise difference.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }

    #[inline(always)]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Scale every entry by a complex factor.
    pub fn scale(&self, z: Complex64) -> Matrix {
        let mut out = self.clone();
        for w in out.data.iter_mut() {
            *w *= z;
        }
        out
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: Complex64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a = a.mul_add(alpha, *b);
        }
    }

    /// Set every entry to zero, retaining the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(Complex64::ZERO);
    }

    /// Matrix product using the blocked GEMM kernel.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        gemm::gemm(self, rhs, &mut out);
        out
    }

    /// `out += self @ rhs` without allocating.
    pub fn matmul_acc(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        assert_eq!(out.shape(), (self.rows, rhs.cols));
        gemm::gemm_acc(self, rhs, out);
    }

    /// `self @ rhs^dagger` without materializing the conjugate transpose:
    /// the GEMM packing step reads `rhs` column-wise and conjugates in
    /// flight, so `X · Y†` costs the same as `X · Y`.
    pub fn matmul_dagger(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        gemm::gemm_bdagger_acc(
            self.rows,
            self.cols,
            rhs.rows,
            self.as_slice(),
            rhs.as_slice(),
            out.as_mut_slice(),
        );
        out
    }

    /// True if `‖A − A^dagger‖_max < tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in i..self.cols {
                if (self[(i, j)] - self[(j, i)].conj()).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Extract the sub-matrix at (`r0`, `c0`) of shape `rows x cols`.
    pub fn submatrix(&self, r0: usize, c0: usize, rows: usize, cols: usize) -> Matrix {
        assert!(r0 + rows <= self.rows && c0 + cols <= self.cols);
        Matrix::from_fn(rows, cols, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Overwrite the sub-matrix at (`r0`, `c0`) with `block`.
    pub fn set_submatrix(&mut self, r0: usize, c0: usize, block: &Matrix) {
        assert!(r0 + block.rows <= self.rows && c0 + block.cols <= self.cols);
        for i in 0..block.rows {
            for j in 0..block.cols {
                self[(r0 + i, c0 + j)] = block[(i, j)];
            }
        }
    }

    /// Fill with uniform random entries in the unit square (testing aid).
    pub fn random(rows: usize, cols: usize, rng: &mut impl rand::Rng) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| {
            c64(rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0))
        })
    }

    /// Random Hermitian matrix (testing aid).
    pub fn random_hermitian(n: usize, rng: &mut impl rand::Rng) -> Matrix {
        let a = Matrix::random(n, n, rng);
        let mut h = a.dagger();
        h.axpy(Complex64::ONE, &a);
        h.scale(c64(0.5, 0.0))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = Complex64;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape());
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&rhs.data) {
            *a += *b;
        }
        out
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape());
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&rhs.data) {
            *a -= *b;
        }
        out
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape());
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += *b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape());
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= *b;
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs)
    }
}

impl Mul<Complex64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: Complex64) -> Matrix {
        self.scale(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale(c64(-1.0, 0.0))
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4}{:+10.4}i ", self[(i, j)].re, self[(i, j)].im)?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn identity_is_neutral() {
        let mut r = rng();
        let a = Matrix::random(5, 5, &mut r);
        let i = Matrix::identity(5);
        assert!(a.matmul(&i).max_abs_diff(&a) < 1e-14);
        assert!(i.matmul(&a).max_abs_diff(&a) < 1e-14);
    }

    #[test]
    fn dagger_involution_and_product_rule() {
        let mut r = rng();
        let a = Matrix::random(4, 6, &mut r);
        let b = Matrix::random(6, 3, &mut r);
        assert!(a.dagger().dagger().max_abs_diff(&a) < 1e-15);
        // (AB)^† = B^† A^†
        let lhs = a.matmul(&b).dagger();
        let rhs = b.dagger().matmul(&a.dagger());
        assert!(lhs.max_abs_diff(&rhs) < 1e-13);
    }

    #[test]
    fn matmul_dagger_matches_materialized_dagger() {
        let mut r = rng();
        for (m, k, n) in [(4, 6, 3), (1, 5, 1), (17, 9, 23), (40, 40, 40)] {
            let a = Matrix::random(m, k, &mut r);
            let b = Matrix::random(n, k, &mut r);
            let fused = a.matmul_dagger(&b);
            let explicit = a.matmul(&b.dagger());
            assert!(fused.max_abs_diff(&explicit) < 1e-12, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn trace_cyclic() {
        let mut r = rng();
        let a = Matrix::random(5, 5, &mut r);
        let b = Matrix::random(5, 5, &mut r);
        let t1 = a.matmul(&b).trace();
        let t2 = b.matmul(&a).trace();
        assert!((t1 - t2).abs() < 1e-12);
    }

    #[test]
    fn random_hermitian_is_hermitian() {
        let mut r = rng();
        let h = Matrix::random_hermitian(8, &mut r);
        assert!(h.is_hermitian(1e-14));
    }

    #[test]
    fn submatrix_roundtrip() {
        let mut r = rng();
        let a = Matrix::random(6, 6, &mut r);
        let block = a.submatrix(2, 3, 3, 2);
        let mut b = Matrix::zeros(6, 6);
        b.set_submatrix(2, 3, &block);
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(b[(2 + i, 3 + j)], a[(2 + i, 3 + j)]);
            }
        }
    }

    #[test]
    fn axpy_matches_scale_add() {
        let mut r = rng();
        let a = Matrix::random(4, 4, &mut r);
        let b = Matrix::random(4, 4, &mut r);
        let alpha = c64(0.5, -2.0);
        let mut x = a.clone();
        x.axpy(alpha, &b);
        let expect = &a + &b.scale(alpha);
        assert!(x.max_abs_diff(&expect) < 1e-14);
    }

    #[test]
    fn matmul_associativity() {
        let mut r = rng();
        let a = Matrix::random(3, 4, &mut r);
        let b = Matrix::random(4, 5, &mut r);
        let c = Matrix::random(5, 2, &mut r);
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    #[should_panic]
    fn mismatched_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
