//! The full stateful dataflow multigraph: dataflow states (scope trees)
//! connected by interstate edges with conditions and assignments — the
//! top-level view of Fig. 6, where GF and SSE states alternate inside a
//! convergence loop (`i = 0`, `i++`, `convergence`).

use crate::graph::StateGraph;
use crate::stree::ScopeTree;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Transition between two states.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InterstateEdge {
    pub from: usize,
    pub to: usize,
    /// Guard condition (opaque string, e.g. `"not converged"`).
    pub condition: Option<String>,
    /// Symbol assignments executed on the transition (e.g. `i = i + 1`).
    pub assignments: Vec<(String, String)>,
}

/// A stateful dataflow multigraph: states plus control-flow edges.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Sdfg {
    pub name: String,
    pub states: Vec<ScopeTree>,
    pub edges: Vec<InterstateEdge>,
    /// Index of the start state.
    pub start: usize,
}

impl Sdfg {
    pub fn new(name: impl Into<String>) -> Self {
        Sdfg {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Append a state, returning its index.
    pub fn add_state(&mut self, state: ScopeTree) -> usize {
        self.states.push(state);
        self.states.len() - 1
    }

    /// Connect two states.
    pub fn add_edge(
        &mut self,
        from: usize,
        to: usize,
        condition: Option<&str>,
        assignments: &[(&str, &str)],
    ) {
        self.edges.push(InterstateEdge {
            from,
            to,
            condition: condition.map(|s| s.to_string()),
            assignments: assignments
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
    }

    /// Validate: edge endpoints exist, the start state exists, every state
    /// is internally valid, and every non-final state is reachable.
    pub fn validate(&self) -> Result<(), String> {
        if self.states.is_empty() {
            return Err("SDFG has no states".into());
        }
        if self.start >= self.states.len() {
            return Err("start state out of range".into());
        }
        for e in &self.edges {
            if e.from >= self.states.len() || e.to >= self.states.len() {
                return Err(format!("edge {} -> {} out of range", e.from, e.to));
            }
        }
        for st in &self.states {
            st.validate()
                .map_err(|m| format!("state `{}`: {m}", st.name))?;
        }
        // Reachability from start.
        let mut reach = vec![false; self.states.len()];
        let mut stack = vec![self.start];
        while let Some(s) = stack.pop() {
            if reach[s] {
                continue;
            }
            reach[s] = true;
            for e in &self.edges {
                if e.from == s {
                    stack.push(e.to);
                }
            }
        }
        if let Some(unreached) = reach.iter().position(|&r| !r) {
            return Err(format!(
                "state `{}` unreachable",
                self.states[unreached].name
            ));
        }
        Ok(())
    }

    /// GraphViz rendering of the state machine, with each state's dataflow
    /// as a clustered subgraph.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name);
        let _ = writeln!(out, "  compound=true;");
        for (i, st) in self.states.iter().enumerate() {
            let _ = writeln!(out, "  subgraph cluster_{i} {{");
            let _ = writeln!(out, "    label=\"{}\";", st.name);
            // Embed the state's flat graph with prefixed node ids.
            let g = StateGraph::from_tree(st);
            for (n, node) in g.nodes.iter().enumerate() {
                let label = format!("{node:?}").replace('"', "'");
                let _ = writeln!(out, "    s{i}_n{n} [label=\"{label}\"];");
            }
            for e in &g.edges {
                let _ = writeln!(out, "    s{i}_n{} -> s{i}_n{};", e.src, e.dst);
            }
            // Anchor node so interstate edges have endpoints.
            let _ = writeln!(out, "    s{i}_anchor [shape=point, style=invis];");
            let _ = writeln!(out, "  }}");
        }
        for e in &self.edges {
            let mut label = String::new();
            if let Some(c) = &e.condition {
                label.push_str(c);
            }
            for (k, v) in &e.assignments {
                if !label.is_empty() {
                    label.push_str("; ");
                }
                let _ = write!(label, "{k} = {v}");
            }
            let _ = writeln!(
                out,
                "  s{}_anchor -> s{}_anchor [ltail=cluster_{}, lhead=cluster_{}, label=\"{}\"];",
                e.from,
                e.to,
                e.from,
                e.to,
                label.replace('"', "'")
            );
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// Serialize to JSON (the SDFG-file analogue; the paper's 2,015-node
    /// SDFG is an artifact of exactly this kind).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serializable")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Sdfg, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

/// Build the complete Fig. 6 SDFG: an init state, the GF state (electron +
/// phonon maps), the SSE state, and the convergence loop
/// (`i = 0` → GF → SSE → GF … while `not converged and i < max_iter`).
pub fn qt_simulation_sdfg() -> Sdfg {
    let mut sdfg = Sdfg::new("qt_simulation");
    let states = crate::library::qt_toplevel();
    let mut it = states.into_iter();
    let gf = it.next().expect("GF state");
    let sse = it.next().expect("SSE state");
    let init = ScopeTree::new("init");
    let s_init = sdfg.add_state(init);
    let s_gf = sdfg.add_state(gf);
    let s_sse = sdfg.add_state(sse);
    let s_end = sdfg.add_state(ScopeTree::new("end"));
    sdfg.start = s_init;
    sdfg.add_edge(s_init, s_gf, None, &[("i", "0")]);
    sdfg.add_edge(s_gf, s_sse, Some("not converged"), &[]);
    sdfg.add_edge(s_sse, s_gf, None, &[("i", "i + 1")]);
    sdfg.add_edge(s_gf, s_end, Some("converged"), &[]);
    sdfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qt_simulation_validates() {
        let sdfg = qt_simulation_sdfg();
        assert!(sdfg.validate().is_ok());
        assert_eq!(sdfg.states.len(), 4);
        // The loop: GF -> SSE and SSE -> GF both exist.
        assert!(sdfg.edges.iter().any(|e| e.from == 1 && e.to == 2));
        assert!(sdfg.edges.iter().any(|e| e.from == 2 && e.to == 1));
    }

    #[test]
    fn json_roundtrip_preserves_structure() {
        let sdfg = qt_simulation_sdfg();
        let json = sdfg.to_json();
        let back = Sdfg::from_json(&json).expect("parse");
        assert_eq!(back.states.len(), sdfg.states.len());
        assert_eq!(back.edges.len(), sdfg.edges.len());
        assert!(back.validate().is_ok());
        // The GF state's arrays survive the round trip.
        assert_eq!(back.states[1].arrays.len(), sdfg.states[1].arrays.len());
        // Deep check: re-serialization is stable.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn validation_catches_broken_graphs() {
        let mut sdfg = qt_simulation_sdfg();
        sdfg.edges[0].to = 99;
        assert!(sdfg.validate().is_err());
        let mut sdfg = qt_simulation_sdfg();
        sdfg.edges.clear();
        assert!(sdfg.validate().is_err(), "states become unreachable");
        let empty = Sdfg::new("empty");
        assert!(empty.validate().is_err());
    }

    #[test]
    fn dot_renders_state_machine() {
        let sdfg = qt_simulation_sdfg();
        let dot = sdfg.to_dot();
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("not converged"));
        assert!(dot.contains("i = i + 1"));
    }

    #[test]
    fn transformed_state_still_serializes() {
        use crate::library;
        let b: crate::symexpr::Bindings = [
            ("Nkz", 2i64),
            ("NE", 8),
            ("Nqz", 2),
            ("Nw", 2),
            ("N3D", 3),
            ("NA", 8),
            ("NB", 3),
            ("Norb", 2),
        ]
        .iter()
        .map(|&(k, v)| (k.to_string(), v))
        .collect();
        let mut tree = library::sse_sigma_tree();
        library::transform_sse_sigma(&mut tree, &b).unwrap();
        let mut sdfg = Sdfg::new("transformed");
        sdfg.add_state(tree);
        let json = sdfg.to_json();
        let back = Sdfg::from_json(&json).unwrap();
        assert!(back.states[0].validate().is_ok());
    }
}
