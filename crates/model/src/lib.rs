//! # qt-model — performance and communication modeling
//!
//! Machine models for Piz Daint and Summit, the exhaustive tile-size
//! search of §4.1, and α–β runtime predictions that regenerate the shapes
//! of Fig. 13 and Table 8.

pub mod calibrate;
pub mod costmap;
pub mod machine;
pub mod memory;
pub mod scaling;
pub mod tilesearch;

pub use calibrate::{
    calibrate, calibrate_kernels, GemmCalibration, KernelCalibration, ShapeClass, SHAPE_CLASSES,
};
pub use costmap::{imbalance_ratio, rgf_flop_scale, CostMap, RGF_COUPLING_FLOP_FRACTION};
pub use machine::{Machine, PIZ_DAINT, SUMMIT};
pub use scaling::{predict, strong_scaling, weak_scaling, PhaseTimes, Variant};
pub use tilesearch::{optimal_tiling, optimal_tiling3, Tiling, Tiling3};
