//! Symbolic index subsets for memlets.
//!
//! A memlet annotates an edge with *which* part of an array moves. Each
//! dimension is either a single symbolic index (`A[i, k]`) or a symbolic
//! half-open range (`A[0:M, tk*sk:(tk+1)*sk]`). Range lengths summed over a
//! state give the data-movement characteristics the paper uses to derive its
//! communication-avoiding schedule (§4.1).

use crate::symexpr::{Bindings, SymExpr, UnboundSymbol};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Half-open symbolic interval `[begin, end)` with an optional stride
/// (`None` = contiguous, stride 1). DaCe "automatically computes contiguous
/// and strided ranges" during propagation; strided subsets appear when maps
/// iterate with steps or when tiling leaves interleaved partitions.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Range {
    pub begin: SymExpr,
    pub end: SymExpr,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stride: Option<SymExpr>,
}

impl Range {
    pub fn new(begin: impl Into<SymExpr>, end: impl Into<SymExpr>) -> Self {
        Range {
            begin: begin.into().simplified(),
            end: end.into().simplified(),
            stride: None,
        }
    }

    /// Strided interval `begin:end:stride` (stride must evaluate positive).
    pub fn strided(
        begin: impl Into<SymExpr>,
        end: impl Into<SymExpr>,
        stride: impl Into<SymExpr>,
    ) -> Self {
        let stride = stride.into().simplified();
        Range {
            begin: begin.into().simplified(),
            end: end.into().simplified(),
            stride: (stride != SymExpr::int(1)).then_some(stride),
        }
    }

    /// `[0, n)`.
    pub fn full(n: impl Into<SymExpr>) -> Self {
        Range::new(SymExpr::int(0), n)
    }

    /// Number of covered elements: `ceil((end − begin) / stride)`.
    pub fn length(&self) -> SymExpr {
        let span = (self.end.clone() - self.begin.clone()).simplified();
        match &self.stride {
            None => span,
            Some(s) => (span + s.clone() - SymExpr::int(1)).div(s.clone()),
        }
    }

    /// Clamp to `[0, n)` — used after propagating offset accesses like
    /// `kz - qz` whose range spills over the array bounds.
    pub fn clamped(&self, n: &SymExpr) -> Range {
        Range {
            begin: self.begin.clone().max(SymExpr::int(0)),
            end: self.end.clone().min(n.clone()),
            stride: self.stride.clone(),
        }
    }

    pub fn eval_length(&self, b: &Bindings) -> Result<i64, UnboundSymbol> {
        let span = (self.end.eval(b)? - self.begin.eval(b)?).max(0);
        Ok(match &self.stride {
            None => span,
            Some(s) => {
                let s = s.eval(b)?.max(1);
                (span + s - 1).div_euclid(s)
            }
        })
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.stride {
            None => write!(f, "{}:{}", self.begin, self.end),
            Some(s) => write!(f, "{}:{}:{}", self.begin, self.end, s),
        }
    }
}

/// One dimension of a memlet subset.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dim {
    /// A single symbolic index, e.g. `kz - qz`.
    Index(SymExpr),
    /// A symbolic range.
    Range(Range),
    /// An indirect access through a lookup table (the `f(a, b)` neighbor
    /// indirection of Eq. 3). Propagation cannot see through it; the
    /// performance engineer supplies a model via
    /// [`crate::propagate::IndirectionModel`].
    Indirect { table: String, args: Vec<SymExpr> },
}

impl Dim {
    pub fn idx(e: impl Into<SymExpr>) -> Dim {
        Dim::Index(e.into().simplified())
    }

    pub fn range(begin: impl Into<SymExpr>, end: impl Into<SymExpr>) -> Dim {
        Dim::Range(Range::new(begin, end))
    }

    pub fn full(n: impl Into<SymExpr>) -> Dim {
        Dim::Range(Range::full(n))
    }

    /// Number of elements covered by this dimension.
    pub fn length(&self) -> SymExpr {
        match self {
            Dim::Index(_) => SymExpr::int(1),
            Dim::Range(r) => r.length(),
            // Without a model, an indirection touches one element per access.
            Dim::Indirect { .. } => SymExpr::int(1),
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::Index(e) => write!(f, "{e}"),
            Dim::Range(r) => write!(f, "{r}"),
            Dim::Indirect { table, args } => {
                let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                write!(f, "{table}({})", args.join(", "))
            }
        }
    }
}

/// Multi-dimensional subset: one [`Dim`] per array dimension.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Subset(pub Vec<Dim>);

impl Subset {
    pub fn new(dims: Vec<Dim>) -> Self {
        Subset(dims)
    }

    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    /// Total number of *unique* elements covered (product of dim lengths).
    pub fn num_elements(&self) -> SymExpr {
        self.0
            .iter()
            .fold(SymExpr::int(1), |acc, d| acc * d.length())
            .simplified()
    }

    pub fn eval_num_elements(&self, b: &Bindings) -> Result<i64, UnboundSymbol> {
        let mut total: i64 = 1;
        for d in &self.0 {
            total *= match d {
                Dim::Index(_) | Dim::Indirect { .. } => 1,
                Dim::Range(r) => r.eval_length(b)?,
            };
        }
        Ok(total)
    }
}

impl fmt::Display for Subset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dims: Vec<String> = self.0.iter().map(|d| d.to_string()).collect();
        write!(f, "[{}]", dims.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_length() {
        let r = Range::new(SymExpr::sym("a"), SymExpr::sym("a") + SymExpr::int(5));
        assert_eq!(r.length(), SymExpr::int(5));
    }

    #[test]
    fn full_range() {
        let r = Range::full(SymExpr::sym("N"));
        assert_eq!(r.length(), SymExpr::sym("N"));
    }

    #[test]
    fn clamp_bounds() {
        let r = Range::new(SymExpr::int(-3), SymExpr::int(12));
        let c = r.clamped(&SymExpr::int(10));
        let b = Bindings::new();
        assert_eq!(c.begin.eval(&b).unwrap(), 0);
        assert_eq!(c.end.eval(&b).unwrap(), 10);
    }

    #[test]
    fn negative_length_clamps_to_zero_on_eval() {
        let r = Range::new(SymExpr::int(5), SymExpr::int(3));
        assert_eq!(r.eval_length(&Bindings::new()).unwrap(), 0);
    }

    #[test]
    fn subset_volume() {
        let s = Subset::new(vec![
            Dim::idx(SymExpr::sym("i")),
            Dim::full(SymExpr::sym("M")),
            Dim::full(SymExpr::sym("N")),
        ]);
        let mut b = Bindings::new();
        b.insert("M".into(), 4);
        b.insert("N".into(), 6);
        assert_eq!(s.eval_num_elements(&b).unwrap(), 24);
    }

    #[test]
    fn strided_range_length() {
        // 0:10:3 covers {0, 3, 6, 9} = 4 elements.
        let r = Range::strided(0, 10, 3);
        assert_eq!(r.eval_length(&Bindings::new()).unwrap(), 4);
        // Symbolic length: ceil((e−b)/s).
        let r = Range::strided(SymExpr::int(0), SymExpr::sym("N"), SymExpr::int(2));
        let mut b = Bindings::new();
        b.insert("N".into(), 7);
        assert_eq!(r.length().eval(&b).unwrap(), 4);
        // Stride 1 normalizes to contiguous.
        let r = Range::strided(0, 5, 1);
        assert!(r.stride.is_none());
        assert_eq!(format!("{r}"), "0:5");
        let r = Range::strided(0, 5, 2);
        assert_eq!(format!("{r}"), "0:5:2");
    }

    #[test]
    fn strided_clamp_keeps_stride() {
        let r = Range::strided(-4, 20, 4);
        let c = r.clamped(&SymExpr::int(12));
        assert_eq!(c.eval_length(&Bindings::new()).unwrap(), 3); // 0,4,8
        assert!(c.stride.is_some());
    }

    #[test]
    fn display_forms() {
        let s = Subset::new(vec![
            Dim::idx(SymExpr::sym("k") - SymExpr::sym("q")),
            Dim::range(SymExpr::int(0), SymExpr::sym("NE")),
        ]);
        assert_eq!(format!("{s}"), "[(k - q), 0:NE]");
    }
}
