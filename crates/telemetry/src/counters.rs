//! Per-thread sharded counters.
//!
//! Every thread that bumps a counter gets its own cache line of atomics,
//! registered once in a global cell list. Totals are the sum over cells;
//! the `Arc`s in the list keep a cell's counts alive after its thread
//! exits (the `qt_dist` thread worlds spawn and join short-lived OS
//! threads whose traffic must survive into the report).
//!
//! The flop counters here are the backing store for
//! `qt_linalg::flops::{add_flops, add_gemm_flops_batched, …}` — there is a
//! single source of truth for flop accounting across the workspace.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

const FLOPS: usize = 0;
const BYTES: usize = 1;
const PACK_NS: usize = 2;
const PACK_CALLS: usize = 3;
const KERNEL_NS: usize = 4;
const KERNEL_CALLS: usize = 5;
const ALLOC_BYTES: usize = 6;
const ALLOC_COUNT: usize = 7;
const WS_FRESH: usize = 8;
const BOUNDARY_HITS: usize = 9;
const BOUNDARY_MISSES: usize = 10;
const HEALTH_QUARANTINED: usize = 11;
const HEALTH_ETA_RETRIES: usize = 12;
const HEALTH_MIXING_BACKOFFS: usize = 13;
const HEALTH_COMM_RETRIES: usize = 14;
const HEALTH_CKPT_WRITES: usize = 15;
const ELASTIC_RANK_DEATHS: usize = 16;
const ELASTIC_HEARTBEAT_TIMEOUTS: usize = 17;
const ELASTIC_RETILE_EVENTS: usize = 18;
const ELASTIC_MIGRATED_TILES: usize = 19;
const BALANCE_STEAL_REQUESTS: usize = 20;
const BALANCE_STOLEN_UNITS: usize = 21;
const BALANCE_REBALANCE_EVENTS: usize = 22;
const BALANCE_MOVED_UNITS: usize = 23;
const JOURNAL_DROPPED: usize = 24;
const KSEL_SPARSE: usize = 25;
const KSEL_DENSE: usize = 26;
const KSEL_SWITCHES: usize = 27;
const KERNEL_SPARSE_FLOPS: usize = 28;
const KERNEL_SPARSE_BYTES: usize = 29;
const KERNEL_DENSE_FLOPS: usize = 30;
const KERNEL_SPARSE_NS: usize = 31;
const KERNEL_DENSE_NS: usize = 32;
const KERNEL_SPARSE_PRED_NS: usize = 33;
const KERNEL_DENSE_PRED_NS: usize = 34;
const SERVICE_ADMITTED: usize = 35;
const SERVICE_REJECTED: usize = 36;
const SERVICE_COMPLETED: usize = 37;
const SERVICE_FAILED: usize = 38;
const SERVICE_DEADLINE_CANCELS: usize = 39;
const SERVICE_WARM_STARTS: usize = 40;
const SERVICE_WARM_FALLBACKS: usize = 41;
const SERVICE_RETRIES: usize = 42;
const SERVICE_BREAKER_OPENS: usize = 43;
const SERVICE_DRAINED: usize = 44;
const SERVICE_WARM_EVICTED: usize = 45;
const CORPUS_SCENARIOS_BUILT: usize = 46;
const CORPUS_SCENARIOS_REJECTED: usize = 47;
const CORPUS_SCENARIOS_RUN: usize = 48;
const CORPUS_MATCHED: usize = 49;
const CORPUS_MISMATCHED: usize = 50;
const CORPUS_CHAOS_RERUNS: usize = 51;
const N_COUNTERS: usize = 52;

struct Cell {
    v: [AtomicU64; N_COUNTERS],
}

// `#[derive(Default)]` stops at 32-element arrays; build the shard by hand.
impl Default for Cell {
    fn default() -> Cell {
        Cell {
            v: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

static CELLS: Mutex<Vec<Arc<Cell>>> = Mutex::new(Vec::new());

thread_local! {
    static CELL: Arc<Cell> = {
        let cell = Arc::new(Cell::default());
        CELLS.lock().unwrap().push(cell.clone());
        cell
    };
}

#[inline]
fn bump(idx: usize, n: u64) {
    CELL.with(|c| c.v[idx].fetch_add(n, Relaxed));
}

#[inline]
fn local(idx: usize) -> u64 {
    CELL.with(|c| c.v[idx].load(Relaxed))
}

fn total(idx: usize) -> u64 {
    CELLS
        .lock()
        .unwrap()
        .iter()
        .map(|c| c.v[idx].load(Relaxed))
        .sum()
}

/// Add `n` real floating-point operations to the calling thread's shard.
#[inline]
pub fn add_flops(n: u64) {
    bump(FLOPS, n);
}

/// Account a complex `m × k × n` GEMM (8 real flops per complex MAC).
#[inline]
pub fn add_gemm_flops(m: usize, k: usize, n: usize) {
    add_gemm_flops_batched(m, k, n, 1);
}

/// Account `batch` complex `m × k × n` GEMMs.
#[inline]
pub fn add_gemm_flops_batched(m: usize, k: usize, n: usize, batch: usize) {
    bump(FLOPS, 8 * (m * k * n * batch) as u64);
}

/// Add `n` communicated bytes to the calling thread's shard.
#[inline]
pub fn add_bytes(n: u64) {
    bump(BYTES, n);
}

/// Account one heap allocation of `bytes` bytes (`alloc.bytes` /
/// `alloc.count`). Fed by the counting global allocator in `qt-bench`;
/// callers must guard against allocator re-entrancy themselves (this
/// function may allocate on a thread's *first* counter touch, when its
/// shard cell is registered).
#[inline]
pub fn add_alloc(bytes: u64) {
    CELL.with(|c| {
        c.v[ALLOC_BYTES].fetch_add(bytes, Relaxed);
        c.v[ALLOC_COUNT].fetch_add(1, Relaxed);
    });
}

/// Account one workspace-arena pool miss: a `take` that had to fall back
/// to a fresh heap allocation instead of reusing a pooled buffer.
#[inline]
pub fn add_ws_fresh() {
    bump(WS_FRESH, 1);
}

/// Account one boundary self-energy served from the `BoundaryCache`
/// (`boundary.cache_hits`).
#[inline]
pub fn add_boundary_hit() {
    bump(BOUNDARY_HITS, 1);
}

/// Account one boundary self-energy computed by full Sancho-Rubio
/// decimation (cache miss or cache bypass).
#[inline]
pub fn add_boundary_miss() {
    bump(BOUNDARY_MISSES, 1);
}

/// Account one quarantined `(E, kz)` / `(ω, qz)` grid point: a point whose
/// Green's functions failed a numerical-health check (singular block,
/// non-convergent boundary, non-finite output) and was excluded from the
/// iteration instead of poisoning it (`health.quarantined`).
#[inline]
pub fn add_quarantined_point() {
    bump(HEALTH_QUARANTINED, 1);
}

/// Account one eta-bump regularized retry of the Sancho-Rubio decimation
/// (`health.eta_retries`).
#[inline]
pub fn add_eta_retry() {
    bump(HEALTH_ETA_RETRIES, 1);
}

/// Account one adaptive-mixing backoff: the SCF residual grew and the
/// mixing factor was halved (`health.mixing_backoffs`).
#[inline]
pub fn add_mixing_backoff() {
    bump(HEALTH_MIXING_BACKOFFS, 1);
}

/// Account one communication retry: a timed-out or corrupt-and-discarded
/// receive, or a sender-side retransmission (`health.comm_retries`).
#[inline]
pub fn add_comm_retry() {
    bump(HEALTH_COMM_RETRIES, 1);
}

/// Account one SCF checkpoint written to disk (`health.checkpoint_writes`).
#[inline]
pub fn add_checkpoint_write() {
    bump(HEALTH_CKPT_WRITES, 1);
}

/// Account one rank declared permanently dead by the failure detector or
/// the kill schedule (`elastic.rank_deaths`).
#[inline]
pub fn add_rank_death() {
    bump(ELASTIC_RANK_DEATHS, 1);
}

/// Account one receive poll that expired without data while the failure
/// detector watched a peer's liveness epoch (`elastic.heartbeat_timeouts`).
#[inline]
pub fn add_heartbeat_timeout() {
    bump(ELASTIC_HEARTBEAT_TIMEOUTS, 1);
}

/// Account one survivor re-tiling pass of the CA decomposition
/// (`elastic.retile_events`).
#[inline]
pub fn add_retile_event() {
    bump(ELASTIC_RETILE_EVENTS, 1);
}

/// Account `n` tiles migrated off a dead rank during a re-tiling pass
/// (`elastic.migrated_tiles`).
#[inline]
pub fn add_migrated_tiles(n: u64) {
    bump(ELASTIC_MIGRATED_TILES, n);
}

/// Account one work-steal request sent by an idle rank
/// (`balance.steal_requests`).
#[inline]
pub fn add_steal_request() {
    bump(BALANCE_STEAL_REQUESTS, 1);
}

/// Account `n` work units granted to a thief by a straggler
/// (`balance.stolen_units`).
#[inline]
pub fn add_stolen_units(n: u64) {
    bump(BALANCE_STOLEN_UNITS, n);
}

/// Account one iteration-to-iteration re-partitioning pass of the
/// adaptive tiling (`balance.rebalance_events`).
#[inline]
pub fn add_rebalance_event() {
    bump(BALANCE_REBALANCE_EVENTS, 1);
}

/// Account `n` units whose owner changed in a re-partitioning pass
/// (`balance.moved_units`).
#[inline]
pub fn add_rebalance_moved_units(n: u64) {
    bump(BALANCE_MOVED_UNITS, n);
}

/// Account `n` journal events overwritten by a full flight-recorder ring
/// before they could be drained (`journal.dropped`).
#[inline]
pub fn add_journal_dropped(n: u64) {
    bump(JOURNAL_DROPPED, n);
}

/// Account one per-block-operation kernel-selector decision that routed a
/// coupling product through the CSR sparse kernels
/// (`kernel.sparse_selected`).
#[inline]
pub fn add_kernel_sparse_selected() {
    bump(KSEL_SPARSE, 1);
}

/// Account one per-block-operation kernel-selector decision that kept a
/// coupling product on the blocked dense GEMM (`kernel.dense_selected`).
#[inline]
pub fn add_kernel_dense_selected() {
    bump(KSEL_DENSE, 1);
}

/// Account one hysteresis flip of a sticky per-block kernel choice — the
/// measured density crossed the crossover band and the selector changed
/// its mind (`kernel.switches`).
#[inline]
pub fn add_kernel_switch() {
    bump(KSEL_SWITCHES, 1);
}

/// Add `n` real flops executed by the CSR sparse kernels
/// (`kernel.sparse_flops`). Also counted in the global flop counter by
/// the kernels themselves; this shard isolates the sparse share.
#[inline]
pub fn add_kernel_sparse_flops(n: u64) {
    bump(KERNEL_SPARSE_FLOPS, n);
}

/// Add `n` bytes streamed by the CSR sparse kernels under their minimal
/// traffic model (`kernel.sparse_bytes`): CSR storage read once plus the
/// dense operand/result panels touched.
#[inline]
pub fn add_kernel_sparse_bytes(n: u64) {
    bump(KERNEL_SPARSE_BYTES, n);
}

/// Add `n` real flops a selector-governed coupling product executed on
/// the dense route (`kernel.dense_flops`).
#[inline]
pub fn add_kernel_dense_flops(n: u64) {
    bump(KERNEL_DENSE_FLOPS, n);
}

/// Add `n` measured nanoseconds spent in sparse-selected coupling ops.
#[inline]
pub fn add_kernel_sparse_ns(n: u64) {
    bump(KERNEL_SPARSE_NS, n);
}

/// Add `n` measured nanoseconds spent in dense-selected coupling ops.
#[inline]
pub fn add_kernel_dense_ns(n: u64) {
    bump(KERNEL_DENSE_NS, n);
}

/// Add `n` model-predicted nanoseconds for the same sparse-selected ops
/// that fed [`add_kernel_sparse_ns`] — accumulated together so predicted
/// and measured cover the identical op set.
#[inline]
pub fn add_kernel_sparse_pred_ns(n: u64) {
    bump(KERNEL_SPARSE_PRED_NS, n);
}

/// Add `n` model-predicted nanoseconds for the dense-selected ops that
/// fed [`add_kernel_dense_ns`].
#[inline]
pub fn add_kernel_dense_pred_ns(n: u64) {
    bump(KERNEL_DENSE_PRED_NS, n);
}

/// Account one sweep request admitted into the service queue
/// (`service.admitted`).
#[inline]
pub fn add_service_admitted() {
    bump(SERVICE_ADMITTED, 1);
}

/// Account one sweep request rejected with backpressure — queue full,
/// shutdown in progress, or an open circuit breaker
/// (`service.rejected`).
#[inline]
pub fn add_service_rejected() {
    bump(SERVICE_REJECTED, 1);
}

/// Account one sweep request completed with every point answered
/// (`service.completed`).
#[inline]
pub fn add_service_completed() {
    bump(SERVICE_COMPLETED, 1);
}

/// Account one sweep request that ended in failure after exhausting its
/// retry budget (`service.failed`).
#[inline]
pub fn add_service_failed() {
    bump(SERVICE_FAILED, 1);
}

/// Account one request cancelled by the deadline watchdog
/// (`service.deadline_cancels`).
#[inline]
pub fn add_service_deadline_cancel() {
    bump(SERVICE_DEADLINE_CANCELS, 1);
}

/// Account one sweep point seeded from a neighboring converged solve
/// (`service.warm_starts`).
#[inline]
pub fn add_service_warm_start() {
    bump(SERVICE_WARM_STARTS, 1);
}

/// Account one warm-start validation failure that degraded to a cold
/// solve (`service.warm_fallbacks`).
#[inline]
pub fn add_service_warm_fallback() {
    bump(SERVICE_WARM_FALLBACKS, 1);
}

/// Account one per-request retry after a transient failure
/// (`service.retries`).
#[inline]
pub fn add_service_retry() {
    bump(SERVICE_RETRIES, 1);
}

/// Account one circuit-breaker trip quarantining a device variant
/// (`service.breaker_opens`).
#[inline]
pub fn add_service_breaker_open() {
    bump(SERVICE_BREAKER_OPENS, 1);
}

/// Account one in-flight sweep point checkpointed by drain-on-shutdown
/// (`service.drained`).
#[inline]
pub fn add_service_drained() {
    bump(SERVICE_DRAINED, 1);
}

/// Account one warm-start seed evicted by the bounded store's spread-
/// preserving policy (`service.warm_evicted`).
#[inline]
pub fn add_service_warm_evicted() {
    bump(SERVICE_WARM_EVICTED, 1);
}

/// Account one scenario successfully parsed, validated and built into a
/// simulation (`corpus.scenarios_built`).
#[inline]
pub fn add_corpus_scenario_built() {
    bump(CORPUS_SCENARIOS_BUILT, 1);
}

/// Account one scenario rejected by fail-closed validation with a typed
/// `ScenarioError` (`corpus.scenarios_rejected`).
#[inline]
pub fn add_corpus_scenario_rejected() {
    bump(CORPUS_SCENARIOS_REJECTED, 1);
}

/// Account one golden-corpus scenario executed end to end
/// (`corpus.scenarios_run`).
#[inline]
pub fn add_corpus_scenario_run() {
    bump(CORPUS_SCENARIOS_RUN, 1);
}

/// Account one scenario whose fingerprint matched its golden record
/// (`corpus.matched`).
#[inline]
pub fn add_corpus_matched() {
    bump(CORPUS_MATCHED, 1);
}

/// Account one scenario whose fingerprint diverged from its golden
/// record (`corpus.mismatched`).
#[inline]
pub fn add_corpus_mismatched() {
    bump(CORPUS_MISMATCHED, 1);
}

/// Account one chaos-matrix rerun of a corpus scenario under fault
/// injection (`corpus.chaos_reruns`).
#[inline]
pub fn add_corpus_chaos_rerun() {
    bump(CORPUS_CHAOS_RERUNS, 1);
}

/// Total flops across all threads (alive or exited) since the last reset.
pub fn total_flops() -> u64 {
    total(FLOPS)
}

/// Total admitted sweep requests since the last reset.
pub fn total_service_admitted() -> u64 {
    total(SERVICE_ADMITTED)
}

/// Total backpressure-rejected sweep requests since the last reset.
pub fn total_service_rejected() -> u64 {
    total(SERVICE_REJECTED)
}

/// Total completed sweep requests since the last reset.
pub fn total_service_completed() -> u64 {
    total(SERVICE_COMPLETED)
}

/// Total failed sweep requests since the last reset.
pub fn total_service_failed() -> u64 {
    total(SERVICE_FAILED)
}

/// Total deadline cancellations since the last reset.
pub fn total_service_deadline_cancels() -> u64 {
    total(SERVICE_DEADLINE_CANCELS)
}

/// Total warm-started sweep points since the last reset.
pub fn total_service_warm_starts() -> u64 {
    total(SERVICE_WARM_STARTS)
}

/// Total warm-to-cold degradations since the last reset.
pub fn total_service_warm_fallbacks() -> u64 {
    total(SERVICE_WARM_FALLBACKS)
}

/// Total per-request retries since the last reset.
pub fn total_service_retries() -> u64 {
    total(SERVICE_RETRIES)
}

/// Total circuit-breaker trips since the last reset.
pub fn total_service_breaker_opens() -> u64 {
    total(SERVICE_BREAKER_OPENS)
}

/// Total drain-checkpointed sweep points since the last reset.
pub fn total_service_drained() -> u64 {
    total(SERVICE_DRAINED)
}

/// Total warm-store evictions since the last reset.
pub fn total_service_warm_evicted() -> u64 {
    total(SERVICE_WARM_EVICTED)
}

/// Total scenarios built since the last reset.
pub fn total_corpus_scenarios_built() -> u64 {
    total(CORPUS_SCENARIOS_BUILT)
}

/// Total scenarios rejected with typed errors since the last reset.
pub fn total_corpus_scenarios_rejected() -> u64 {
    total(CORPUS_SCENARIOS_REJECTED)
}

/// Total corpus scenarios executed since the last reset.
pub fn total_corpus_scenarios_run() -> u64 {
    total(CORPUS_SCENARIOS_RUN)
}

/// Total golden-fingerprint matches since the last reset.
pub fn total_corpus_matched() -> u64 {
    total(CORPUS_MATCHED)
}

/// Total golden-fingerprint mismatches since the last reset.
pub fn total_corpus_mismatched() -> u64 {
    total(CORPUS_MISMATCHED)
}

/// Total chaos-matrix reruns since the last reset.
pub fn total_corpus_chaos_reruns() -> u64 {
    total(CORPUS_CHAOS_RERUNS)
}

/// Total sparse kernel-selector decisions since the last reset.
pub fn total_kernel_sparse_selected() -> u64 {
    total(KSEL_SPARSE)
}

/// Total dense kernel-selector decisions since the last reset.
pub fn total_kernel_dense_selected() -> u64 {
    total(KSEL_DENSE)
}

/// Total hysteresis flips of sticky kernel choices since the last reset.
pub fn total_kernel_switches() -> u64 {
    total(KSEL_SWITCHES)
}

/// Total CSR sparse-kernel flops since the last reset.
pub fn total_kernel_sparse_flops() -> u64 {
    total(KERNEL_SPARSE_FLOPS)
}

/// Total CSR sparse-kernel streamed bytes since the last reset.
pub fn total_kernel_sparse_bytes() -> u64 {
    total(KERNEL_SPARSE_BYTES)
}

/// Total dense-route coupling flops under kernel selection since the
/// last reset.
pub fn total_kernel_dense_flops() -> u64 {
    total(KERNEL_DENSE_FLOPS)
}

/// Total measured nanoseconds in sparse-selected coupling ops.
pub fn total_kernel_sparse_ns() -> u64 {
    total(KERNEL_SPARSE_NS)
}

/// Total measured nanoseconds in dense-selected coupling ops.
pub fn total_kernel_dense_ns() -> u64 {
    total(KERNEL_DENSE_NS)
}

/// Total model-predicted nanoseconds for the timed sparse-selected ops.
pub fn total_kernel_sparse_pred_ns() -> u64 {
    total(KERNEL_SPARSE_PRED_NS)
}

/// Total model-predicted nanoseconds for the timed dense-selected ops.
pub fn total_kernel_dense_pred_ns() -> u64 {
    total(KERNEL_DENSE_PRED_NS)
}

/// Total journal events lost to ring overflow since the last reset.
pub fn total_journal_dropped() -> u64 {
    total(JOURNAL_DROPPED)
}

/// Total heap-allocated bytes across all threads since the last reset.
pub fn total_alloc_bytes() -> u64 {
    total(ALLOC_BYTES)
}

/// Total heap allocation count across all threads since the last reset.
pub fn total_alloc_count() -> u64 {
    total(ALLOC_COUNT)
}

/// Total workspace-arena pool misses across all threads since the last
/// reset.
pub fn total_ws_fresh() -> u64 {
    total(WS_FRESH)
}

/// Total boundary-cache hits across all threads since the last reset.
pub fn total_boundary_hits() -> u64 {
    total(BOUNDARY_HITS)
}

/// Total boundary-cache misses across all threads since the last reset.
pub fn total_boundary_misses() -> u64 {
    total(BOUNDARY_MISSES)
}

/// Total quarantined grid points across all threads since the last reset.
pub fn total_quarantined_points() -> u64 {
    total(HEALTH_QUARANTINED)
}

/// Total eta-bump decimation retries across all threads since the last
/// reset.
pub fn total_eta_retries() -> u64 {
    total(HEALTH_ETA_RETRIES)
}

/// Total adaptive-mixing backoffs across all threads since the last reset.
pub fn total_mixing_backoffs() -> u64 {
    total(HEALTH_MIXING_BACKOFFS)
}

/// Total communication retries across all threads since the last reset.
pub fn total_comm_retries() -> u64 {
    total(HEALTH_COMM_RETRIES)
}

/// Total checkpoint writes across all threads since the last reset.
pub fn total_checkpoint_writes() -> u64 {
    total(HEALTH_CKPT_WRITES)
}

/// Total rank deaths across all threads since the last reset.
pub fn total_rank_deaths() -> u64 {
    total(ELASTIC_RANK_DEATHS)
}

/// Total heartbeat-timeout polls across all threads since the last reset.
pub fn total_heartbeat_timeouts() -> u64 {
    total(ELASTIC_HEARTBEAT_TIMEOUTS)
}

/// Total survivor re-tiling passes across all threads since the last
/// reset.
pub fn total_retile_events() -> u64 {
    total(ELASTIC_RETILE_EVENTS)
}

/// Total migrated tiles across all threads since the last reset.
pub fn total_migrated_tiles() -> u64 {
    total(ELASTIC_MIGRATED_TILES)
}

/// Total steal requests across all threads since the last reset.
pub fn total_steal_requests() -> u64 {
    total(BALANCE_STEAL_REQUESTS)
}

/// Total stolen work units across all threads since the last reset.
pub fn total_stolen_units() -> u64 {
    total(BALANCE_STOLEN_UNITS)
}

/// Total adaptive re-partitioning passes since the last reset.
pub fn total_rebalance_events() -> u64 {
    total(BALANCE_REBALANCE_EVENTS)
}

/// Total units moved by re-partitioning passes since the last reset.
pub fn total_rebalance_moved_units() -> u64 {
    total(BALANCE_MOVED_UNITS)
}

/// Total communicated bytes across all threads since the last reset.
pub fn total_bytes() -> u64 {
    total(BYTES)
}

/// Flops accumulated by the calling thread since the last reset.
#[inline]
pub fn local_flops() -> u64 {
    local(FLOPS)
}

/// Bytes accumulated by the calling thread since the last reset.
#[inline]
pub fn local_bytes() -> u64 {
    local(BYTES)
}

/// Heap bytes allocated by the calling thread since the last reset.
#[inline]
pub fn local_alloc_bytes() -> u64 {
    local(ALLOC_BYTES)
}

/// Heap allocations performed by the calling thread since the last reset.
#[inline]
pub fn local_alloc_count() -> u64 {
    local(ALLOC_COUNT)
}

/// Zero every counter on every registered cell.
pub fn reset_counters() {
    for cell in CELLS.lock().unwrap().iter() {
        for a in &cell.v {
            a.store(0, Relaxed);
        }
    }
}

/// Zero only the flop counters (the historical `reset_flops` semantics of
/// `qt_linalg::flops`).
pub fn reset_flops() {
    for cell in CELLS.lock().unwrap().iter() {
        cell.v[FLOPS].store(0, Relaxed);
    }
}

/// Hot sections timed with dedicated per-thread counters instead of
/// registry spans, so the blocked-GEMM inner loops never touch a lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HotSection {
    /// Operand packing (`pack_a` / `pack_b`) in the blocked GEMM.
    GemmPack,
    /// The register-tiled macro kernel of the blocked GEMM.
    GemmKernel,
}

/// Run `f`, attributing its wall-time to `section` when telemetry is
/// enabled. Disabled cost is one relaxed atomic load.
#[inline]
pub fn timed<R>(section: HotSection, f: impl FnOnce() -> R) -> R {
    if !crate::span::enabled() {
        return f();
    }
    let t0 = Instant::now();
    let out = f();
    let ns = t0.elapsed().as_nanos() as u64;
    let (ns_idx, calls_idx) = match section {
        HotSection::GemmPack => (PACK_NS, PACK_CALLS),
        HotSection::GemmKernel => (KERNEL_NS, KERNEL_CALLS),
    };
    CELL.with(|c| {
        c.v[ns_idx].fetch_add(ns, Relaxed);
        c.v[calls_idx].fetch_add(1, Relaxed);
    });
    out
}

/// Aggregated pack-vs-microkernel timing for the blocked GEMM.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GemmSplit {
    /// Summed busy nanoseconds in operand packing, across threads.
    pub pack_ns: u64,
    /// Number of timed packing sections.
    pub pack_calls: u64,
    /// Summed busy nanoseconds in the macro kernel, across threads.
    pub kernel_ns: u64,
    /// Number of timed macro-kernel sections.
    pub kernel_calls: u64,
}

/// Snapshot the pack/kernel hot-section counters.
pub fn gemm_split() -> GemmSplit {
    GemmSplit {
        pack_ns: total(PACK_NS),
        pack_calls: total(PACK_CALLS),
        kernel_ns: total(KERNEL_NS),
        kernel_calls: total(KERNEL_CALLS),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_counts_feed_totals() {
        let f0 = total_flops();
        let l0 = local_flops();
        add_gemm_flops_batched(2, 3, 4, 5);
        assert_eq!(local_flops() - l0, 8 * 2 * 3 * 4 * 5);
        assert!(total_flops() - f0 >= 8 * 2 * 3 * 4 * 5);
    }

    #[test]
    fn alloc_and_boundary_counts_accumulate() {
        let (b0, c0) = (total_alloc_bytes(), total_alloc_count());
        add_alloc(256);
        add_alloc(64);
        assert!(total_alloc_bytes() - b0 >= 320);
        assert!(total_alloc_count() - c0 >= 2);
        assert!(local_alloc_bytes() >= 320);
        assert!(local_alloc_count() >= 2);

        let (h0, m0, w0) = (
            total_boundary_hits(),
            total_boundary_misses(),
            total_ws_fresh(),
        );
        add_boundary_hit();
        add_boundary_miss();
        add_ws_fresh();
        assert!(total_boundary_hits() - h0 >= 1);
        assert!(total_boundary_misses() - m0 >= 1);
        assert!(total_ws_fresh() - w0 >= 1);
    }

    #[test]
    fn health_counts_accumulate() {
        let (q0, e0, m0, c0, k0) = (
            total_quarantined_points(),
            total_eta_retries(),
            total_mixing_backoffs(),
            total_comm_retries(),
            total_checkpoint_writes(),
        );
        add_quarantined_point();
        add_eta_retry();
        add_mixing_backoff();
        add_comm_retry();
        add_comm_retry();
        add_checkpoint_write();
        assert!(total_quarantined_points() - q0 >= 1);
        assert!(total_eta_retries() - e0 >= 1);
        assert!(total_mixing_backoffs() - m0 >= 1);
        assert!(total_comm_retries() - c0 >= 2);
        assert!(total_checkpoint_writes() - k0 >= 1);
    }

    #[test]
    fn elasticity_counts_accumulate() {
        let (d0, t0, r0, m0) = (
            total_rank_deaths(),
            total_heartbeat_timeouts(),
            total_retile_events(),
            total_migrated_tiles(),
        );
        add_rank_death();
        add_heartbeat_timeout();
        add_heartbeat_timeout();
        add_retile_event();
        add_migrated_tiles(3);
        assert!(total_rank_deaths() - d0 >= 1);
        assert!(total_heartbeat_timeouts() - t0 >= 2);
        assert!(total_retile_events() - r0 >= 1);
        assert!(total_migrated_tiles() - m0 >= 3);
    }

    #[test]
    fn balance_counts_accumulate() {
        let (s0, u0, r0, m0) = (
            total_steal_requests(),
            total_stolen_units(),
            total_rebalance_events(),
            total_rebalance_moved_units(),
        );
        add_steal_request();
        add_stolen_units(2);
        add_rebalance_event();
        add_rebalance_moved_units(5);
        assert!(total_steal_requests() - s0 >= 1);
        assert!(total_stolen_units() - u0 >= 2);
        assert!(total_rebalance_events() - r0 >= 1);
        assert!(total_rebalance_moved_units() - m0 >= 5);
    }

    #[test]
    fn kernel_selection_counts_accumulate() {
        let (s0, d0, w0) = (
            total_kernel_sparse_selected(),
            total_kernel_dense_selected(),
            total_kernel_switches(),
        );
        let (f0, b0, g0) = (
            total_kernel_sparse_flops(),
            total_kernel_sparse_bytes(),
            total_kernel_dense_flops(),
        );
        add_kernel_sparse_selected();
        add_kernel_sparse_selected();
        add_kernel_dense_selected();
        add_kernel_switch();
        add_kernel_sparse_flops(800);
        add_kernel_sparse_bytes(4096);
        add_kernel_dense_flops(1600);
        add_kernel_sparse_ns(10);
        add_kernel_dense_ns(20);
        add_kernel_sparse_pred_ns(12);
        add_kernel_dense_pred_ns(18);
        assert!(total_kernel_sparse_selected() - s0 >= 2);
        assert!(total_kernel_dense_selected() - d0 >= 1);
        assert!(total_kernel_switches() - w0 >= 1);
        assert!(total_kernel_sparse_flops() - f0 >= 800);
        assert!(total_kernel_sparse_bytes() - b0 >= 4096);
        assert!(total_kernel_dense_flops() - g0 >= 1600);
        assert!(total_kernel_sparse_ns() >= 10);
        assert!(total_kernel_dense_ns() >= 20);
        assert!(total_kernel_sparse_pred_ns() >= 12);
        assert!(total_kernel_dense_pred_ns() >= 18);
    }

    #[test]
    fn service_counts_accumulate() {
        let before = [
            total_service_admitted(),
            total_service_rejected(),
            total_service_completed(),
            total_service_failed(),
            total_service_deadline_cancels(),
            total_service_warm_starts(),
            total_service_warm_fallbacks(),
            total_service_retries(),
            total_service_breaker_opens(),
            total_service_drained(),
        ];
        // Two admissions so the settled totals (completed + failed) never
        // exceed admissions — the report validator checks that invariant
        // against these same process-global counters.
        add_service_admitted();
        add_service_admitted();
        add_service_rejected();
        add_service_completed();
        add_service_failed();
        add_service_deadline_cancel();
        add_service_warm_start();
        add_service_warm_fallback();
        add_service_retry();
        add_service_breaker_open();
        add_service_drained();
        let after = [
            total_service_admitted(),
            total_service_rejected(),
            total_service_completed(),
            total_service_failed(),
            total_service_deadline_cancels(),
            total_service_warm_starts(),
            total_service_warm_fallbacks(),
            total_service_retries(),
            total_service_breaker_opens(),
            total_service_drained(),
        ];
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            assert!(a - b >= 1, "service counter {i} did not advance");
        }
    }

    #[test]
    fn corpus_counts_accumulate() {
        let before = [
            total_service_warm_evicted(),
            total_corpus_scenarios_built(),
            total_corpus_scenarios_rejected(),
            total_corpus_scenarios_run(),
            total_corpus_matched(),
            total_corpus_mismatched(),
            total_corpus_chaos_reruns(),
        ];
        add_service_warm_evicted();
        add_corpus_scenario_built();
        add_corpus_scenario_rejected();
        // Two runs cover one match plus one mismatch: the report's
        // corpus block validates `matched + mismatched <= scenarios_run`
        // against these same global counters, and report tests snapshot
        // them via `from_current()`.
        add_corpus_scenario_run();
        add_corpus_scenario_run();
        add_corpus_matched();
        add_corpus_mismatched();
        add_corpus_chaos_rerun();
        let after = [
            total_service_warm_evicted(),
            total_corpus_scenarios_built(),
            total_corpus_scenarios_rejected(),
            total_corpus_scenarios_run(),
            total_corpus_matched(),
            total_corpus_mismatched(),
            total_corpus_chaos_reruns(),
        ];
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            assert!(a - b >= 1, "corpus counter {i} did not advance");
        }
    }

    #[test]
    fn byte_counts_accumulate() {
        let b0 = total_bytes();
        add_bytes(1024);
        assert!(total_bytes() - b0 >= 1024);
    }

    #[test]
    fn cross_thread_counts_survive_thread_exit() {
        let before = total_flops();
        std::thread::spawn(|| add_flops(77)).join().unwrap();
        assert!(total_flops() - before >= 77);
    }

    #[test]
    fn timed_is_transparent_when_disabled() {
        let split0 = gemm_split();
        let v = timed(HotSection::GemmPack, || 41 + 1);
        assert_eq!(v, 42);
        if !crate::span::enabled() {
            let split1 = gemm_split();
            assert_eq!(split0.pack_calls, split1.pack_calls);
        }
    }
}
