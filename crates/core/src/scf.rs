//! Self-consistent GF ↔ SSE iteration (Fig. 2 / Fig. 6).
//!
//! "The algorithm starts by setting Σ≷ = Π≷ = 0 and continues by computing
//! all GFs under this condition. The latter then serve as inputs to the next
//! phase, where the SSE are evaluated … the process repeats itself until the
//! GF variations do not exceed a pre-defined threshold." (§2)
//!
//! Linear mixing of the self-energies damps the Born iteration.

use crate::boundary::BoundaryCache;
use crate::checkpoint::{CheckpointConfig, ScfCheckpoint};
use crate::device::Device;
use crate::gf::{self, ElectronGf, ElectronSelfEnergy, GfConfig, PhononGf, PhononSelfEnergy};
use crate::grids::Grids;
use crate::hamiltonian::{ElectronModel, PhononModel};
use crate::health::NumericalError;
use crate::params::SimParams;
use crate::rgf;
use crate::sse::{self, SseInputs, SseVariant};
use qt_linalg::Tensor;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Everything needed to run a simulation, bundled.
pub struct Simulation {
    pub p: SimParams,
    pub dev: Device,
    pub em: ElectronModel,
    pub pm: PhononModel,
    pub grids: Grids,
    /// Hamiltonian derivative tensor `∇H[a, slot, i, :, :]`.
    pub dh: Tensor,
    /// Memoized contact self-energies, keyed on the Hamiltonian/grid
    /// identity; iteration 1 of the Born loop fills it, later iterations
    /// replay it. Call [`BoundaryCache::invalidate`] after mutating the
    /// models in place (a changed identity key also invalidates it
    /// automatically at the next GF phase).
    pub boundary: BoundaryCache,
    /// Sticky per-coupling kernel choices for the electron RGF solves
    /// (only consulted when `gf.strategy` is
    /// [`rgf::MultiplyStrategy::Auto`]). Electrons and phonons get
    /// separate selectors: their coupling densities differ, and sharing
    /// cells would make the hysteresis flap between carriers.
    pub kernel_selector_e: rgf::KernelSelector,
    /// Sticky per-coupling kernel choices for the phonon RGF solves.
    pub kernel_selector_ph: rgf::KernelSelector,
}

impl Simulation {
    /// Build a simulation over the energy window `[emin, emax]` (eV).
    pub fn new(p: SimParams, emin: f64, emax: f64) -> Self {
        Simulation::try_new(p, emin, emax).expect("invalid parameters")
    }

    /// Fallible [`Simulation::new`]: the entry point for user-supplied
    /// parameters (scenario files, `qt-serve` variant registration), where
    /// bad dimensions or an empty energy window must surface as an error
    /// instead of a panic.
    pub fn try_new(p: SimParams, emin: f64, emax: f64) -> Result<Self, String> {
        p.validate()?;
        let dev = Device::try_new(&p)?;
        let em = ElectronModel::for_params(&p);
        let pm = PhononModel::default();
        Simulation::from_parts(p, dev, em, pm, emin, emax)
    }

    /// Build a simulation with seeded defect/vacancy disorder: vacancy
    /// bonds are pruned from the device and the electron model carries the
    /// per-site on-site perturbation, both drawn deterministically from
    /// `disorder.seed` — the same seed always produces the same disordered
    /// device.
    pub fn disordered(
        p: SimParams,
        emin: f64,
        emax: f64,
        disorder: crate::hamiltonian::Disorder,
    ) -> Result<Self, String> {
        p.validate()?;
        let mut dev = Device::try_new(&p)?;
        dev.delete_sites(&disorder.vacancies(p.na));
        let mut em = ElectronModel::for_params(&p);
        em.disorder = Some(disorder);
        let pm = PhononModel::default();
        Simulation::from_parts(p, dev, em, pm, emin, emax)
    }

    /// Assemble a simulation from prebuilt parts (custom device/models —
    /// the scenario layer's geometry variants come through here). Checks
    /// `p` and the energy window; the caller is responsible for the parts
    /// being mutually consistent with `p`.
    pub fn from_parts(
        p: SimParams,
        dev: Device,
        em: ElectronModel,
        pm: PhononModel,
        emin: f64,
        emax: f64,
    ) -> Result<Self, String> {
        p.validate()?;
        if dev.na != p.na || dev.nb != p.nb || dev.bnum != p.bnum {
            return Err(format!(
                "device geometry ({}, {}, {}) disagrees with params ({}, {}, {})",
                dev.na, dev.nb, dev.bnum, p.na, p.nb, p.bnum
            ));
        }
        if em.norb != p.norb {
            return Err(format!(
                "electron model norb {} disagrees with params norb {}",
                em.norb, p.norb
            ));
        }
        let grids = Grids::try_new(&p, emin, emax)?;
        let dh = em.dh_tensor(&dev);
        let couplings = p.bnum.saturating_sub(1);
        Ok(Simulation {
            p,
            dev,
            em,
            pm,
            grids,
            dh,
            boundary: BoundaryCache::new(),
            kernel_selector_e: rgf::KernelSelector::new(couplings),
            kernel_selector_ph: rgf::KernelSelector::new(couplings),
        })
    }
}

/// Controls of the self-consistent Born loop.
#[derive(Clone, Copy, Debug)]
pub struct ScfConfig {
    pub max_iterations: usize,
    /// Convergence threshold on the relative change of `G<`.
    pub tolerance: f64,
    /// Linear mixing factor in `(0, 1]` applied to new self-energies.
    pub mixing: f64,
    /// Residual-divergence recovery: when true (default) the effective
    /// mixing factor is halved whenever the residual grows and cautiously
    /// restored toward `mixing` on sustained decrease. The per-iteration
    /// effective factor is recorded in the trajectory.
    pub adaptive_mixing: bool,
    /// Which SSE kernel implementation to use.
    pub variant: SseVariant,
    pub gf: GfConfig,
}

impl Default for ScfConfig {
    fn default() -> Self {
        ScfConfig {
            max_iterations: 15,
            tolerance: 1e-6,
            mixing: 0.5,
            adaptive_mixing: true,
            variant: SseVariant::Dace,
            gf: GfConfig::default(),
        }
    }
}

/// Residual growth beyond this factor counts as divergence (small slack so
/// ordinary non-monotonic wiggles near convergence don't trigger backoff).
const MIXING_GROWTH_TRIGGER: f64 = 1.05;
/// Consecutive residual decreases required before restoring mixing.
const MIXING_RESTORE_STREAK: u32 = 2;

/// Adaptive damping of the Born iteration: halve the effective mixing
/// factor when the `G<` residual grows (the classic signature of an
/// over-aggressive linear mixing), restore it multiplicatively toward the
/// configured base after sustained decrease. The controller never exceeds
/// the base factor and never drops below `base/64` (at that point damping
/// is no longer the problem).
#[derive(Clone, Copy, Debug)]
pub struct MixingController {
    base: f64,
    /// Effective mixing factor applied this iteration.
    pub current: f64,
    prev: Option<f64>,
    streak: u32,
    enabled: bool,
}

impl MixingController {
    pub fn new(base: f64, enabled: bool) -> Self {
        MixingController {
            base,
            current: base,
            prev: None,
            streak: 0,
            enabled,
        }
    }

    /// Rebuild mid-run state from a checkpoint.
    pub fn restore(base: f64, enabled: bool, ck: &ScfCheckpoint) -> Self {
        MixingController {
            base,
            current: if enabled { ck.mixing_current } else { base },
            prev: ck.prev_residual,
            streak: ck.decrease_streak,
            enabled,
        }
    }

    /// Feed the residual observed *before* this iteration's mixing step;
    /// adjusts `current` for the upcoming mix. Non-finite residuals (the
    /// first iteration has none) leave the state untouched.
    pub fn observe(&mut self, res: f64) {
        if !self.enabled || !res.is_finite() {
            return;
        }
        if let Some(prev) = self.prev {
            if res > prev * MIXING_GROWTH_TRIGGER {
                let floor = self.base / 64.0;
                if self.current > floor {
                    self.current = (self.current * 0.5).max(floor);
                    qt_telemetry::counters::add_mixing_backoff();
                    qt_telemetry::journal::emit(qt_telemetry::EventKind::MixingBackoff {
                        factor: self.current,
                    });
                }
                self.streak = 0;
            } else if res < prev {
                self.streak += 1;
                if self.streak >= MIXING_RESTORE_STREAK && self.current < self.base {
                    self.current = (self.current * 1.5).min(self.base);
                    self.streak = 0;
                }
            } else {
                self.streak = 0;
            }
        }
        self.prev = Some(res);
    }

    fn prev_residual(&self) -> Option<f64> {
        self.prev
    }

    fn streak(&self) -> u32 {
        self.streak
    }
}

/// One Born iteration of the convergence trajectory (telemetry report,
/// "convergence" section).
#[derive(Clone, Copy, Debug)]
pub struct IterationRecord {
    /// 0-based iteration index.
    pub iteration: usize,
    /// Relative `G<` change vs the previous iterate; `None` on the first
    /// iteration (no previous iterate to compare against).
    pub residual: Option<f64>,
    /// Mixing factor applied to the new self-energies this iteration.
    pub mixing: f64,
    /// Wall-clock time of the iteration (GF + SSE phases), in seconds.
    pub wall_seconds: f64,
    /// Electrical current after this iteration.
    pub current: f64,
    /// Bytes obtained from the global allocator during this iteration
    /// (0 unless a counting allocator is installed, e.g. qt-bench's
    /// `count-alloc` feature).
    pub alloc_bytes: u64,
    /// Workspace-pool misses (fresh buffer allocations) this iteration.
    pub ws_fresh: u64,
    /// Contact self-energies recomputed (boundary-cache misses) this
    /// iteration; 0 from iteration 2 on when the cache is warm.
    pub boundary_misses: u64,
    /// Grid points quarantined by the health guards this iteration
    /// (electron + phonon phases combined).
    pub quarantined: u64,
}

/// Outcome of the self-consistent loop.
pub struct ScfResult {
    pub converged: bool,
    pub iterations: usize,
    /// Relative `G<` change after each iteration.
    pub residuals: Vec<f64>,
    /// Electrical current after each iteration.
    pub current_history: Vec<f64>,
    /// Per-iteration convergence trajectory (residual, mixing, wall time,
    /// current) — one record per Born iteration, including the first.
    pub trajectory: Vec<IterationRecord>,
    pub electron: ElectronGf,
    pub phonon: PhononGf,
    pub sigma: ElectronSelfEnergy,
    pub pi: PhononSelfEnergy,
}

/// Blend `new` into `old`: `old ← (1−mix)·old + mix·new`.
fn mix_tensor(old: &mut Tensor, new: &Tensor, mix: f64) {
    for (o, n) in old.as_mut_slice().iter_mut().zip(new.as_slice()) {
        *o = o.scale(1.0 - mix) + n.scale(mix);
    }
}

/// Cooperative cancellation handle for a running SCF solve. Cloneable and
/// thread-safe: the deadline watchdog (or any supervisor) keeps one clone
/// and cancels it asynchronously; the SCF loop observes the flag at every
/// iteration boundary, so a cancelled solve stops within one Born
/// iteration of the signal — the structural bound behind qt-serve's
/// deadline guarantee.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn new() -> Self {
        CancelToken(Arc::new(AtomicBool::new(false)))
    }

    /// Signal cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Typed failure of [`run_scf_with`]. Wraps per-point numerical failures
/// and adds the two structured outcomes the service layer reacts to:
/// stale state whose shape no longer matches the live config, and
/// cooperative cancellation.
#[derive(Clone, Debug, PartialEq)]
pub enum ScfError {
    /// A GF phase failed numerically (singular block, non-convergent
    /// boundary, non-finite tensor, …) past the quarantine ceiling.
    Numerical(NumericalError),
    /// A resumed checkpoint or warm-start seed carries tensors of a
    /// different device shape than the live config — refusing up front
    /// (before any tensor allocation) instead of panicking mid-loop.
    ShapeMismatch {
        /// Where the stale state came from: `"checkpoint"` or `"warm-start"`.
        source: &'static str,
        /// Which tensor mismatched, e.g. `"sigma.lesser"`.
        field: &'static str,
        expected: Vec<usize>,
        found: Vec<usize>,
    },
    /// The solve was cancelled at an iteration boundary. `iteration` is
    /// the Born iteration that was about to run; `checkpointed` reports
    /// whether a drain checkpoint was written for later resumption.
    Cancelled {
        iteration: usize,
        checkpointed: bool,
    },
}

impl fmt::Display for ScfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScfError::Numerical(e) => write!(f, "{e}"),
            ScfError::ShapeMismatch {
                source,
                field,
                expected,
                found,
            } => write!(
                f,
                "{source} {field} shape {found:?} does not match the live config {expected:?}"
            ),
            ScfError::Cancelled {
                iteration,
                checkpointed,
            } => write!(
                f,
                "SCF cancelled before iteration {iteration} ({})",
                if *checkpointed {
                    "drain checkpoint written"
                } else {
                    "no checkpoint"
                }
            ),
        }
    }
}

impl std::error::Error for ScfError {}

impl From<NumericalError> for ScfError {
    fn from(e: NumericalError) -> Self {
        ScfError::Numerical(e)
    }
}

/// Converged self-energies from a neighboring solve (e.g. the nearest
/// completed bias point of a sweep), used to seed the Born iteration
/// instead of `Σ = Π = 0`. A good seed is already near the fixed point,
/// so the continuation solve converges in a fraction of the cold
/// iterations; a bad seed at worst costs the iterations it takes the
/// caller to notice non-convergence and fall back to a cold solve —
/// never a wrong answer, because convergence is judged by the same
/// residual test either way.
#[derive(Clone, Debug)]
pub struct WarmStart {
    pub sigma: ElectronSelfEnergy,
    pub pi: PhononSelfEnergy,
}

/// Optional behaviors of [`run_scf_with`], all off by default.
#[derive(Default)]
pub struct ScfOptions<'a> {
    /// Write a [`ScfCheckpoint`] every `ckpt.every` iterations, and a
    /// drain checkpoint on cancellation (even when `every` is 0 — a
    /// drain-only configuration).
    pub ckpt: Option<&'a CheckpointConfig>,
    /// Continue from a previously saved checkpoint instead of `Σ = Π = 0`.
    pub resume: Option<ScfCheckpoint>,
    /// Seed the Born iteration with converged self-energies from a
    /// neighboring solve. Ignored when `resume` is given (a checkpoint
    /// carries strictly more state).
    pub warm: Option<WarmStart>,
    /// Cooperative cancellation, observed at every iteration boundary.
    pub cancel: Option<CancelToken>,
}

/// Refuse stale tensors whose shape disagrees with the live config —
/// checked before any cloning or allocation so a mismatched checkpoint
/// costs nothing and cannot panic the solve.
fn expect_shape(
    source: &'static str,
    field: &'static str,
    expected: &[usize],
    t: &Tensor,
) -> Result<(), ScfError> {
    if t.shape() != expected {
        return Err(ScfError::ShapeMismatch {
            source,
            field,
            expected: expected.to_vec(),
            found: t.shape().to_vec(),
        });
    }
    Ok(())
}

/// Run the GF ↔ SSE loop to convergence.
pub fn run_scf(sim: &Simulation, cfg: &ScfConfig) -> Result<ScfResult, NumericalError> {
    run_scf_with(sim, cfg, ScfOptions::default()).map_err(|e| match e {
        ScfError::Numerical(err) => err,
        // No resume/warm/cancel options were passed, so neither
        // structured variant can occur.
        other => unreachable!("SCF error without options: {other}"),
    })
}

/// [`run_scf`] with optional checkpointing (write a [`ScfCheckpoint`]
/// every `ckpt.every` iterations) and optional resume (continue from a
/// previously saved checkpoint instead of `Σ = Π = 0`).
///
/// Resuming restores the mixed self-energies, the previous `G<` iterate,
/// both histories and the adaptive-mixing state, so a killed-then-resumed
/// run walks the same residual trajectory as an uninterrupted one.
/// `ScfResult::iterations` counts only the iterations executed by *this*
/// call; `residuals`/`current_history` cover the whole run.
pub fn run_scf_resumable(
    sim: &Simulation,
    cfg: &ScfConfig,
    ckpt: Option<&CheckpointConfig>,
    resume: Option<ScfCheckpoint>,
) -> Result<ScfResult, ScfError> {
    run_scf_with(
        sim,
        cfg,
        ScfOptions {
            ckpt,
            resume,
            ..Default::default()
        },
    )
}

/// The full-control SCF entry point: [`run_scf`] plus checkpoint/resume,
/// warm-start seeding and cooperative cancellation (see [`ScfOptions`]).
/// Resumed checkpoints and warm-start seeds are shape-checked against the
/// live config before any tensor is cloned; a mismatch returns
/// [`ScfError::ShapeMismatch`] instead of panicking downstream.
pub fn run_scf_with(
    sim: &Simulation,
    cfg: &ScfConfig,
    opts: ScfOptions<'_>,
) -> Result<ScfResult, ScfError> {
    let _scf_span = qt_telemetry::Span::enter_global("scf");
    let p = &sim.p;
    let eshape = [p.nkz, p.ne, p.na, p.norb, p.norb];
    let pshape = [
        p.nqz,
        p.nw,
        p.na,
        p.nb + 1,
        crate::params::N3D,
        crate::params::N3D,
    ];
    let ckpt = opts.ckpt;
    let mut sigma = ElectronSelfEnergy::zeros(p);
    let mut pi = PhononSelfEnergy::zeros(p);
    let mut residuals = Vec::new();
    let mut current_history = Vec::new();
    let mut trajectory = Vec::new();
    let mut prev_gl: Option<Tensor> = None;
    let mut mixer = MixingController::new(cfg.mixing, cfg.adaptive_mixing);
    let mut start = 0;
    if let Some(ck) = opts.resume {
        expect_shape("checkpoint", "sigma.lesser", &eshape, &ck.sigma.lesser)?;
        expect_shape("checkpoint", "sigma.greater", &eshape, &ck.sigma.greater)?;
        expect_shape("checkpoint", "pi.lesser", &pshape, &ck.pi.lesser)?;
        expect_shape("checkpoint", "pi.greater", &pshape, &ck.pi.greater)?;
        if let Some(gl) = &ck.prev_gl {
            expect_shape("checkpoint", "prev_gl", &eshape, gl)?;
        }
        sigma = ck.sigma.clone();
        pi = ck.pi.clone();
        residuals = ck.residuals.clone();
        current_history = ck.current_history.clone();
        prev_gl = ck.prev_gl.clone();
        mixer = MixingController::restore(cfg.mixing, cfg.adaptive_mixing, &ck);
        // Always run at least one iteration so the result carries GF
        // tensors, even when the checkpoint already reached max_iterations.
        start = ck.iteration.min(cfg.max_iterations.saturating_sub(1));
    } else if let Some(w) = opts.warm {
        expect_shape("warm-start", "sigma.lesser", &eshape, &w.sigma.lesser)?;
        expect_shape("warm-start", "sigma.greater", &eshape, &w.sigma.greater)?;
        expect_shape("warm-start", "pi.lesser", &pshape, &w.pi.lesser)?;
        expect_shape("warm-start", "pi.greater", &pshape, &w.pi.greater)?;
        // Seed only the self-energies: `prev_gl` stays `None`, so the
        // first iteration has no residual and the convergence test runs
        // on genuinely recomputed Green's functions — a warm start can
        // save iterations but never fake convergence.
        sigma = w.sigma;
        pi = w.pi;
    }
    let mut converged = false;
    let mut electron = None;
    let mut phonon = None;
    let mut iterations = 0;
    for iter in start..cfg.max_iterations {
        if let Some(tok) = &opts.cancel {
            if tok.is_cancelled() {
                // Drain semantics: write a resumable snapshot even when
                // `every` is 0 (drain-only checkpointing), so an
                // in-flight solve survives a service shutdown.
                let checkpointed = match ckpt {
                    Some(c) => {
                        let snapshot = ScfCheckpoint {
                            iteration: iter,
                            mixing_current: mixer.current,
                            prev_residual: mixer.prev_residual(),
                            decrease_streak: mixer.streak(),
                            residuals: residuals.clone(),
                            current_history: current_history.clone(),
                            sigma: sigma.clone(),
                            pi: pi.clone(),
                            prev_gl: prev_gl.clone(),
                        };
                        match snapshot.save(&c.path) {
                            Ok(()) => true,
                            Err(err) => {
                                eprintln!(
                                    "warning: drain checkpoint write to {:?} failed: {err}",
                                    c.path
                                );
                                false
                            }
                        }
                    }
                    None => false,
                };
                qt_telemetry::journal::set_iteration(-1);
                qt_telemetry::series::set_series_iteration(-1);
                return Err(ScfError::Cancelled {
                    iteration: iter,
                    checkpointed,
                });
            }
        }
        let _iter_span = qt_telemetry::Span::enter_global("scf_iter");
        // Iteration attribution for journal events and series samples
        // emitted anywhere inside this iteration (including worker
        // threads — the SCF loop itself is sequential).
        qt_telemetry::journal::set_iteration(iter as i64);
        qt_telemetry::series::set_series_iteration(iter as i64);
        let iter_t0 = std::time::Instant::now();
        let alloc0 = qt_telemetry::counters::total_alloc_bytes();
        let fresh0 = qt_telemetry::counters::total_ws_fresh();
        let miss0 = qt_telemetry::counters::total_boundary_misses();
        let quar0 = qt_telemetry::counters::total_quarantined_points();
        let iter_counters = |t0: std::time::Instant| {
            (
                t0.elapsed().as_secs_f64(),
                qt_telemetry::counters::total_alloc_bytes() - alloc0,
                qt_telemetry::counters::total_ws_fresh() - fresh0,
                qt_telemetry::counters::total_boundary_misses() - miss0,
                qt_telemetry::counters::total_quarantined_points() - quar0,
            )
        };
        iterations += 1;
        // GF phase (both carriers), replaying memoized contact
        // self-energies from iteration 2 on.
        let egf = gf::electron_gf_phase_cached(
            &sim.dev,
            &sim.em,
            p,
            &sim.grids,
            &sigma,
            &cfg.gf,
            Some(&sim.boundary),
            Some(&sim.kernel_selector_e),
        )?;
        let pgf = gf::phonon_gf_phase_cached(
            &sim.dev,
            &sim.pm,
            p,
            &sim.grids,
            &pi,
            &cfg.gf,
            Some(&sim.boundary),
            Some(&sim.kernel_selector_ph),
        )?;
        current_history.push(egf.current);
        // Convergence on G<.
        let res = match &prev_gl {
            None => f64::INFINITY,
            Some(prev) => {
                let norm = egf.g_lesser.norm().max(1e-300);
                let mut diff2 = 0.0;
                for (a, b) in egf.g_lesser.as_slice().iter().zip(prev.as_slice()) {
                    diff2 += (*a - *b).norm_sqr();
                }
                diff2.sqrt() / norm
            }
        };
        if res.is_finite() {
            residuals.push(res);
        }
        prev_gl = Some(egf.g_lesser.clone());
        // Divergence detection: adjust the effective mixing factor *before*
        // this iteration's mixing step, so a growing residual is damped
        // immediately rather than one iteration late.
        mixer.observe(res);
        if res < cfg.tolerance {
            converged = true;
            let (wall, alloc_bytes, ws_fresh, boundary_misses, quarantined) =
                iter_counters(iter_t0);
            trajectory.push(IterationRecord {
                iteration: iter,
                residual: res.is_finite().then_some(res),
                mixing: mixer.current,
                wall_seconds: wall,
                current: egf.current,
                alloc_bytes,
                ws_fresh,
                boundary_misses,
                quarantined,
            });
            qt_telemetry::journal::emit(qt_telemetry::EventKind::IterationDone {
                residual: res,
                wall_secs: wall,
            });
            qt_telemetry::series::sample_now();
            electron = Some(egf);
            phonon = Some(pgf);
            break;
        }
        // SSE phase.
        let (dl, dg) = sse::preprocess_d(&sim.dev, p, &pgf);
        let inputs = SseInputs {
            dev: &sim.dev,
            p,
            grids: &sim.grids,
            dh: &sim.dh,
            g_lesser: &egf.g_lesser,
            g_greater: &egf.g_greater,
            d_lesser_pre: &dl,
            d_greater_pre: &dg,
        };
        let mut new_sigma = sse::sigma(&inputs, cfg.variant);
        sse::stabilize_sigma(&mut new_sigma, p);
        let mut new_pi = sse::pi(&inputs, cfg.variant);
        sse::stabilize_pi(&mut new_pi, p);
        mix_tensor(&mut sigma.lesser, &new_sigma.lesser, mixer.current);
        mix_tensor(&mut sigma.greater, &new_sigma.greater, mixer.current);
        mix_tensor(&mut pi.lesser, &new_pi.lesser, mixer.current);
        mix_tensor(&mut pi.greater, &new_pi.greater, mixer.current);
        let (wall, alloc_bytes, ws_fresh, boundary_misses, quarantined) = iter_counters(iter_t0);
        trajectory.push(IterationRecord {
            iteration: iter,
            residual: res.is_finite().then_some(res),
            mixing: mixer.current,
            wall_seconds: wall,
            current: egf.current,
            alloc_bytes,
            ws_fresh,
            boundary_misses,
            quarantined,
        });
        qt_telemetry::journal::emit(qt_telemetry::EventKind::IterationDone {
            residual: res,
            wall_secs: wall,
        });
        qt_telemetry::series::sample_now();
        electron = Some(egf);
        phonon = Some(pgf);
        if let Some(c) = ckpt {
            if c.every > 0 && (iter + 1 - start) % c.every == 0 {
                let snapshot = ScfCheckpoint {
                    iteration: iter + 1,
                    mixing_current: mixer.current,
                    prev_residual: mixer.prev_residual(),
                    decrease_streak: mixer.streak(),
                    residuals: residuals.clone(),
                    current_history: current_history.clone(),
                    sigma: sigma.clone(),
                    pi: pi.clone(),
                    prev_gl: prev_gl.clone(),
                };
                // A failed write must not kill a healthy SCF run; surface
                // it on stderr and keep iterating.
                if let Err(err) = snapshot.save(&c.path) {
                    eprintln!("warning: checkpoint write to {:?} failed: {err}", c.path);
                }
            }
        }
    }
    qt_telemetry::journal::set_iteration(-1);
    qt_telemetry::series::set_series_iteration(-1);
    Ok(ScfResult {
        converged,
        iterations,
        residuals,
        current_history,
        trajectory,
        electron: electron.expect("at least one iteration"),
        phonon: phonon.expect("at least one iteration"),
        sigma,
        pi,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> Simulation {
        let p = SimParams {
            nkz: 2,
            nqz: 2,
            ne: 10,
            nw: 2,
            na: 8,
            nb: 3,
            norb: 2,
            bnum: 4,
        };
        Simulation::new(p, -1.2, 1.2)
    }

    #[test]
    fn scf_converges_on_small_system() {
        let sim = sim();
        let cfg = ScfConfig {
            max_iterations: 25,
            tolerance: 1e-7,
            ..Default::default()
        };
        let out = run_scf(&sim, &cfg).unwrap();
        assert!(
            out.converged,
            "Born loop should converge; residuals: {:?}",
            out.residuals
        );
        // Residuals must be (eventually) decreasing.
        let n = out.residuals.len();
        assert!(n >= 2);
        assert!(out.residuals[n - 1] < out.residuals[0]);
    }

    #[test]
    fn scattering_modifies_current() {
        let sim = sim();
        let mut cfg = ScfConfig::default();
        cfg.gf.contacts.mu_left = 0.3;
        cfg.gf.contacts.mu_right = -0.3;
        cfg.max_iterations = 6;
        cfg.tolerance = 1e-12; // force full iterations
        let out = run_scf(&sim, &cfg).unwrap();
        // The ballistic (first-iteration) current differs from the
        // dissipative one.
        let first = out.current_history.first().unwrap();
        let last = out.current_history.last().unwrap();
        assert!(
            (first - last).abs() > 1e-12,
            "electron-phonon scattering must alter the current ({first} vs {last})"
        );
    }

    #[test]
    fn trajectory_records_every_iteration() {
        let sim = sim();
        let cfg = ScfConfig {
            max_iterations: 5,
            tolerance: 1e-12, // force full iterations
            ..Default::default()
        };
        let out = run_scf(&sim, &cfg).unwrap();
        assert_eq!(out.trajectory.len(), out.iterations);
        // First iteration has no previous iterate → no residual.
        assert!(out.trajectory[0].residual.is_none());
        for (i, rec) in out.trajectory.iter().enumerate() {
            assert_eq!(rec.iteration, i);
            assert!(rec.wall_seconds >= 0.0);
            // The adaptive controller may damp below the configured base
            // but never exceeds it.
            assert!(rec.mixing > 0.0 && rec.mixing <= cfg.mixing);
            assert_eq!(rec.current, out.current_history[i]);
        }
        // The trajectory's finite residuals are exactly `residuals`.
        let finite: Vec<f64> = out.trajectory.iter().filter_map(|r| r.residual).collect();
        assert_eq!(finite, out.residuals);
    }

    #[test]
    fn boundary_cache_populated_and_reused() {
        let sim = sim();
        let cfg = ScfConfig {
            max_iterations: 3,
            tolerance: 0.0, // force every iteration
            ..Default::default()
        };
        let n_points = (sim.p.nkz * sim.p.ne + sim.p.nqz * sim.p.nw) as u64;
        let hits0 = qt_telemetry::counters::total_boundary_hits();
        let out = run_scf(&sim, &cfg).unwrap();
        assert_eq!(out.iterations, 3);
        // Iterations 2 and 3 replay every contact self-energy from the
        // cache (the counter is global, so other tests can only add hits).
        assert!(
            qt_telemetry::counters::total_boundary_hits() - hits0 >= 2 * n_points,
            "warm iterations must hit the boundary cache"
        );
        // The cache is populated: replay must not recompute.
        sim.boundary
            .view()
            .electron(0, || panic!("contact Σ must be cached after SCF"))
            .unwrap();
        // Trajectory records the cache behaviour per iteration.
        assert!(out.trajectory[0].boundary_misses >= n_points);
    }

    #[test]
    fn adaptive_mixing_recovers_divergent_full_mixing() {
        // With the electron-phonon coupling boosted 12x the undamped Born
        // iteration (mixing = 1.0) oscillates around a residual of ~0.2 and
        // never converges; the adaptive controller must detect the growing
        // residual, back off, converge, and record the mixing trajectory.
        let boosted_sim = || {
            let mut s = sim();
            for z in s.dh.as_mut_slice() {
                *z *= qt_linalg::c64(12.0, 0.0);
            }
            s
        };
        let mut cfg = ScfConfig {
            max_iterations: 40,
            tolerance: 1e-4,
            mixing: 1.0,
            adaptive_mixing: false,
            ..Default::default()
        };
        cfg.gf.contacts.mu_left = 0.3;
        cfg.gf.contacts.mu_right = -0.3;
        let fixed_diverges = match run_scf(&boosted_sim(), &cfg) {
            Ok(r) => !r.converged,
            Err(_) => true,
        };
        assert!(
            fixed_diverges,
            "undamped Born iteration must diverge for this test to bite"
        );
        cfg.adaptive_mixing = true;
        let backoffs0 = qt_telemetry::counters::total_mixing_backoffs();
        let adaptive = run_scf(&boosted_sim(), &cfg).unwrap();
        assert!(
            adaptive.converged,
            "adaptive backoff must rescue mixing = 1.0; residuals: {:?}",
            adaptive.residuals
        );
        assert!(
            adaptive.trajectory.iter().any(|r| r.mixing < cfg.mixing),
            "trajectory must log the backed-off mixing factors"
        );
        assert!(qt_telemetry::counters::total_mixing_backoffs() > backoffs0);
    }

    #[test]
    fn checkpoint_resume_matches_uninterrupted() {
        use crate::checkpoint::{CheckpointConfig, ScfCheckpoint};
        let cfg = ScfConfig {
            max_iterations: 6,
            tolerance: 1e-12, // force full iterations in both runs
            ..Default::default()
        };
        let full = run_scf(&sim(), &cfg).unwrap();
        // "Killed" run: 3 iterations with a checkpoint after each.
        let dir = std::env::temp_dir().join("qt-scf-resume-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scf.ckpt");
        let ck_cfg = CheckpointConfig {
            path: path.clone(),
            every: 1,
        };
        let mut cfg_short = cfg;
        cfg_short.max_iterations = 3;
        run_scf_resumable(&sim(), &cfg_short, Some(&ck_cfg), None).unwrap();
        let ck = ScfCheckpoint::load(&path).unwrap();
        assert_eq!(ck.iteration, 3);
        std::fs::remove_file(&path).unwrap();
        // Resume in a fresh process-equivalent (new Simulation, cold
        // boundary cache) and finish the remaining iterations.
        let resumed = run_scf_resumable(&sim(), &cfg, None, Some(ck)).unwrap();
        assert_eq!(resumed.residuals.len(), full.residuals.len());
        for (i, (a, b)) in resumed.residuals.iter().zip(&full.residuals).enumerate() {
            assert!(
                (a - b).abs() <= 1e-12 * b.abs().max(1e-30),
                "residual {i} after resume: {a} vs uninterrupted {b}"
            );
        }
        let (ra, rb) = (
            resumed.current_history.last().unwrap(),
            full.current_history.last().unwrap(),
        );
        assert!(
            (ra - rb).abs() <= 1e-12 * rb.abs().max(1e-30),
            "final current after resume: {ra} vs {rb}"
        );
    }

    #[test]
    fn mismatched_checkpoint_shape_is_a_typed_error() {
        // A checkpoint saved for a different device must be refused with
        // ShapeMismatch before any tensor work — not panic mid-loop.
        let cfg = ScfConfig {
            max_iterations: 2,
            tolerance: 1e-12,
            ..Default::default()
        };
        let small = sim();
        let dir = std::env::temp_dir().join("qt-scf-shape-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scf.ckpt");
        let ck_cfg = CheckpointConfig {
            path: path.clone(),
            every: 1,
        };
        run_scf_resumable(&small, &cfg, Some(&ck_cfg), None).unwrap();
        let ck = ScfCheckpoint::load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        // A live config with a different atom count.
        let other = Simulation::new(
            SimParams {
                nkz: 2,
                nqz: 2,
                ne: 10,
                nw: 2,
                na: 12,
                nb: 3,
                norb: 2,
                bnum: 4,
            },
            -1.2,
            1.2,
        );
        match run_scf_resumable(&other, &cfg, None, Some(ck)) {
            Err(ScfError::ShapeMismatch {
                source,
                field,
                expected,
                found,
            }) => {
                assert_eq!(source, "checkpoint");
                assert_eq!(field, "sigma.lesser");
                assert_eq!(expected, vec![2, 10, 12, 2, 2]);
                assert_eq!(found, vec![2, 10, 8, 2, 2]);
            }
            other => panic!("expected ShapeMismatch, got {:?}", other.map(|_| "ok")),
        }
    }

    #[test]
    fn cancelled_solve_stops_at_the_iteration_boundary() {
        let sim = sim();
        let cfg = ScfConfig {
            max_iterations: 10,
            tolerance: 1e-12,
            ..Default::default()
        };
        // Pre-cancelled token: the loop must not run a single iteration.
        let tok = CancelToken::new();
        tok.cancel();
        let out = run_scf_with(
            &sim,
            &cfg,
            ScfOptions {
                cancel: Some(tok),
                ..Default::default()
            },
        );
        match out {
            Err(ScfError::Cancelled {
                iteration,
                checkpointed,
            }) => {
                assert_eq!(iteration, 0);
                assert!(!checkpointed, "no checkpoint config was given");
            }
            other => panic!("expected Cancelled, got {:?}", other.map(|_| "ok")),
        }
        // With a drain-only checkpoint config (every = 0) the cancelled
        // solve leaves a resumable snapshot behind.
        let dir = std::env::temp_dir().join("qt-scf-cancel-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("drain.ckpt");
        let ck_cfg = CheckpointConfig {
            path: path.clone(),
            every: 0,
        };
        let tok = CancelToken::new();
        tok.cancel();
        let out = run_scf_with(
            &sim,
            &cfg,
            ScfOptions {
                ckpt: Some(&ck_cfg),
                cancel: Some(tok),
                ..Default::default()
            },
        );
        match out {
            Err(ScfError::Cancelled { checkpointed, .. }) => {
                assert!(checkpointed);
            }
            other => panic!("expected Cancelled, got {:?}", other.map(|_| "ok")),
        }
        let ck = ScfCheckpoint::load(&path).unwrap();
        assert_eq!(ck.iteration, 0);
        std::fs::remove_file(&path).unwrap();
        // An uncancelled token changes nothing: the guarded run matches
        // the plain run bitwise.
        let plain = run_scf(&sim, &cfg).unwrap();
        let guarded = run_scf_with(
            &sim,
            &cfg,
            ScfOptions {
                cancel: Some(CancelToken::new()),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(guarded.residuals, plain.residuals);
        assert_eq!(guarded.current_history, plain.current_history);
    }

    #[test]
    fn warm_start_converges_faster_to_the_same_answer() {
        let cfg = ScfConfig {
            max_iterations: 40,
            tolerance: 1e-7,
            ..Default::default()
        };
        let mut cfg_a = cfg;
        cfg_a.gf.contacts.mu_left = 0.20;
        cfg_a.gf.contacts.mu_right = -0.20;
        let cold_a = run_scf(&sim(), &cfg_a).unwrap();
        assert!(cold_a.converged);
        // Continuation: a neighboring bias point seeded from A's
        // converged self-energies.
        let mut cfg_b = cfg;
        cfg_b.gf.contacts.mu_left = 0.22;
        cfg_b.gf.contacts.mu_right = -0.22;
        let cold_b = run_scf(&sim(), &cfg_b).unwrap();
        assert!(cold_b.converged);
        let warm_b = run_scf_with(
            &sim(),
            &cfg_b,
            ScfOptions {
                warm: Some(WarmStart {
                    sigma: cold_a.sigma.clone(),
                    pi: cold_a.pi.clone(),
                }),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(warm_b.converged);
        assert!(
            warm_b.iterations < cold_b.iterations,
            "warm start must save iterations: warm {} vs cold {}",
            warm_b.iterations,
            cold_b.iterations
        );
        // Same fixed point: the warm and cold solves agree to the
        // convergence tolerance (both stopped at residual < 1e-8).
        let last_cold = cold_b.current_history.last().unwrap();
        let last_warm = warm_b.current_history.last().unwrap();
        assert!(
            (last_cold - last_warm).abs() <= 1e-6 * last_cold.abs().max(1e-12),
            "warm-started current {last_warm} vs cold {last_cold}"
        );
        // A wrong-shape warm seed is refused with a typed error.
        let bad = run_scf_with(
            &sim(),
            &cfg_b,
            ScfOptions {
                warm: Some(WarmStart {
                    sigma: ElectronSelfEnergy::zeros(&SimParams {
                        nkz: 2,
                        nqz: 2,
                        ne: 10,
                        nw: 2,
                        na: 12,
                        nb: 3,
                        norb: 2,
                        bnum: 4,
                    }),
                    pi: cold_a.pi.clone(),
                }),
                ..Default::default()
            },
        );
        assert!(matches!(
            bad,
            Err(ScfError::ShapeMismatch {
                source: "warm-start",
                ..
            })
        ));
    }

    #[test]
    fn vacancy_resonance_quarantines_honestly() {
        // A vacancy whose dangling level sits exactly on a grid energy is
        // a genuinely singular RGF block at zero device broadening — the
        // real numerical pathology the quarantine machinery exists for.
        // The vacancy has no neighbor slots, so the SSE never dresses it
        // and the singularity (and its quarantine) persists across Born
        // iterations at exactly the resonant (kz, E) points.
        let p = SimParams {
            nkz: 2,
            nqz: 2,
            ne: 9, // de = 0.25 exactly; energies[4] == 0.0 exactly
            nw: 2,
            na: 8,
            nb: 3,
            norb: 2,
            bnum: 4,
        };
        let grids = Grids::try_new(&p, -1.0, 1.0).unwrap();
        let level = grids.energies[4];
        assert_eq!(level, 0.0);
        let disorder = crate::hamiltonian::Disorder {
            seed: 7,
            vacancy_fraction: 0.3,
            onsite_amplitude: 0.05,
            vacancy_level: level,
        };
        let n_vac = disorder.vacancies(p.na).len();
        assert!(n_vac >= 1, "seed 7 must produce at least one vacancy");
        let sim = Simulation::disordered(p, -1.0, 1.0, disorder).unwrap();
        let cfg = ScfConfig {
            max_iterations: 4,
            ..Default::default()
        };
        let out = run_scf(&sim, &cfg).unwrap();
        // Honest coverage: exactly the resonant energy column (every kz)
        // is quarantined, with a SingularBlock root cause.
        assert_eq!(out.electron.coverage.total_points, p.nkz * p.ne);
        assert_eq!(
            out.electron.coverage.quarantined.len(),
            p.nkz,
            "one quarantined point per kz at the resonant energy"
        );
        for q in &out.electron.coverage.quarantined {
            assert_eq!(
                q.grid_index % p.ne,
                4,
                "quarantine must sit on the resonance"
            );
            assert!(matches!(
                q.error,
                NumericalError::SingularBlock { phase: "rgf", .. }
            ));
        }
        // The rest of the spectrum is still covered and finite.
        assert!(!out.electron.coverage.is_full());
        assert!(out.electron.coverage.bad_fraction() < 0.25);
        assert!(out.electron.current.is_finite());
    }

    #[test]
    fn disordered_construction_is_reproducible() {
        let p = SimParams::test_small();
        let d = crate::hamiltonian::Disorder {
            seed: 99,
            vacancy_fraction: 0.2,
            onsite_amplitude: 0.08,
            vacancy_level: 0.5,
        };
        let a = Simulation::disordered(p, -1.2, 1.2, d).unwrap();
        let b = Simulation::disordered(p, -1.2, 1.2, d).unwrap();
        let ha = a.em.hamiltonian(&a.dev, 0.3);
        let hb = b.em.hamiltonian(&b.dev, 0.3);
        assert_eq!(ha.to_dense().max_abs_diff(&hb.to_dense()), 0.0);
        assert_eq!(a.dev.neighbors, b.dev.neighbors);
    }

    #[test]
    fn from_parts_rejects_inconsistent_assemblies() {
        let p = SimParams::test_small();
        let dev = Device::new(&p);
        let pm = PhononModel::default();
        // norb mismatch between model and params.
        let mut em = ElectronModel::for_params(&p);
        em.norb = p.norb + 1;
        assert!(Simulation::from_parts(p, dev.clone(), em, pm.clone(), -1.0, 1.0).is_err());
        // Device geometry mismatch.
        let mut p2 = p;
        p2.na = 32;
        p2.bnum = 8;
        let em2 = ElectronModel::for_params(&p2);
        assert!(Simulation::from_parts(p2, dev, em2, pm, -1.0, 1.0).is_err());
        // Bad window through the fallible constructor.
        assert!(Simulation::try_new(p, 1.0, -1.0).is_err());
        let mut bad = p;
        bad.bnum = 3;
        assert!(Simulation::try_new(bad, -1.0, 1.0).is_err());
    }

    #[test]
    fn variants_converge_to_same_answer() {
        let sim = sim();
        let mut cfg = ScfConfig {
            max_iterations: 8,
            tolerance: 1e-9,
            ..Default::default()
        };
        cfg.variant = SseVariant::Omen;
        let omen = run_scf(&sim, &cfg).unwrap();
        cfg.variant = SseVariant::Dace;
        let dace = run_scf(&sim, &cfg).unwrap();
        let rel = omen.electron.g_lesser.max_abs_diff(&dace.electron.g_lesser)
            / omen.electron.g_lesser.norm().max(1e-30);
        assert!(
            rel < 1e-10,
            "SCF fixed point must not depend on variant: {rel}"
        );
    }
}
