//! Distributed GF+SSE iteration driver.
//!
//! One full iteration of the Fig. 2 loop executed on the thread world:
//! every rank *computes* the Green's functions for its own energy chunk
//! (momentum×energy parallelism of the GF phase), the DaCe all-to-all
//! redistributes them into the energy×atom tiling, each rank runs its local
//! SSE, and the results gather on root. Unlike [`crate::schemes`] (which
//! reads pre-computed tensors to isolate the communication pattern), this
//! driver owns the whole pipeline — the distributed analogue of
//! `qt_core::scf`'s single iteration.

use crate::comm::{run_world, LivenessConfig};
use crate::decomp::{ElasticTiling, OmenDecomp};
use crate::schemes::{
    dace_scheme, elastic_sse_exchange, CommStats, ElasticExchange, SseDistContext,
};
use qt_core::device::Device;
use qt_core::gf::{self, ElectronSelfEnergy, GfConfig, PhononSelfEnergy};
use qt_core::grids::Grids;
use qt_core::hamiltonian::{ElectronModel, PhononModel};
use qt_core::health::{CoverageReport, NumericalError, QuarantinedPoint};
use qt_core::params::SimParams;
use qt_core::sse;
use qt_linalg::Tensor;
use std::collections::BTreeSet;

/// Result of one distributed iteration.
pub struct DistIterationResult {
    pub sigma: ElectronSelfEnergy,
    pub pi: PhononSelfEnergy,
    /// Electrical current accumulated across ranks.
    pub current: f64,
    /// Total bytes moved in the SSE exchange.
    pub sse_bytes: u64,
    /// Full per-rank communication statistics of the SSE exchange.
    pub comm: CommStats,
}

/// Run one GF+SSE iteration distributed over `te × ta` ranks.
///
/// The GF phase is computed rank-locally: rank `r` solves RGF for its
/// energy chunk (all kz), exactly the paper's momentum+energy
/// decomposition. The SSE phase uses the communication-avoiding scheme.
#[allow(clippy::too_many_arguments)]
pub fn distributed_iteration(
    p: &SimParams,
    dev: &Device,
    em: &ElectronModel,
    pm: &PhononModel,
    grids: &Grids,
    cfg: &GfConfig,
    te: usize,
    ta: usize,
) -> Result<DistIterationResult, NumericalError> {
    distributed_iteration_impl(p, dev, em, pm, grids, cfg, te, ta, |ctx| {
        dace_scheme(ctx, te, ta)
    })
}

/// [`distributed_iteration`] with the SSE exchange running under a
/// deterministic fault plan (the GF phase communicates nothing, so it is
/// unaffected). With `guarantee_delivery` the result matches the
/// fault-free run bitwise; only traffic and timing differ.
#[cfg(feature = "fault-inject")]
#[allow(clippy::too_many_arguments)]
pub fn distributed_iteration_with_faults(
    p: &SimParams,
    dev: &Device,
    em: &ElectronModel,
    pm: &PhononModel,
    grids: &Grids,
    cfg: &GfConfig,
    te: usize,
    ta: usize,
    plan: crate::fault::FaultPlan,
) -> Result<DistIterationResult, NumericalError> {
    distributed_iteration_impl(p, dev, em, pm, grids, cfg, te, ta, move |ctx| {
        crate::schemes::dace_scheme_with_faults(ctx, te, ta, plan)
    })
}

/// Everything the GF phase produces: the inputs of the SSE exchange.
struct GfPhase {
    dh: Tensor,
    g_lesser: Tensor,
    g_greater: Tensor,
    d_lesser_pre: Tensor,
    d_greater_pre: Tensor,
    current: f64,
}

impl GfPhase {
    fn ctx<'a>(
        &'a self,
        p: &'a SimParams,
        dev: &'a Device,
        grids: &'a Grids,
    ) -> SseDistContext<'a> {
        SseDistContext {
            p,
            dev,
            grids,
            dh: &self.dh,
            g_lesser: &self.g_lesser,
            g_greater: &self.g_greater,
            d_lesser_pre: &self.d_lesser_pre,
            d_greater_pre: &self.d_greater_pre,
        }
    }
}

/// The GF phase: each rank computes its energy chunk. (Thread-world ranks
/// write disjoint slices; results are assembled into the global tensors
/// that seed the SSE exchange, mirroring how each MPI rank would hold its
/// slice in place.)
fn gf_phase(
    p: &SimParams,
    dev: &Device,
    em: &ElectronModel,
    pm: &PhononModel,
    grids: &Grids,
    cfg: &GfConfig,
    procs: usize,
) -> Result<GfPhase, NumericalError> {
    let dh = em.dh_tensor(dev);
    let dec = OmenDecomp::new(p, procs);
    let chunks: Vec<Result<(usize, gf::ElectronGf), NumericalError>> = run_world(procs, |comm| {
        let rank = comm.rank();
        let my_e = dec.energy.range(rank);
        // Solve only this rank's energies: narrow the grid.
        let mut local = *p;
        local.ne = my_e.len();
        let local_grids = Grids {
            energies: grids.energies[my_e.clone()].to_vec(),
            omegas: grids.omegas.clone(),
            kz: grids.kz.clone(),
            qz: grids.qz.clone(),
            de: grids.de,
        };
        let zeros = ElectronSelfEnergy::zeros(&local);
        gf::electron_gf_phase(dev, em, &local, &local_grids, &zeros, cfg).map(|g| (rank, g))
    });
    let mut g_lesser = Tensor::zeros(&[p.nkz, p.ne, p.na, p.norb, p.norb]);
    let mut g_greater = Tensor::zeros(&[p.nkz, p.ne, p.na, p.norb, p.norb]);
    let mut current = 0.0;
    for c in chunks {
        let (rank, egf) = c?;
        let my_e = dec.energy.range(rank);
        for k in 0..p.nkz {
            for (el, e) in my_e.clone().enumerate() {
                for a in 0..p.na {
                    g_lesser
                        .inner_mut(&[k, e, a])
                        .copy_from_slice(egf.g_lesser.inner(&[k, el, a]));
                    g_greater
                        .inner_mut(&[k, e, a])
                        .copy_from_slice(egf.g_greater.inner(&[k, el, a]));
                }
            }
        }
        current += egf.current;
    }
    // Phonon GF phase (serial here; its grid is small and its
    // parallelization is identical in kind).
    let pgf = gf::phonon_gf_phase(dev, pm, p, grids, &PhononSelfEnergy::zeros(p), cfg)?;
    let (dl, dg) = sse::preprocess_d(dev, p, &pgf);
    Ok(GfPhase {
        dh,
        g_lesser,
        g_greater,
        d_lesser_pre: dl,
        d_greater_pre: dg,
        current,
    })
}

#[allow(clippy::too_many_arguments)]
fn distributed_iteration_impl(
    p: &SimParams,
    dev: &Device,
    em: &ElectronModel,
    pm: &PhononModel,
    grids: &Grids,
    cfg: &GfConfig,
    te: usize,
    ta: usize,
    sse_exchange: impl FnOnce(&SseDistContext<'_>) -> (ElectronSelfEnergy, PhononSelfEnergy, CommStats),
) -> Result<DistIterationResult, NumericalError> {
    let _span = qt_telemetry::Span::enter_global("dist/iteration");
    let gfp = gf_phase(p, dev, em, pm, grids, cfg, te * ta)?;
    // ---- SSE phase: communication-avoiding exchange + local compute. ----
    let (sigma, pi, stats) = sse_exchange(&gfp.ctx(p, dev, grids));
    Ok(DistIterationResult {
        sigma,
        pi,
        current: gfp.current,
        sse_bytes: stats.world_bytes,
        comm: stats,
    })
}

/// Tuning for the elastic supervision loop.
#[derive(Clone, Debug)]
pub struct ElasticPolicy {
    /// Failure-detector configuration for the survivor worlds.
    pub live: LivenessConfig,
    /// Ceiling on [`CoverageReport::bad_fraction`]: the fraction of
    /// electron grid points whose backing distributed state may ride
    /// recovery. A death that would push past it is *not* recovered — its
    /// units are abandoned and the iteration completes degraded, with the
    /// abandoned tiles zero-filled.
    pub max_bad_fraction: f64,
    /// Hard bound on detect→retile→retry rounds (hang-proofing; a world
    /// can die at most once per original rank, so the default is ample).
    pub max_retiles: usize,
}

impl Default for ElasticPolicy {
    fn default() -> Self {
        ElasticPolicy {
            live: LivenessConfig::default(),
            max_bad_fraction: qt_core::health::HealthPolicy::default().max_bad_fraction,
            max_retiles: 64,
        }
    }
}

/// Result of one elastic distributed iteration.
pub struct ElasticIterationResult {
    pub result: DistIterationResult,
    /// Electron-grid coverage. Quarantined entries mark the `(kz, E)`
    /// points whose backing GF-chunk state sat on a rank that died —
    /// whether the point then rode recovery (recomputed on a survivor,
    /// bitwise exact) or was zero-filled in a degraded completion.
    pub coverage: CoverageReport,
    /// True when the run completed with abandoned tiles (zero-filled
    /// Σ≷/Π≷ slices) instead of full recovery.
    pub degraded: bool,
    /// Original ids of the ranks that died, in detection order.
    pub deaths: Vec<usize>,
    /// Number of detect→retile→retry rounds the supervisor ran.
    pub retiles: usize,
    /// Work units migrated onto survivors across all retiles.
    pub migrated_units: usize,
}

/// Run one GF+SSE iteration with elastic rank-failure recovery.
///
/// The GF phase runs on the full original world (it communicates nothing).
/// The SSE exchange runs under supervision: each attempt executes the
/// elastic CA scheme over the current survivor set; a detected death
/// shrinks the tiling (only the dead rank's units migrate) and the
/// exchange retries on a fresh survivor world. A successful recovery is
/// *bitwise identical* to the fault-free run. When a death would push the
/// quarantined fraction past [`ElasticPolicy::max_bad_fraction`], its
/// units are abandoned instead and the iteration completes in degraded
/// mode with those tiles zero-filled and reported in the coverage.
#[allow(clippy::too_many_arguments)]
pub fn distributed_iteration_elastic(
    p: &SimParams,
    dev: &Device,
    em: &ElectronModel,
    pm: &PhononModel,
    grids: &Grids,
    cfg: &GfConfig,
    te: usize,
    ta: usize,
    policy: &ElasticPolicy,
) -> Result<ElasticIterationResult, NumericalError> {
    let mut tiling = ElasticTiling::new(p, te, ta);
    distributed_iteration_elastic_impl(p, dev, em, pm, grids, cfg, &mut tiling, policy, |ctx, t| {
        elastic_sse_exchange(ctx, t, &policy.live)
    })
}

/// One elastic GF+SSE iteration on a *caller-provided* tiling — the entry
/// point of the adaptive load-balancing loop. The tiling may be uniform
/// ([`ElasticTiling::uniform`]), weighted ([`ElasticTiling::weighted`]),
/// or mid-recovery; deaths shrink it in place so the caller's tiling
/// stays current across iterations. With `steal` on, idle ranks pull
/// unstarted units from stragglers inside the iteration; observables are
/// bitwise identical either way. Per-rank busy times and per-unit costs
/// come back in `result.comm.balance`.
#[allow(clippy::too_many_arguments)]
pub fn distributed_iteration_tiled(
    p: &SimParams,
    dev: &Device,
    em: &ElectronModel,
    pm: &PhononModel,
    grids: &Grids,
    cfg: &GfConfig,
    tiling: &mut ElasticTiling,
    policy: &ElasticPolicy,
    steal: bool,
) -> Result<ElasticIterationResult, NumericalError> {
    distributed_iteration_elastic_impl(p, dev, em, pm, grids, cfg, tiling, policy, |ctx, t| {
        crate::schemes::elastic_sse_exchange_opts(ctx, t, &policy.live, steal)
    })
}

/// [`distributed_iteration_tiled`] with the SSE exchange running under a
/// deterministic fault plan — the harness for proving the steal protocol
/// composes with rank death: a victim or thief killed mid-protocol
/// surfaces as a typed death and the iteration rides the elastic
/// re-tiling path to completion.
#[cfg(feature = "fault-inject")]
#[allow(clippy::too_many_arguments)]
pub fn distributed_iteration_tiled_with_faults(
    p: &SimParams,
    dev: &Device,
    em: &ElectronModel,
    pm: &PhononModel,
    grids: &Grids,
    cfg: &GfConfig,
    tiling: &mut ElasticTiling,
    policy: &ElasticPolicy,
    steal: bool,
    plan: crate::fault::FaultPlan,
) -> Result<ElasticIterationResult, NumericalError> {
    distributed_iteration_elastic_impl(p, dev, em, pm, grids, cfg, tiling, policy, |ctx, t| {
        crate::schemes::elastic_sse_exchange_with_faults_opts(
            ctx,
            t,
            &policy.live,
            plan.clone(),
            steal,
        )
    })
}

/// Re-partition `tiling` from measured per-unit costs when the measured
/// busy-time imbalance exceeds `threshold`. Uses the bitwise-safe
/// migration path ([`ElasticTiling::rebalance`]): only the unit → rank
/// map moves, never the tile geometry, so the next iteration's
/// observables are unchanged. Returns the units that moved (empty when
/// balanced enough) and feeds the rebalance telemetry counters.
pub fn maybe_rebalance(
    tiling: &mut ElasticTiling,
    balance: &crate::schemes::BalanceStats,
    threshold: f64,
) -> Vec<usize> {
    if balance.imbalance_ratio() <= threshold {
        return Vec::new();
    }
    let moved = tiling.rebalance(&balance.unit_secs);
    if !moved.is_empty() {
        qt_telemetry::counters::add_rebalance_event();
        qt_telemetry::counters::add_rebalance_moved_units(moved.len() as u64);
    }
    moved
}

/// [`distributed_iteration_elastic`] with the SSE exchange running under a
/// deterministic fault plan, including `kill_at` schedules. Kills are
/// matched by original identity, so a rank dies at most once across the
/// retries and the recovery sequence replays identically on every run.
#[cfg(feature = "fault-inject")]
#[allow(clippy::too_many_arguments)]
pub fn distributed_iteration_elastic_with_faults(
    p: &SimParams,
    dev: &Device,
    em: &ElectronModel,
    pm: &PhononModel,
    grids: &Grids,
    cfg: &GfConfig,
    te: usize,
    ta: usize,
    policy: &ElasticPolicy,
    plan: crate::fault::FaultPlan,
) -> Result<ElasticIterationResult, NumericalError> {
    let mut tiling = ElasticTiling::new(p, te, ta);
    distributed_iteration_elastic_impl(p, dev, em, pm, grids, cfg, &mut tiling, policy, |ctx, t| {
        crate::schemes::elastic_sse_exchange_with_faults(ctx, t, &policy.live, plan.clone())
    })
}

#[allow(clippy::too_many_arguments)]
fn distributed_iteration_elastic_impl(
    p: &SimParams,
    dev: &Device,
    em: &ElectronModel,
    pm: &PhononModel,
    grids: &Grids,
    cfg: &GfConfig,
    tiling: &mut ElasticTiling,
    policy: &ElasticPolicy,
    exchange: impl Fn(&SseDistContext<'_>, &ElasticTiling) -> ElasticExchange,
) -> Result<ElasticIterationResult, NumericalError> {
    let _span = qt_telemetry::Span::enter_global("dist/iteration_elastic");
    let procs = tiling.procs();
    let gfp = gf_phase(p, dev, em, pm, grids, cfg, procs)?;
    let ctx = gfp.ctx(p, dev, grids);
    let gf_dec = OmenDecomp::new(p, procs);
    let mut coverage = CoverageReport::full(p.nkz * p.ne);
    let mut quarantined_idx: BTreeSet<usize> = BTreeSet::new();
    let mut deaths: Vec<usize> = Vec::new();
    let mut retiles = 0usize;
    let mut migrated_units = 0usize;
    let finish = |result: DistIterationResult,
                  coverage: CoverageReport,
                  degraded: bool,
                  deaths: Vec<usize>,
                  retiles: usize,
                  migrated_units: usize| ElasticIterationResult {
        result,
        coverage,
        degraded,
        deaths,
        retiles,
        migrated_units,
    };
    loop {
        if tiling.world_size() == 0 || retiles > policy.max_retiles {
            // Nobody left to compute (or the supervisor hit its retry
            // bound): complete fully degraded with all-zero Σ≷/Π≷.
            let empty = CommStats {
                world_bytes: 0,
                max_rank_recv: 0,
                rank_sent: Vec::new(),
                rank_recv: Vec::new(),
                balance: None,
            };
            let result = DistIterationResult {
                sigma: ElectronSelfEnergy::zeros(p),
                pi: PhononSelfEnergy::zeros(p),
                current: gfp.current,
                sse_bytes: 0,
                comm: empty,
            };
            return Ok(finish(
                result,
                coverage,
                true,
                deaths,
                retiles,
                migrated_units,
            ));
        }
        match exchange(&ctx, tiling) {
            Ok((sigma, pi, stats)) => {
                let degraded = tiling.live_units().len() < procs;
                let result = DistIterationResult {
                    sigma,
                    pi,
                    current: gfp.current,
                    sse_bytes: stats.world_bytes,
                    comm: stats,
                };
                return Ok(finish(
                    result,
                    coverage,
                    degraded,
                    deaths,
                    retiles,
                    migrated_units,
                ));
            }
            Err(suspects) => {
                retiles += 1;
                qt_telemetry::counters::add_retile_event();
                let mut moved_this_round: u64 = 0;
                for dead in suspects {
                    if !tiling.is_survivor(dead) {
                        continue; // already handled in an earlier round
                    }
                    deaths.push(dead);
                    qt_telemetry::counters::add_rank_death();
                    qt_telemetry::journal::emit(qt_telemetry::EventKind::RankDeath {
                        rank: dead as u64,
                    });
                    // Quarantine the electron grid points whose GF-chunk
                    // state sat on the dead rank (deduplicated: a unit that
                    // migrates and loses its new host again counts once).
                    for u in tiling.units_of(dead) {
                        for e in gf_dec.energy.range(u) {
                            for k in 0..p.nkz {
                                let grid_index = k * p.ne + e;
                                if quarantined_idx.insert(grid_index) {
                                    coverage.quarantined.push(QuarantinedPoint {
                                        grid_index,
                                        error: NumericalError::RankLoss { rank: dead },
                                    });
                                }
                            }
                        }
                    }
                    if coverage.bad_fraction() <= policy.max_bad_fraction {
                        let moved = tiling.remove_rank(dead).len();
                        migrated_units += moved;
                        moved_this_round += moved as u64;
                        qt_telemetry::counters::add_migrated_tiles(moved as u64);
                    } else {
                        // Too much of the grid would ride recovery: give
                        // the units up instead of migrating them.
                        tiling.abandon_rank(dead);
                    }
                }
                qt_telemetry::journal::emit(qt_telemetry::EventKind::Retile {
                    moved_units: moved_this_round,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_iteration_matches_serial() {
        let p = SimParams {
            nkz: 2,
            nqz: 2,
            ne: 12,
            nw: 2,
            na: 12,
            nb: 3,
            norb: 2,
            bnum: 4,
        };
        let dev = Device::new(&p);
        let em = ElectronModel::for_params(&p);
        let pm = PhononModel::default();
        let grids = Grids::new(&p, -1.2, 1.2);
        let cfg = GfConfig::default();
        // Serial reference: one GF phase + serial SSE.
        let egf =
            gf::electron_gf_phase(&dev, &em, &p, &grids, &ElectronSelfEnergy::zeros(&p), &cfg)
                .unwrap();
        let pgf =
            gf::phonon_gf_phase(&dev, &pm, &p, &grids, &PhononSelfEnergy::zeros(&p), &cfg).unwrap();
        let (dl, dg) = sse::preprocess_d(&dev, &p, &pgf);
        let dh = em.dh_tensor(&dev);
        let inputs = sse::SseInputs {
            dev: &dev,
            p: &p,
            grids: &grids,
            dh: &dh,
            g_lesser: &egf.g_lesser,
            g_greater: &egf.g_greater,
            d_lesser_pre: &dl,
            d_greater_pre: &dg,
        };
        let serial_sigma = sse::sigma(&inputs, sse::SseVariant::Dace);
        // Distributed on a 2×2 grid.
        let dist = distributed_iteration(&p, &dev, &em, &pm, &grids, &cfg, 2, 2).unwrap();
        let rel = serial_sigma.lesser.max_abs_diff(&dist.sigma.lesser)
            / serial_sigma.lesser.norm().max(1e-30);
        assert!(rel < 1e-10, "distributed iteration Σ< rel {rel}");
        // Currents: distributed GF accumulates the same Meir–Wingreen sum.
        assert!(
            (dist.current - egf.current).abs() / egf.current.abs().max(1e-30) < 1e-10,
            "current {} vs serial {}",
            dist.current,
            egf.current
        );
        assert!(dist.sse_bytes > 0);
    }

    #[test]
    fn runner_reports_per_rank_volumes_matching_model() {
        let p = SimParams {
            nkz: 2,
            nqz: 2,
            ne: 12,
            nw: 2,
            na: 12,
            nb: 3,
            norb: 2,
            bnum: 4,
        };
        let dev = Device::new(&p);
        let em = ElectronModel::for_params(&p);
        let pm = PhononModel::default();
        let grids = Grids::new(&p, -1.2, 1.2);
        let cfg = GfConfig::default();
        let (te, ta) = (2, 2);
        let dist = distributed_iteration(&p, &dev, &em, &pm, &grids, &cfg, te, ta).unwrap();
        assert_eq!(dist.comm.rank_sent.len(), te * ta);
        assert_eq!(dist.comm.rank_sent.iter().sum::<u64>(), dist.sse_bytes);
        assert_eq!(dist.comm.world_bytes, dist.sse_bytes);
        // The per-rank sends match the exact closed form of the scheme.
        let halo = dev.max_neighbor_index_distance();
        let model = crate::volume::dace_rank_sent_bytes(&p, te, ta, halo);
        assert_eq!(dist.comm.rank_sent, model);
    }

    #[test]
    fn elastic_iteration_without_faults_matches_classic_bitwise() {
        let p = SimParams {
            nkz: 2,
            nqz: 2,
            ne: 12,
            nw: 2,
            na: 12,
            nb: 3,
            norb: 2,
            bnum: 4,
        };
        let dev = Device::new(&p);
        let em = ElectronModel::for_params(&p);
        let pm = PhononModel::default();
        let grids = Grids::new(&p, -1.2, 1.2);
        let cfg = GfConfig::default();
        let classic = distributed_iteration(&p, &dev, &em, &pm, &grids, &cfg, 2, 2).unwrap();
        let policy = ElasticPolicy::default();
        let el =
            distributed_iteration_elastic(&p, &dev, &em, &pm, &grids, &cfg, 2, 2, &policy).unwrap();
        assert!(!el.degraded);
        assert!(el.deaths.is_empty());
        assert_eq!(el.retiles, 0);
        assert_eq!(el.migrated_units, 0);
        assert!(el.coverage.is_full());
        assert_eq!(el.result.current, classic.current);
        assert_eq!(
            el.result.sigma.lesser.as_slice(),
            classic.sigma.lesser.as_slice()
        );
        assert_eq!(
            el.result.pi.greater.as_slice(),
            classic.pi.greater.as_slice()
        );
        assert_eq!(el.result.comm.rank_sent, classic.comm.rank_sent);
    }

    #[test]
    fn tiled_iteration_rebalance_keeps_results_bitwise_stable() {
        let p = SimParams {
            nkz: 2,
            nqz: 2,
            ne: 12,
            nw: 2,
            na: 12,
            nb: 3,
            norb: 2,
            bnum: 4,
        };
        let dev = Device::skewed(&p, 1, 1);
        let em = ElectronModel::for_params(&p);
        let pm = PhononModel::default();
        let grids = Grids::new(&p, -1.2, 1.2);
        let cfg = GfConfig::default();
        let policy = ElasticPolicy::default();
        let mut tiling = ElasticTiling::uniform(&p, 2, 2, 4);
        let first = distributed_iteration_tiled(
            &p,
            &dev,
            &em,
            &pm,
            &grids,
            &cfg,
            &mut tiling,
            &policy,
            false,
        )
        .unwrap();
        assert!(!first.degraded);
        let bal = first
            .result
            .comm
            .balance
            .as_ref()
            .expect("balance measured");
        assert_eq!(bal.rank_busy_secs.len(), 4);
        // Drive the re-tiling decision off a deterministic skew instead of
        // wall-clock noise: one rank 4x busier, its unit 8x costlier.
        let skew = crate::schemes::BalanceStats {
            rank_busy_secs: vec![4.0, 1.0, 1.0, 1.0],
            unit_secs: vec![1.0, 8.0, 1.0, 1.0],
            ..Default::default()
        };
        let events0 = qt_telemetry::counters::total_rebalance_events();
        assert!(maybe_rebalance(&mut tiling, &skew, 10.0).is_empty());
        let moved = maybe_rebalance(&mut tiling, &skew, 1.5);
        assert!(!moved.is_empty(), "4.0/1.75 imbalance must trigger a move");
        assert!(qt_telemetry::counters::total_rebalance_events() > events0);
        // The re-tiled iteration must reproduce the observables bit for bit.
        let second = distributed_iteration_tiled(
            &p,
            &dev,
            &em,
            &pm,
            &grids,
            &cfg,
            &mut tiling,
            &policy,
            false,
        )
        .unwrap();
        assert_eq!(
            first.result.sigma.lesser.as_slice(),
            second.result.sigma.lesser.as_slice()
        );
        assert_eq!(
            first.result.sigma.greater.as_slice(),
            second.result.sigma.greater.as_slice()
        );
        assert_eq!(
            first.result.pi.lesser.as_slice(),
            second.result.pi.lesser.as_slice()
        );
        assert_eq!(
            first.result.pi.greater.as_slice(),
            second.result.pi.greater.as_slice()
        );
        assert_eq!(first.result.current, second.result.current);
        assert!(second.result.comm.balance.is_some());
    }

    #[test]
    fn energy_chunking_is_exact() {
        // The GF phase must be bitwise-independent of how energies are
        // chunked: each (kz, E) point is solved in isolation.
        let p = SimParams {
            nkz: 2,
            nqz: 2,
            ne: 10,
            nw: 2,
            na: 8,
            nb: 3,
            norb: 2,
            bnum: 4,
        };
        let dev = Device::new(&p);
        let em = ElectronModel::for_params(&p);
        let pm = PhononModel::default();
        let grids = Grids::new(&p, -1.2, 1.2);
        let cfg = GfConfig::default();
        let a = distributed_iteration(&p, &dev, &em, &pm, &grids, &cfg, 1, 2).unwrap();
        let b = distributed_iteration(&p, &dev, &em, &pm, &grids, &cfg, 5, 2).unwrap();
        let rel = a.sigma.lesser.max_abs_diff(&b.sigma.lesser) / a.sigma.lesser.norm().max(1e-30);
        assert!(rel < 1e-10, "chunking must not change results: {rel}");
    }
}
