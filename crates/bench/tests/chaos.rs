//! Chaos smoke at the harness level (feature `fault-inject`): a faulty
//! distributed iteration must survive, match the fault-free answer, and
//! leave a telemetry report whose health block records the recovery work —
//! the in-process equivalent of `check-report --require-health`.
#![cfg(feature = "fault-inject")]

use std::sync::Mutex;
use std::time::Duration;

use qt_core::device::Device;
use qt_core::gf::GfConfig;
use qt_core::grids::Grids;
use qt_core::hamiltonian::{ElectronModel, PhononModel};
use qt_core::params::SimParams;
use qt_dist::runner::{distributed_iteration, distributed_iteration_with_faults};
use qt_dist::FaultPlan;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn faulty_pipeline_reports_health_and_passes_the_gate() {
    let _g = lock();
    qt_telemetry::reset_all();
    qt_telemetry::set_enabled(true);
    let p = SimParams {
        nkz: 2,
        nqz: 2,
        ne: 12,
        nw: 2,
        na: 12,
        nb: 3,
        norb: 2,
        bnum: 4,
    };
    let dev = Device::new(&p);
    let em = ElectronModel::for_params(&p);
    let pm = PhononModel::default();
    let grids = Grids::new(&p, -1.2, 1.2);
    let cfg = GfConfig::default();
    let clean = distributed_iteration(&p, &dev, &em, &pm, &grids, &cfg, 2, 2).unwrap();
    let plan = FaultPlan::new(515)
        .with_drops(150)
        .with_corruption(100)
        .with_stalled_rank(2, Duration::from_millis(10));
    let faulty =
        distributed_iteration_with_faults(&p, &dev, &em, &pm, &grids, &cfg, 2, 2, plan).unwrap();
    let rel = clean.sigma.lesser.max_abs_diff(&faulty.sigma.lesser)
        / clean.sigma.lesser.norm().max(1e-30);
    assert!(rel <= 1e-10, "faulty run must match fault-free: rel {rel}");

    // The report's health block carries the recovery counters, and the
    // --require-health gate (health block present) passes after a
    // JSON roundtrip.
    let rep = qt_telemetry::TelemetryReport::from_current();
    rep.validate().expect("report validates");
    let h = rep.health.expect("health block present");
    assert!(
        h.comm_retries > 0,
        "chaos plan must be visible as comm retries in the health block"
    );
    let back = qt_telemetry::TelemetryReport::from_json(&rep.to_json()).expect("roundtrip");
    assert_eq!(back.health, rep.health);
}
