//! Property tests: the blocked/packed GEMM hierarchy must agree with the
//! `gemm_naive_*` reference kernels to within 1e-10 relative error across
//! random shapes, including the degenerate m=1/k=1/n=1 edges and sizes that
//! are not multiples of the (MR, NR, MC, KC, NC) tiles.

use proptest::prelude::*;
use qt_linalg::gemm;
use qt_linalg::{c64, Complex64};

fn cvec(seed: u64, len: usize) -> Vec<Complex64> {
    // Deterministic per-case fill derived from the proptest-chosen seed.
    let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    };
    (0..len).map(|_| c64(next(), next())).collect()
}

/// Max |got − want| relative to the operand magnitudes. The 1e-10 bound is
/// generous for f64 at these sizes; differences come only from re-association
/// of the k-loop sum.
fn rel_err(got: &[Complex64], want: &[Complex64]) -> f64 {
    let scale = want.iter().map(|z| z.abs()).fold(1.0, f64::max);
    got.iter()
        .zip(want)
        .map(|(g, w)| (*g - *w).abs())
        .fold(0.0, f64::max)
        / scale
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_matches_naive(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        seed in any::<u64>(),
    ) {
        let a = cvec(seed, m * k);
        let b = cvec(seed ^ 1, k * n);
        let base = cvec(seed ^ 2, m * n);
        let mut got = base.clone();
        let mut want = base;
        gemm::gemm_blocked_acc(m, k, n, &a, &b, &mut got);
        gemm::gemm_naive_acc(m, k, n, &a, &b, &mut want);
        prop_assert!(rel_err(&got, &want) < 1e-10, "{m}x{k}x{n}");
    }

    #[test]
    fn dispatcher_matches_naive(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        seed in any::<u64>(),
    ) {
        let a = cvec(seed, m * k);
        let b = cvec(seed ^ 3, k * n);
        let mut got = vec![Complex64::ZERO; m * n];
        let mut want = got.clone();
        gemm::gemm_raw_acc(m, k, n, &a, &b, &mut got);
        gemm::gemm_naive_acc(m, k, n, &a, &b, &mut want);
        prop_assert!(rel_err(&got, &want) < 1e-10, "{m}x{k}x{n}");
    }

    #[test]
    fn batched_matches_naive(
        m in 1usize..20,
        k in 1usize..20,
        n in 1usize..20,
        batch in 1usize..24,
        seed in any::<u64>(),
    ) {
        let a = cvec(seed, batch * m * k);
        let b = cvec(seed ^ 4, batch * k * n);
        let mut got = vec![Complex64::ZERO; batch * m * n];
        let mut want = got.clone();
        gemm::batched_gemm_acc(m, k, n, batch, &a, &b, &mut got);
        gemm::gemm_naive_batched_acc(m, k, n, batch, &a, &b, &mut want);
        prop_assert!(rel_err(&got, &want) < 1e-10, "{m}x{k}x{n} x{batch}");
    }

    #[test]
    fn batched_matches_per_item_naive_tightly(
        m in 1usize..16,
        k in 1usize..16,
        n in 1usize..16,
        batch in 1usize..24,
        seed in any::<u64>(),
    ) {
        // The batched path must agree with an independent per-item naive
        // triple loop to 1e-12 — at these block sizes the only daylight is
        // k-loop re-association, so the bound is tight but safe.
        let a = cvec(seed, batch * m * k);
        let b = cvec(seed ^ 8, batch * k * n);
        let base = cvec(seed ^ 9, batch * m * n);
        let mut got = base.clone();
        let mut want = base;
        gemm::batched_gemm_acc(m, k, n, batch, &a, &b, &mut got);
        for item in 0..batch {
            gemm::gemm_naive_acc(
                m, k, n,
                &a[item * m * k..(item + 1) * m * k],
                &b[item * k * n..(item + 1) * k * n],
                &mut want[item * m * n..(item + 1) * m * n],
            );
        }
        prop_assert!(rel_err(&got, &want) < 1e-12, "{m}x{k}x{n} x{batch}");
    }

    #[test]
    fn batched_shared_b_scaled_matches_per_item_naive(
        m in 1usize..16,
        k in 1usize..16,
        n in 1usize..16,
        batch in 1usize..24,
        seed in any::<u64>(),
    ) {
        // The SSE reschedule's workhorse: every batch item multiplies the
        // same right operand, and the scale rides the accumulate epilogue.
        let a = cvec(seed, batch * m * k);
        let b = cvec(seed ^ 10, k * n);
        let base = cvec(seed ^ 11, batch * m * n);
        let scale = c64(0.3, -0.7);
        let mut got = base.clone();
        let mut want = base;
        gemm::batched_gemm_shared_b_scaled_acc(m, k, n, batch, &a, &b, &mut got, scale);
        for item in 0..batch {
            let mut prod = vec![Complex64::ZERO; m * n];
            gemm::gemm_naive_acc(m, k, n, &a[item * m * k..(item + 1) * m * k], &b, &mut prod);
            for (w, p) in want[item * m * n..(item + 1) * m * n].iter_mut().zip(&prod) {
                *w += *p * scale;
            }
        }
        prop_assert!(rel_err(&got, &want) < 1e-12, "{m}x{k}x{n} x{batch}");
    }

    #[test]
    fn bdagger_matches_naive(
        m in 1usize..40,
        k in 1usize..40,
        n in 1usize..40,
        seed in any::<u64>(),
    ) {
        let a = cvec(seed, m * k);
        let b = cvec(seed ^ 5, n * k); // B is n x k; we compute A · B†
        let mut got = vec![Complex64::ZERO; m * n];
        let mut want = got.clone();
        gemm::gemm_bdagger_acc(m, k, n, &a, &b, &mut got);
        gemm::gemm_naive_bdagger_acc(m, k, n, &a, &b, &mut want);
        prop_assert!(rel_err(&got, &want) < 1e-10, "{m}x{k}x{n}");
    }

    #[test]
    fn window_matches_naive(
        no in 1usize..12,
        win in 1usize..24,
        seed in any::<u64>(),
    ) {
        let nn = no * no;
        let a = cvec(seed, win * nn);
        let b = cvec(seed ^ 6, win * nn);
        let base = cvec(seed ^ 7, nn);
        let scale = c64(0.3, -0.7);
        let mut got = base.clone();
        let mut want = base;
        gemm::gemm_window_acc(no, win, &a, &b, &mut got, scale);
        gemm::gemm_naive_window_acc(no, win, &a, &b, &mut want, scale);
        prop_assert!(rel_err(&got, &want) < 1e-10, "no={no} win={win}");
    }
}

/// The edges proptest can miss: exact tile multiples, one-past boundaries,
/// and the fully degenerate shapes.
#[test]
fn explicit_tile_boundary_shapes() {
    let edge_shapes = [
        (1, 1, 1),
        (1, 256, 1),                    // KC-exact inner dimension
        (gemm::MR, gemm::KC, gemm::NR), // one exact micro/cache tile
        (gemm::MR + 1, gemm::KC + 1, gemm::NR + 1),
        (gemm::MC, 7, 9), // MC-exact row extent
        (gemm::MC + 1, 7, 9),
        (3, 300, 5), // k spans two KC panels
        (130, 10, 70),
    ];
    for (i, &(m, k, n)) in edge_shapes.iter().enumerate() {
        let a = cvec(100 + i as u64, m * k);
        let b = cvec(200 + i as u64, k * n);
        let base = cvec(300 + i as u64, m * n);
        let mut got = base.clone();
        let mut want = base;
        gemm::gemm_blocked_acc(m, k, n, &a, &b, &mut got);
        gemm::gemm_naive_acc(m, k, n, &a, &b, &mut want);
        assert!(rel_err(&got, &want) < 1e-10, "{m}x{k}x{n}");
    }
}
