//! Counting global allocator (feature `count-alloc`).
//!
//! Wraps [`System`] and feeds every allocation into the `alloc.bytes` /
//! `alloc.count` telemetry counters, so `reproduce profile` can attribute
//! allocator traffic to phases and the allocation-regression test can
//! assert that warm SCF iterations stay off the allocator. Deallocations
//! are not tracked — the interesting signal is allocation *pressure*, and
//! the hot-path counters must stay monotone for per-iteration deltas.
//!
//! Binaries and test harnesses opt in explicitly:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: qt_bench::alloc::CountingAllocator = qt_bench::alloc::CountingAllocator;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// System allocator with telemetry-counter accounting on every
/// allocation path (`alloc`, `alloc_zeroed`, and growth via `realloc`).
pub struct CountingAllocator;

thread_local! {
    static IN_HOOK: Cell<bool> = const { Cell::new(false) };
}

#[inline]
fn record(bytes: usize) {
    // `add_alloc` itself allocates on a thread's first counter touch
    // (shard-cell registration) and thread-local access can fail during
    // thread teardown — the guard and `try_with` break both recursions.
    let _ = IN_HOOK.try_with(|flag| {
        if !flag.get() {
            flag.set(true);
            qt_telemetry::counters::add_alloc(bytes as u64);
            flag.set(false);
        }
    });
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size > layout.size() {
            record(new_size - layout.size());
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
