//! I–V characteristic of the FinFET slice: sweep the drain-source bias and
//! record the self-consistent (dissipative) current against the ballistic
//! one — the device-engineering workflow the paper's TCAD motivation (§2)
//! describes.
//!
//! ```sh
//! cargo run --release --example iv_curve
//! ```

use dace_omen::prelude::*;

fn main() {
    let params = SimParams {
        nkz: 3,
        nqz: 3,
        ne: 20,
        nw: 3,
        na: 24,
        nb: 4,
        norb: 2,
        bnum: 6,
    };
    let sim = Simulation::new(params, -1.2, 1.2);
    println!(
        "== I-V sweep (NA={}, dissipative vs ballistic) ==",
        params.na
    );
    println!(
        "  {:>8} | {:>12} | {:>12} | {:>8} | {:>6}",
        "V [eV]", "I ballistic", "I scattered", "dI/I [%]", "iters"
    );
    let mut last_i = 0.0;
    for step in 0..=6 {
        let v = 0.1 * step as f64;
        let mut cfg = ScfConfig {
            max_iterations: 30,
            tolerance: 1e-6,
            variant: SseVariant::Dace,
            ..Default::default()
        };
        cfg.gf.contacts = Contacts {
            mu_left: v / 2.0,
            mu_right: -v / 2.0,
            temperature: 300.0,
            ..Contacts::default()
        };
        let out = run_scf(&sim, &cfg).expect("SCF");
        let ballistic = out.current_history[0];
        let scattered = *out.current_history.last().unwrap();
        let rel = if ballistic.abs() > 1e-6 {
            format!("{:+8.2}", 100.0 * (scattered - ballistic) / ballistic)
        } else {
            // At V = 0 both currents vanish up to the kernel's truncation
            // (diagonal-block Σ, finite energy window).
            "       -".into()
        };
        println!(
            "  {:>8.2} | {:>12.6} | {:>12.6} | {} | {:>6}",
            v, ballistic, scattered, rel, out.iterations
        );
        // Monotonicity sanity while sweeping up.
        assert!(
            scattered >= last_i - 1e-9,
            "current should not decrease with bias at this scale"
        );
        last_i = scattered;
    }
    println!("\n(current units: e/h per 2pi, spin-degenerate, arbitrary overall scale)");
}
