//! # qt-serve — a fault-tolerant batched bias-sweep service
//!
//! Long-running front end over the SCF solver: clients submit bias
//! sweeps for registered device variants over typed request/response
//! channels; the service batches them onto a shared [`qt_dist::RankPool`]
//! and shares warm state between nearby bias points, so a 12-point IV
//! curve costs far fewer Born iterations than 12 cold solves.
//!
//! Robustness is the design center, not an afterthought:
//!
//! - **Bounded admission.** The submit path keeps an explicit depth
//!   counter over the unbounded MPMC transport; past
//!   [`ServeConfig::queue_capacity`] a submit is rejected with
//!   [`SubmitError::QueueFull`] carrying a retry-after hint — explicit
//!   backpressure instead of unbounded memory growth.
//! - **Deadlines.** Each request may carry a wall-clock budget; a
//!   watchdog thread cancels the request's [`qt_core::scf::CancelToken`]
//!   on expiry, and the SCF loop observes it at every iteration
//!   boundary, so no request overruns its deadline by more than one
//!   Born iteration.
//! - **Graceful degradation.** A warm-started point that fails to
//!   converge is re-solved cold with the same residual test — a bad
//!   seed costs iterations, never correctness. The degradation is
//!   journaled ([`qt_telemetry::EventKind::WarmFallback`]) and counted.
//! - **Retry & circuit breaking.** Cold failures retry with exponential
//!   backoff; a variant that keeps failing is quarantined by a
//!   per-variant circuit breaker until a cooldown passes.
//! - **Drain on shutdown.** [`Service::shutdown`] cancels in-flight
//!   solves, which write QTCKPT01 drain checkpoints (resumable later),
//!   and answers still-queued requests with [`SweepStatus::ShutDown`].

mod breaker;
mod config;
mod service;
mod warm;
mod watchdog;

pub use breaker::CircuitBreaker;
pub use config::{
    PointResult, ServeConfig, SubmitError, SweepRequest, SweepResponse, SweepStatus, SweepTicket,
    VariantSpec,
};
pub use service::Service;
pub use warm::WarmStore;
