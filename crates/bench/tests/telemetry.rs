//! End-to-end telemetry integration: counter exactness through a full SCF,
//! report/trace validity, and the disabled-telemetry overhead bound.
//!
//! Telemetry state (counters, phase registry, trace buffer, enable flags)
//! is process-global, so every test takes `LOCK` — cargo's default
//! multi-threaded test runner would otherwise interleave spans from
//! concurrent tests into each other's global-attribution deltas.

use std::sync::Mutex;
use std::time::Instant;

use qt_core::params::SimParams;
use qt_core::scf::{run_scf, ScfConfig, Simulation};
use qt_linalg::{gemm, Complex64};
use qt_telemetry::counters;

static LOCK: Mutex<()> = Mutex::new(());

/// Take the serialization lock, surviving a poisoned mutex (a failed test
/// must not cascade into the rest of the suite).
fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn small_params() -> SimParams {
    SimParams {
        nkz: 2,
        nqz: 2,
        ne: 8,
        nw: 2,
        na: 8,
        nb: 3,
        norb: 2,
        bnum: 4,
    }
}

/// The GEMM entry points account exactly `8·m·k·n·batch` real flops per
/// product — the convention every closed-form model in `qt_core::flops`
/// is stated in.
#[test]
fn gemm_flops_counted_exactly() {
    let _g = lock();
    qt_telemetry::reset_all();
    qt_telemetry::set_enabled(true);
    let (m, k, n) = (13usize, 7usize, 5usize);
    let a = vec![Complex64::ONE; m * k];
    let b = vec![Complex64::ONE; k * n];
    let mut out = vec![Complex64::ZERO; m * n];
    let before = counters::total_flops();
    gemm::gemm_blocked_acc(m, k, n, &a, &b, &mut out);
    assert_eq!(
        counters::total_flops() - before,
        8 * (m * k * n) as u64,
        "one blocked GEMM must count exactly 8·m·k·n flops"
    );
    let before = counters::total_flops();
    let batch = 9usize;
    let a = vec![Complex64::ONE; batch * 4];
    let b = vec![Complex64::ONE; batch * 4];
    let mut out = vec![Complex64::ZERO; batch * 4];
    gemm::batched_gemm_acc(2, 2, 2, batch, &a, &b, &mut out);
    assert_eq!(counters::total_flops() - before, 8 * 8 * batch as u64);
}

/// A small end-to-end SCF where the telemetry-measured GEMM flops equal
/// the `add_gemm_flops_batched` totals exactly: the `scf` global span
/// captures every flop of the run, and the per-variant SSE phase matches
/// the implementation-exact closed form per call.
#[test]
fn scf_phase_flops_equal_counter_totals() {
    let _g = lock();
    qt_telemetry::reset_all();
    qt_telemetry::set_enabled(true);
    let sim = Simulation::new(small_params(), -1.2, 1.2);
    let cfg = ScfConfig {
        max_iterations: 2,
        ..Default::default()
    };
    let out = run_scf(&sim, &cfg).expect("SCF");
    let scf = qt_telemetry::registry::phase("scf").expect("scf phase recorded");
    assert!(scf.flops > 0);
    // Every flop of the run flows through the shared counters inside the
    // scf span — the span delta and the global total must agree exactly.
    assert_eq!(scf.flops, counters::total_flops());
    let dace = qt_telemetry::registry::phase("sse/sigma/dace").expect("sse phase recorded");
    assert_eq!(dace.calls as usize, out.iterations);
    assert_eq!(
        dace.flops,
        out.iterations as u64 * qt_core::flops::sse_dace_flops_exact(&sim.p, &sim.dev),
        "SSE flops must match the exact model per sigma call"
    );
    assert_eq!(out.trajectory.len(), out.iterations);
}

/// The report built from a live run round-trips through JSON, validates,
/// and the Chrome trace export is structurally sound.
#[test]
fn report_and_trace_validate_end_to_end() {
    let _g = lock();
    qt_telemetry::reset_all();
    qt_telemetry::set_enabled(true);
    qt_telemetry::set_tracing(true);
    let sim = Simulation::new(small_params(), -1.2, 1.2);
    let cfg = ScfConfig {
        max_iterations: 1,
        ..Default::default()
    };
    run_scf(&sim, &cfg).expect("SCF");
    qt_telemetry::set_tracing(false);
    let rep = qt_telemetry::TelemetryReport::from_current();
    rep.validate().expect("live report validates");
    let back = qt_telemetry::TelemetryReport::from_json(&rep.to_json()).expect("roundtrip");
    assert_eq!(back, rep);
    let trace = qt_telemetry::export_chrome_trace();
    let events = qt_telemetry::trace::validate_chrome_trace(&trace).expect("trace validates");
    assert!(events > 0, "tracing a full SCF must record events");
}

/// With telemetry disabled, the instrumented GEMM path must stay close to
/// the `INSTRUMENT = false` monomorphization. The precise <2% acceptance
/// bound is checked on the `gemm/telemetry_overhead` criterion group; this
/// smoke version uses min-of-N timings with a band wide enough to be
/// stable on loaded CI runners.
#[test]
fn disabled_telemetry_overhead_is_small() {
    let _g = lock();
    qt_telemetry::reset_all();
    qt_telemetry::set_enabled(false);
    let n = 160usize;
    let a = vec![Complex64::ONE; n * n];
    let b = vec![Complex64::ONE; n * n];
    let mut out = vec![Complex64::ZERO; n * n];
    // Alternate the two kernels and take minima: back-to-back blocks of
    // one kernel see CPU frequency ramps and cache-warmth drift, which
    // dwarf the effect under test.
    gemm::gemm_blocked_acc(n, n, n, &a, &b, &mut out);
    gemm::gemm_blocked_acc_uninstrumented(n, n, n, &a, &b, &mut out);
    let (mut instrumented, mut bare) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..9 {
        let t = Instant::now();
        gemm::gemm_blocked_acc(n, n, n, &a, &b, &mut out);
        instrumented = instrumented.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        gemm::gemm_blocked_acc_uninstrumented(n, n, n, &a, &b, &mut out);
        bare = bare.min(t.elapsed().as_secs_f64());
    }
    assert!(
        instrumented <= bare * 1.25,
        "disabled-telemetry GEMM {instrumented:.6}s vs uninstrumented {bare:.6}s"
    );
    qt_telemetry::set_enabled(true);
}
