//! Structured dataflow tree — the transformable view of an SDFG state.
//!
//! DaCe's transformations (map tiling, fission, fusion, …) pattern-match on
//! the *scope tree* of a state: maps nest, tasklets sit inside scopes, and
//! memlets decorate the edges. This module is that scope tree, made the
//! primary representation: every transformation in
//! [`crate::transforms`] rewrites a [`ScopeTree`], and
//! [`crate::graph`] lowers trees to the flat multigraph for rendering and
//! validation.

use crate::propagate::{propagate_subset, IndirectionModel, ParamRange, PropagatedMemlet};
use crate::subset::Subset;
use crate::symexpr::{Bindings, SymExpr};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Element datatype of an array container.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dtype {
    Complex128,
    Float64,
    Int32,
}

impl Dtype {
    pub fn size_bytes(self) -> u64 {
        match self {
            Dtype::Complex128 => 16,
            Dtype::Float64 => 8,
            Dtype::Int32 => 4,
        }
    }
}

/// Array container descriptor.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ArrayDesc {
    pub shape: Vec<SymExpr>,
    pub dtype: Dtype,
    /// Transient arrays live only inside the SDFG (scratch storage).
    pub transient: bool,
}

impl ArrayDesc {
    pub fn new(shape: Vec<SymExpr>, dtype: Dtype, transient: bool) -> Self {
        ArrayDesc {
            shape,
            dtype,
            transient,
        }
    }

    /// Total element count.
    pub fn num_elements(&self) -> SymExpr {
        self.shape
            .iter()
            .fold(SymExpr::int(1), |a, s| a * s.clone())
            .simplified()
    }

    /// Footprint in bytes for given parameter bindings.
    pub fn eval_bytes(&self, b: &Bindings) -> i64 {
        let n = self.num_elements().eval(b).unwrap_or(0);
        n * self.dtype.size_bytes() as i64
    }
}

/// A data access annotation: which array, which subset, read or
/// write-with-conflict-resolution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Access {
    pub array: String,
    pub subset: Subset,
    /// Write-conflict resolution (`CR: Sum` in the figures) — `true` means
    /// the access accumulates into the target.
    pub wcr_sum: bool,
}

impl Access {
    pub fn read(array: impl Into<String>, subset: Subset) -> Self {
        Access {
            array: array.into(),
            subset,
            wcr_sum: false,
        }
    }

    pub fn write(array: impl Into<String>, subset: Subset) -> Self {
        Access {
            array: array.into(),
            subset,
            wcr_sum: false,
        }
    }

    pub fn accumulate(array: impl Into<String>, subset: Subset) -> Self {
        Access {
            array: array.into(),
            subset,
            wcr_sum: true,
        }
    }
}

/// The operation a compute node performs — enough structure for the
/// transformation pipeline to reason about fusing multiplications.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpKind {
    /// Matrix multiply of the (matrix-shaped) trailing dims of the inputs.
    MatMul,
    /// Scalar × matrix product.
    ScalarMul,
    /// Elementwise tasklet (generic).
    Tasklet,
    /// A fused wide GEMM replacing a batch of small multiplies
    /// (Fig. 10d / Fig. 11c). Carries the batch factor it absorbed.
    BatchedGemm { batch: SymExpr },
}

/// A node in the scope tree.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Node {
    /// Parametric parallel scope.
    Map {
        label: String,
        params: Vec<ParamRange>,
        body: Vec<Node>,
    },
    /// Fine-grained computation with explicit data accesses.
    Compute {
        label: String,
        op: OpKind,
        inputs: Vec<Access>,
        outputs: Vec<Access>,
        /// Real flop per invocation (symbolic).
        flops: SymExpr,
    },
}

impl Node {
    pub fn map(label: impl Into<String>, params: Vec<ParamRange>, body: Vec<Node>) -> Node {
        Node::Map {
            label: label.into(),
            params,
            body,
        }
    }

    pub fn compute(
        label: impl Into<String>,
        op: OpKind,
        inputs: Vec<Access>,
        outputs: Vec<Access>,
        flops: SymExpr,
    ) -> Node {
        Node::Compute {
            label: label.into(),
            op,
            inputs,
            outputs,
            flops,
        }
    }

    pub fn label(&self) -> &str {
        match self {
            Node::Map { label, .. } | Node::Compute { label, .. } => label,
        }
    }
}

/// A dataflow state as a scope tree plus its array containers.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ScopeTree {
    pub name: String,
    pub arrays: BTreeMap<String, ArrayDesc>,
    pub roots: Vec<Node>,
    /// Models for indirect accesses, keyed by table name.
    pub indirection_tables: Vec<String>,
}

/// Aggregate movement/compute statistics for a (sub)tree.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TreeStats {
    /// Total accesses (elements moved, counting repeats) per array.
    pub accesses: BTreeMap<String, i64>,
    /// Unique elements touched per array at the outermost level.
    pub unique: BTreeMap<String, i64>,
    /// Total real flop.
    pub flops: i64,
    /// Peak transient footprint in bytes (sum of transient arrays).
    pub transient_bytes: i64,
}

impl TreeStats {
    /// Total moved elements across all arrays.
    pub fn total_accesses(&self) -> i64 {
        self.accesses.values().sum()
    }

    /// Total unique elements across all non-transient arrays.
    pub fn total_unique(&self) -> i64 {
        self.unique.values().sum()
    }
}

impl ScopeTree {
    pub fn new(name: impl Into<String>) -> Self {
        ScopeTree {
            name: name.into(),
            ..Default::default()
        }
    }

    pub fn add_array(&mut self, name: impl Into<String>, desc: ArrayDesc) {
        self.arrays.insert(name.into(), desc);
    }

    /// Validate well-formedness: every access references a declared array
    /// with matching dimensionality; map parameter names are unique within
    /// their nesting path.
    pub fn validate(&self) -> Result<(), String> {
        fn visit(
            tree: &ScopeTree,
            node: &Node,
            mut path_params: Vec<String>,
        ) -> Result<(), String> {
            match node {
                Node::Map {
                    params,
                    body,
                    label,
                } => {
                    for p in params {
                        if path_params.contains(&p.name) {
                            return Err(format!("map `{label}`: duplicate parameter `{}`", p.name));
                        }
                        path_params.push(p.name.clone());
                    }
                    for child in body {
                        visit(tree, child, path_params.clone())?;
                    }
                    Ok(())
                }
                Node::Compute {
                    inputs,
                    outputs,
                    label,
                    ..
                } => {
                    for acc in inputs.iter().chain(outputs) {
                        let desc = tree.arrays.get(&acc.array).ok_or_else(|| {
                            format!("compute `{label}`: unknown array `{}`", acc.array)
                        })?;
                        if acc.subset.ndim() != desc.shape.len() {
                            return Err(format!(
                                "compute `{label}`: array `{}` has {} dims but subset has {}",
                                acc.array,
                                desc.shape.len(),
                                acc.subset.ndim()
                            ));
                        }
                    }
                    Ok(())
                }
            }
        }
        for root in &self.roots {
            visit(self, root, Vec::new())?;
        }
        Ok(())
    }

    /// Propagate every compute access to the outermost level and aggregate
    /// movement + flop statistics, evaluated at concrete bindings.
    pub fn stats(&self, bindings: &Bindings, models: &[IndirectionModel]) -> TreeStats {
        let mut stats = TreeStats::default();
        for root in &self.roots {
            self.visit_stats(root, &mut Vec::new(), bindings, models, &mut stats);
        }
        for (name, desc) in &self.arrays {
            if desc.transient {
                stats.transient_bytes += desc.eval_bytes(bindings);
            }
            let _ = name;
        }
        stats
    }

    fn visit_stats(
        &self,
        node: &Node,
        enclosing: &mut Vec<ParamRange>,
        bindings: &Bindings,
        models: &[IndirectionModel],
        stats: &mut TreeStats,
    ) {
        match node {
            Node::Map { params, body, .. } => {
                let before = enclosing.len();
                enclosing.extend(params.iter().cloned());
                for child in body {
                    self.visit_stats(child, enclosing, bindings, models, stats);
                }
                enclosing.truncate(before);
            }
            Node::Compute {
                inputs,
                outputs,
                flops,
                ..
            } => {
                // Tiled inner ranges reference the outer tile parameter
                // (`kz ∈ [tkz·s, (tkz+1)·s)`): bind each enclosing parameter
                // to its range start while descending so lengths stay
                // evaluable (tile lengths are uniform, so the start value
                // is representative).
                let mut local = bindings.clone();
                let mut map_volume: i64 = 1;
                for p in enclosing.iter() {
                    let len = p.range.eval_length(&local).unwrap_or(0).max(0);
                    map_volume *= len;
                    if let Ok(b) = p.range.begin.eval(&local) {
                        local.insert(p.name.clone(), b);
                    }
                }
                // Flop: per-invocation flops × volume of the enclosing maps.
                stats.flops += flops.eval(&local).unwrap_or(0) * map_volume;
                for acc in inputs.iter().chain(outputs) {
                    let desc = &self.arrays[&acc.array];
                    let prop: PropagatedMemlet =
                        propagate_subset(&acc.subset, enclosing, models, Some(&desc.shape));
                    // Clamp propagated ranges to the array shape before
                    // counting unique elements (offset accesses spill).
                    let mut unique: i64 = 1;
                    for (d, dim) in prop.subset.0.iter().enumerate() {
                        use crate::subset::Dim;
                        let len = match dim {
                            Dim::Index(_) | Dim::Indirect { .. } => 1,
                            Dim::Range(r) => {
                                let n = desc.shape[d].clone();
                                r.clamped(&n).eval_length(bindings).unwrap_or(0)
                            }
                        };
                        unique *= len.max(0);
                    }
                    let accesses = prop.accesses.eval(bindings).unwrap_or(0);
                    *stats.accesses.entry(acc.array.clone()).or_insert(0) += accesses;
                    let u = stats.unique.entry(acc.array.clone()).or_insert(0);
                    // Unique elements of repeated computes on the same array
                    // at top level: take the max cover (they address the
                    // same container).
                    *u = (*u).max(unique);
                }
            }
        }
    }

    /// Find a mutable reference to the map node with the given label
    /// (depth-first).
    pub fn find_map_mut(&mut self, label: &str) -> Option<&mut Node> {
        fn search<'a>(nodes: &'a mut [Node], label: &str) -> Option<&'a mut Node> {
            for node in nodes {
                let is_match = matches!(&node, Node::Map { label: l, .. } if l == label);
                if is_match {
                    return Some(node);
                }
                if let Node::Map { body, .. } = node {
                    if let Some(found) = search(body, label) {
                        return Some(found);
                    }
                }
            }
            None
        }
        search(&mut self.roots, label)
    }

    /// Immutable lookup by label.
    pub fn find_map(&self, label: &str) -> Option<&Node> {
        fn search<'a>(nodes: &'a [Node], label: &str) -> Option<&'a Node> {
            for node in nodes {
                if let Node::Map { label: l, body, .. } = node {
                    if l == label {
                        return Some(node);
                    }
                    if let Some(found) = search(body, label) {
                        return Some(found);
                    }
                }
            }
            None
        }
        search(&self.roots, label)
    }

    /// Number of map nodes in the tree.
    pub fn num_maps(&self) -> usize {
        fn count(nodes: &[Node]) -> usize {
            nodes
                .iter()
                .map(|n| match n {
                    Node::Map { body, .. } => 1 + count(body),
                    Node::Compute { .. } => 0,
                })
                .sum()
        }
        count(&self.roots)
    }
}

impl fmt::Display for ScopeTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn show(node: &Node, indent: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let pad = "  ".repeat(indent);
            match node {
                Node::Map {
                    label,
                    params,
                    body,
                } => {
                    let ps: Vec<String> = params
                        .iter()
                        .map(|p| format!("{}={}", p.name, p.range))
                        .collect();
                    writeln!(f, "{pad}map {label} [{}]", ps.join(", "))?;
                    for child in body {
                        show(child, indent + 1, f)?;
                    }
                    Ok(())
                }
                Node::Compute {
                    label,
                    inputs,
                    outputs,
                    ..
                } => {
                    let ins: Vec<String> = inputs
                        .iter()
                        .map(|a| format!("{}{}", a.array, a.subset))
                        .collect();
                    let outs: Vec<String> = outputs
                        .iter()
                        .map(|a| {
                            format!(
                                "{}{}{}",
                                a.array,
                                a.subset,
                                if a.wcr_sum { " (CR: Sum)" } else { "" }
                            )
                        })
                        .collect();
                    writeln!(f, "{pad}{label}: {} -> {}", ins.join(", "), outs.join(", "))
                }
            }
        }
        writeln!(f, "state {}", self.name)?;
        for root in &self.roots {
            show(root, 1, f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subset::Dim;

    fn simple_tree() -> ScopeTree {
        // map [i=0:M, j=0:N]: C[i,j] += A[i, 0:K] · B[0:K, j]
        let mut t = ScopeTree::new("matmul");
        let m = SymExpr::sym("M");
        let n = SymExpr::sym("N");
        let k = SymExpr::sym("K");
        t.add_array(
            "A",
            ArrayDesc::new(vec![m.clone(), k.clone()], Dtype::Complex128, false),
        );
        t.add_array(
            "B",
            ArrayDesc::new(vec![k.clone(), n.clone()], Dtype::Complex128, false),
        );
        t.add_array(
            "C",
            ArrayDesc::new(vec![m.clone(), n.clone()], Dtype::Complex128, false),
        );
        let body = Node::compute(
            "dot",
            OpKind::Tasklet,
            vec![
                Access::read(
                    "A",
                    Subset::new(vec![Dim::idx(SymExpr::sym("i")), Dim::full(k.clone())]),
                ),
                Access::read(
                    "B",
                    Subset::new(vec![Dim::full(k.clone()), Dim::idx(SymExpr::sym("j"))]),
                ),
            ],
            vec![Access::accumulate(
                "C",
                Subset::new(vec![
                    Dim::idx(SymExpr::sym("i")),
                    Dim::idx(SymExpr::sym("j")),
                ]),
            )],
            SymExpr::int(8) * k.clone(),
        );
        t.roots.push(Node::map(
            "mm",
            vec![ParamRange::new("i", 0, m), ParamRange::new("j", 0, n)],
            vec![body],
        ));
        t
    }

    fn bind(pairs: &[(&str, i64)]) -> Bindings {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn validation_passes_and_detects_errors() {
        let t = simple_tree();
        assert!(t.validate().is_ok());
        let mut broken = t.clone();
        if let Node::Map { body, .. } = &mut broken.roots[0] {
            if let Node::Compute { inputs, .. } = &mut body[0] {
                inputs[0].array = "nonexistent".into();
            }
        }
        assert!(broken.validate().is_err());
    }

    #[test]
    fn matmul_movement_characteristics() {
        // Fig. 4: A moved M*K*N times (via map), unique M*K; similarly B, C.
        let t = simple_tree();
        let b = bind(&[("M", 4), ("N", 5), ("K", 6)]);
        let stats = t.stats(&b, &[]);
        assert_eq!(stats.accesses["A"], 4 * 5 * 6);
        assert_eq!(stats.accesses["B"], 4 * 5 * 6);
        assert_eq!(stats.accesses["C"], 4 * 5);
        assert_eq!(stats.unique["A"], 4 * 6);
        assert_eq!(stats.unique["B"], 6 * 5);
        assert_eq!(stats.unique["C"], 4 * 5);
        assert_eq!(stats.flops, 8 * 6 * 4 * 5);
    }

    #[test]
    fn duplicate_params_rejected() {
        let mut t = simple_tree();
        // Nest a map with a clashing parameter name.
        if let Node::Map { body, .. } = &mut t.roots[0] {
            let inner = Node::map("clash", vec![ParamRange::new("i", 0, 4)], vec![]);
            body.push(inner);
        }
        assert!(t.validate().is_err());
    }

    #[test]
    fn find_map_by_label() {
        let mut t = simple_tree();
        assert!(t.find_map("mm").is_some());
        assert!(t.find_map("nope").is_none());
        assert!(t.find_map_mut("mm").is_some());
        assert_eq!(t.num_maps(), 1);
    }

    #[test]
    fn transient_footprint_counted() {
        let mut t = simple_tree();
        t.add_array(
            "tmp",
            ArrayDesc::new(
                vec![SymExpr::sym("M"), SymExpr::sym("K")],
                Dtype::Complex128,
                true,
            ),
        );
        let b = bind(&[("M", 4), ("N", 5), ("K", 6)]);
        let stats = t.stats(&b, &[]);
        assert_eq!(stats.transient_bytes, 4 * 6 * 16);
    }

    #[test]
    fn display_renders() {
        let t = simple_tree();
        let s = format!("{t}");
        assert!(s.contains("map mm"));
        assert!(s.contains("CR: Sum"));
    }
}
