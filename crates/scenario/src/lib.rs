//! # qt-scenario — fail-closed scenario files for reproducible runs
//!
//! Turns a TOML scenario document into a ready-to-run [`qt_core`]
//! simulation: geometry family → block structure, grid → energy/momentum
//! resolution, sweep → the bias × temperature points, and optional seeded
//! disorder → a deterministic defective device. The pipeline is strict
//! and fail-closed: unknown keys are rejected (a typo would silently run
//! a *different physical system*), every value is range-checked, cross-
//! field physics is validated, and every failure is a typed
//! [`ScenarioError`] carrying the offending key path. Nothing in this
//! crate panics on user input.
//!
//! The golden-result corpus under `corpus/` (run by `reproduce corpus`)
//! is built on this crate: scenario files are the inputs whose observables
//! are pinned, and the disorder machinery is how the corpus legitimately
//! exercises the `SingularBlock` quarantine path.

pub mod error;
pub mod schema;
pub mod toml;

pub use error::ScenarioError;
pub use schema::{
    ContactsSpec, DisorderSpec, Geometry, GeometrySpec, GridSpec, Scenario, SolverSpec, SweepSpec,
};

use qt_core::gf::Contacts;
use qt_core::hamiltonian::Disorder;
use qt_core::params::SimParams;
use qt_core::scf::{ScfConfig, Simulation};
use qt_core::sse::SseVariant;

/// A scenario compiled down to runnable simulation state.
pub struct BuiltScenario {
    /// The normalized scenario (vacancy level snapped, defaults spelled
    /// out) — `scenario.to_toml()` is its canonical form.
    pub scenario: Scenario,
    pub params: SimParams,
    /// Seeded disorder, when the scenario declares a `[disorder]` block.
    pub disorder: Option<Disorder>,
    /// The assembled simulation (disordered when `disorder` is set).
    pub sim: Simulation,
}

impl BuiltScenario {
    /// Solver config for one sweep point: the scenario's solver knobs
    /// with the contacts biased to `mu = ±bias/2` at `temperature`.
    pub fn config_at(&self, bias: f64, temperature: f64) -> ScfConfig {
        let s = &self.scenario;
        let mut cfg = ScfConfig {
            max_iterations: s.solver.max_iterations,
            tolerance: s.solver.tolerance,
            mixing: s.solver.mixing,
            adaptive_mixing: s.solver.adaptive_mixing,
            variant: variant_of(&s.solver.variant),
            ..ScfConfig::default()
        };
        cfg.gf.contacts = Contacts {
            mu_left: bias / 2.0,
            mu_right: -bias / 2.0,
            temperature,
            shift_left: s.contacts.shift_left,
            shift_right: s.contacts.shift_right,
        };
        cfg
    }

    /// All sweep points, temperature-major: `(bias, temperature)` for
    /// every temperature × bias combination, in document order.
    pub fn sweep_points(&self) -> Vec<(f64, f64)> {
        let s = &self.scenario.sweep;
        s.temperatures
            .iter()
            .flat_map(|&t| s.biases.iter().map(move |&b| (b, t)))
            .collect()
    }
}

fn variant_of(tag: &str) -> SseVariant {
    match tag {
        "reference" => SseVariant::Reference,
        "omen" => SseVariant::Omen,
        // parse() admits exactly the three tags, so this arm is "dace".
        _ => SseVariant::Dace,
    }
}

impl Scenario {
    /// Assemble the simulation this scenario describes. Assembly-level
    /// failures (a geometry the device builder rejects, a degenerate
    /// window) surface as [`ScenarioError::Invalid`] — never a panic.
    pub fn build(&self) -> Result<BuiltScenario, ScenarioError> {
        let g = &self.geometry;
        let params = SimParams {
            nkz: self.grid.nkz,
            nqz: self.grid.nqz,
            ne: self.grid.ne,
            nw: self.grid.nw,
            na: g.sections * g.atoms_per_section,
            nb: g.kind.coordination(),
            norb: g.orbitals,
            bnum: g.sections,
        };
        let disorder = self.disorder.as_ref().map(|d| Disorder {
            seed: d.seed,
            vacancy_fraction: d.vacancy_fraction,
            onsite_amplitude: d.onsite_amplitude,
            vacancy_level: d.vacancy_level,
        });
        let invalid = |reason: String| ScenarioError::Invalid {
            path: "scenario".into(),
            reason,
        };
        let sim = match &disorder {
            Some(d) => Simulation::disordered(params, self.grid.emin, self.grid.emax, *d)
                .map_err(invalid)?,
            None => Simulation::try_new(params, self.grid.emin, self.grid.emax).map_err(invalid)?,
        };
        Ok(BuiltScenario {
            scenario: self.clone(),
            params,
            disorder,
            sim,
        })
    }
}

/// The corpus entry point: parse, validate, and assemble in one step,
/// accounting the outcome (`corpus.scenarios_built` /
/// `corpus.scenarios_rejected`).
pub fn load(source: &str) -> Result<BuiltScenario, ScenarioError> {
    match Scenario::parse(source).and_then(|s| s.build()) {
        Ok(built) => {
            qt_telemetry::counters::add_corpus_scenario_built();
            Ok(built)
        }
        Err(e) => {
            qt_telemetry::counters::add_corpus_scenario_rejected();
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nanowire_doc() -> &'static str {
        r#"
name = "nanowire-smoke"

[geometry]
kind = "nanowire"
sections = 4
atoms_per_section = 4

[grid]
ne = 12
nw = 3
emin = -1.2
emax = 1.2

[sweep]
biases = [0.0, 0.4]
"#
    }

    #[test]
    fn all_three_geometries_build() {
        for (kind, nb) in [("nanowire", 4), ("gate-all-around", 6), ("sheet-2d", 3)] {
            let doc = nanowire_doc().replace("\"nanowire\"", &format!("{kind:?}"));
            let built = load(&doc).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(built.params.nb, nb, "{kind} coordination");
            assert_eq!(built.params.na, 16);
            assert_eq!(built.params.bnum, 4);
            assert_eq!(built.sim.p, built.params);
        }
    }

    #[test]
    fn defaults_are_spelled_out_and_canonical() {
        let s = Scenario::parse(nanowire_doc()).unwrap();
        assert_eq!(s.solver.max_iterations, 15);
        assert_eq!(s.contacts.temperature, 300.0);
        assert_eq!(s.sweep.temperatures, vec![300.0]);
        assert_eq!(s.grid.nkz, 2);
        assert_eq!(s.grid.nqz, 2);
        // Canonical form re-parses to the identical scenario, and its
        // canonical form is itself (idempotent normalization).
        let canon = s.to_toml();
        let s2 = Scenario::parse(&canon).unwrap();
        assert_eq!(s, s2);
        assert_eq!(canon, s2.to_toml());
    }

    #[test]
    fn unknown_keys_are_rejected_with_full_paths() {
        let doc = nanowire_doc().replace("nw = 3", "nw = 3\nnww = 3");
        assert_eq!(
            Scenario::parse(&doc).unwrap_err(),
            ScenarioError::UnknownKey {
                path: "grid.nww".into()
            }
        );
        let doc = format!("{}\n[extra]\nx = 1\n", nanowire_doc());
        assert_eq!(
            Scenario::parse(&doc).unwrap_err(),
            ScenarioError::UnknownKey {
                path: "extra".into()
            }
        );
    }

    #[test]
    fn wrong_types_and_ranges_carry_paths() {
        let doc = nanowire_doc().replace("ne = 12", "ne = \"twelve\"");
        assert_eq!(
            Scenario::parse(&doc).unwrap_err(),
            ScenarioError::TypeMismatch {
                path: "grid.ne".into(),
                expected: "integer",
                found: "string"
            }
        );
        let doc = nanowire_doc().replace("sections = 4", "sections = 1");
        match Scenario::parse(&doc).unwrap_err() {
            ScenarioError::OutOfRange { path, .. } => assert_eq!(path, "geometry.sections"),
            other => panic!("expected OutOfRange, got {other:?}"),
        }
        let doc = nanowire_doc().replace("[grid]", "[grid]\nnkz = 99");
        match Scenario::parse(&doc).unwrap_err() {
            ScenarioError::OutOfRange { path, .. } => assert_eq!(path, "grid.nkz"),
            other => panic!("expected OutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn missing_sections_are_reported() {
        let doc =
            "name = \"x\"\n[geometry]\nkind = \"nanowire\"\nsections = 4\natoms_per_section = 4\n";
        assert_eq!(
            Scenario::parse(doc).unwrap_err(),
            ScenarioError::MissingKey {
                path: "grid".into()
            }
        );
    }

    #[test]
    fn cross_field_checks_fire() {
        // Bias window: mu = ±1.0 outside [-1.2, 1.2] is fine, ±2.0 is not.
        let doc = nanowire_doc().replace("[0.0, 0.4]", "[0.0, 4.0]");
        match Scenario::parse(&doc).unwrap_err() {
            ScenarioError::Invalid { path, .. } => assert_eq!(path, "sweep.biases[1]"),
            other => panic!("expected Invalid, got {other:?}"),
        }
        // Phonon ladder longer than the energy grid.
        let doc = nanowire_doc().replace("nw = 3", "nw = 12");
        match Scenario::parse(&doc).unwrap_err() {
            ScenarioError::Invalid { path, .. } => assert_eq!(path, "grid.nw"),
            other => panic!("expected Invalid, got {other:?}"),
        }
        // Inverted window.
        let doc = nanowire_doc()
            .replace("emin = -1.2", "emin = 1.2")
            .replace("emax = 1.2", "emax = -1.2");
        assert!(matches!(
            Scenario::parse(&doc).unwrap_err(),
            ScenarioError::Invalid { .. } | ScenarioError::OutOfRange { .. }
        ));
    }

    #[test]
    fn vacancy_level_snaps_bitwise_onto_the_energy_grid() {
        let doc = format!(
            "{}\n[disorder]\nseed = 7\nvacancy_fraction = 0.1\nvacancy_level = 0.13\n",
            nanowire_doc()
        );
        let built = load(&doc).unwrap();
        let level = built.disorder.as_ref().unwrap().vacancy_level;
        // Must be bitwise equal to a grid energy as Grids computes it.
        assert!(
            built
                .sim
                .grids
                .energies
                .iter()
                .any(|&e| e.to_bits() == level.to_bits()),
            "snapped level {level} not bitwise on the grid"
        );
        // And the normalized scenario records the snapped value.
        assert_eq!(
            built.scenario.disorder.as_ref().unwrap().vacancy_level,
            level
        );
    }

    #[test]
    fn disordered_builds_are_reproducible_per_seed() {
        let doc = format!(
            "{}\n[disorder]\nseed = 42\nvacancy_fraction = 0.15\nonsite_amplitude = 0.05\n",
            nanowire_doc()
        );
        let a = load(&doc).unwrap();
        let b = load(&doc).unwrap();
        assert_eq!(a.sim.dev.neighbors, b.sim.dev.neighbors);
        let other = doc.replace("seed = 42", "seed = 43");
        let c = load(&other).unwrap();
        assert_ne!(
            a.sim.dev.neighbors, c.sim.dev.neighbors,
            "different seeds must produce different vacancy patterns"
        );
    }

    #[test]
    fn load_accounts_outcomes() {
        qt_telemetry::reset_all();
        assert!(load(nanowire_doc()).is_ok());
        assert!(load("name = oops").is_err());
        assert_eq!(qt_telemetry::counters::total_corpus_scenarios_built(), 1);
        assert_eq!(qt_telemetry::counters::total_corpus_scenarios_rejected(), 1);
    }

    #[test]
    fn config_at_biases_the_contacts() {
        let built = load(nanowire_doc()).unwrap();
        let cfg = built.config_at(0.4, 250.0);
        assert_eq!(cfg.gf.contacts.mu_left, 0.2);
        assert_eq!(cfg.gf.contacts.mu_right, -0.2);
        assert_eq!(cfg.gf.contacts.temperature, 250.0);
        assert_eq!(built.sweep_points(), vec![(0.0, 300.0), (0.4, 300.0)]);
    }
}
