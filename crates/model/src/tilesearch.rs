//! Exhaustive tile-size search (§4.1).
//!
//! "An optimal communication scheme can subsequently be found by minimizing
//! these expressions. For this work, we perform exhaustive search over the
//! feasible tile sizes. Since the combinations … are in the order of 10⁶ …
//! the search completes in just a few seconds."
//!
//! Feasible tilings split `P = TE·TA` with `TE ≤ NE` and `TA ≤ NA`; the
//! objective is the closed-form total SSE volume.

use qt_core::params::SimParams;
use qt_dist::volume;

/// Result of the tiling search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tiling {
    pub te: usize,
    pub ta: usize,
    /// Total communication volume in bytes at this tiling.
    pub total_bytes: f64,
}

/// All factorizations `te·ta = procs`.
fn factorizations(procs: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut d = 1;
    while d * d <= procs {
        if procs.is_multiple_of(d) {
            out.push((d, procs / d));
            if d != procs / d {
                out.push((procs / d, d));
            }
        }
        d += 1;
    }
    out
}

/// Exhaustively search all feasible `(TE, TA)` factorizations of `procs`
/// and return the volume-minimizing tiling.
pub fn optimal_tiling(p: &SimParams, procs: usize) -> Option<Tiling> {
    let mut best: Option<Tiling> = None;
    for (te, ta) in factorizations(procs) {
        if te > p.ne || ta > p.na {
            continue;
        }
        let total_bytes = volume::dace_total_bytes(p, te, ta);
        let cand = Tiling {
            te,
            ta,
            total_bytes,
        };
        if best.is_none_or(|b| cand.total_bytes < b.total_bytes) {
            best = Some(cand);
        }
    }
    best
}

/// Search over every process count `1..=max_procs` (the planning sweep a
/// performance engineer runs before submitting a job).
pub fn tiling_sweep(p: &SimParams, max_procs: usize) -> Vec<Tiling> {
    (1..=max_procs)
        .filter_map(|procs| optimal_tiling(p, procs))
        .collect()
}

/// A 3-D tiling `(Tkz, TE, TA)` — the momentum-tiling extension.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tiling3 {
    pub tk: usize,
    pub te: usize,
    pub ta: usize,
    pub total_bytes: f64,
}

/// Exhaustive search over all 3-factor decompositions `tk·te·ta = procs`
/// with `tk ≤ Nkz`, `te ≤ NE`, `ta ≤ NA`. Still "a few seconds" at the
/// paper's scales (the combination count grows only with the divisor
/// structure of `procs`).
pub fn optimal_tiling3(p: &SimParams, procs: usize) -> Option<Tiling3> {
    let mut best: Option<Tiling3> = None;
    let mut tk = 1;
    while tk <= p.nkz.min(procs) {
        if procs.is_multiple_of(tk) {
            let rest = procs / tk;
            for (te, ta) in factorizations(rest) {
                if te > p.ne || ta > p.na {
                    continue;
                }
                let total_bytes = volume::dace3_total_bytes(p, tk, te, ta);
                let cand = Tiling3 {
                    tk,
                    te,
                    ta,
                    total_bytes,
                };
                if best.is_none_or(|b| cand.total_bytes < b.total_bytes) {
                    best = Some(cand);
                }
            }
        }
        tk += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorizations_complete() {
        let f = factorizations(12);
        assert_eq!(f.len(), 6); // 1,2,3,4,6,12
        assert!(f.contains(&(3, 4)) && f.contains(&(4, 3)));
        for (a, b) in f {
            assert_eq!(a * b, 12);
        }
    }

    #[test]
    fn optimum_beats_all_alternatives() {
        let p = SimParams::paper_si_4864(7);
        let procs = 1792;
        let best = optimal_tiling(&p, procs).unwrap();
        for (te, ta) in factorizations(procs) {
            if te > p.ne || ta > p.na {
                continue;
            }
            assert!(best.total_bytes <= volume::dace_total_bytes(&p, te, ta) + 1.0);
        }
    }

    #[test]
    fn paper_tiling_close_to_optimal() {
        // Table 5 uses TE = 7 at Nkz = 7; the searched optimum must not be
        // far below it (the paper chose near-optimal tilings).
        let p = SimParams::paper_si_4864(7);
        let best = optimal_tiling(&p, 1792).unwrap();
        let paper = volume::dace_total_bytes(&p, 7, 256);
        assert!(
            paper / best.total_bytes < 1.6,
            "paper tiling within 60% of optimum: paper {paper:.3e} vs best {:.3e} (TE={}, TA={})",
            best.total_bytes,
            best.te,
            best.ta
        );
    }

    #[test]
    fn degenerate_tilings_rejected() {
        // A process count exceeding NE·NA has no feasible tiling.
        let mut p = SimParams::test_small();
        p.ne = 4;
        p.na = 4;
        p.bnum = 2;
        p.nb = 2;
        p.nw = 2;
        assert!(optimal_tiling(&p, 17).is_none()); // 17 prime > 4, ta=17 > na
        assert!(optimal_tiling(&p, 16).is_some()); // 4×4 works
    }

    #[test]
    fn tiling3_never_worse_than_2d() {
        // The 3-D search space contains Tkz = 1, so its optimum can only
        // improve on the 2-D one.
        for nkz in [3usize, 7, 21] {
            let p = SimParams::paper_si_4864(nkz);
            let procs = 256 * nkz;
            let t2 = optimal_tiling(&p, procs).unwrap();
            let t3 = optimal_tiling3(&p, procs).unwrap();
            assert!(
                t3.total_bytes <= t2.total_bytes + 1.0,
                "Nkz={nkz}: 3D {:.3e} vs 2D {:.3e}",
                t3.total_bytes,
                t2.total_bytes
            );
        }
    }

    #[test]
    fn tiling3_uses_momentum_only_when_the_halo_allows() {
        // With Nqz = Nkz the kz−qz halo spans everything: the searched
        // optimum must coincide with a 2-D tiling's volume.
        let p = SimParams::paper_si_4864(21);
        let t3 = optimal_tiling3(&p, 256 * 21).unwrap();
        let t2 = optimal_tiling(&p, 256 * 21).unwrap();
        assert!((t3.total_bytes - t2.total_bytes).abs() / t2.total_bytes < 0.05);
        // With Nqz ≪ Nkz the optimizer picks momentum tiles.
        let mut p = SimParams::paper_si_4864(21);
        p.nqz = 3;
        let t3 = optimal_tiling3(&p, 256 * 21).unwrap();
        assert!(t3.tk > 1, "expected momentum tiling at Nqz=3, got {t3:?}");
        let t2 = optimal_tiling(&p, 256 * 21).unwrap();
        assert!(t3.total_bytes < t2.total_bytes);
    }

    #[test]
    fn sweep_is_monotone_in_coverage() {
        let p = SimParams::test_small();
        let sweep = tiling_sweep(&p, 12);
        assert!(!sweep.is_empty());
        // Every entry factorizes its process count within bounds.
        for t in &sweep {
            assert!(t.te <= p.ne && t.ta <= p.na);
        }
    }
}
