//! Runtime predictions: strong/weak scaling (Fig. 13) and the
//! extreme-scale run (Table 8).
//!
//! An α–β-style model over the calibrated [`crate::machine`] rates:
//! `T_phase = flops / (nodes·rate_phase)`, `T_comm = volume / (nodes·BW)`,
//! with OMEN's scattered rounds paying the machine's bandwidth penalty.

use crate::machine::Machine;
use crate::tilesearch;
use qt_core::flops;
use qt_core::params::SimParams;
use qt_dist::volume;

/// Which algorithm variant is being modeled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    Omen,
    Dace,
}

/// Predicted times for one GF+SSE iteration.
#[derive(Clone, Copy, Debug)]
pub struct PhaseTimes {
    /// GF state (contour integral + RGF) seconds.
    pub t_gf: f64,
    /// SSE computation seconds.
    pub t_sse: f64,
    /// SSE communication seconds.
    pub t_comm: f64,
    /// Tiling used (DaCe) — `(TE, TA)`.
    pub tiling: Option<(usize, usize)>,
    /// Total communication volume (bytes).
    pub comm_bytes: f64,
}

impl PhaseTimes {
    pub fn total(&self) -> f64 {
        self.t_gf + self.t_sse + self.t_comm
    }

    pub fn compute(&self) -> f64 {
        self.t_gf + self.t_sse
    }
}

/// Predict one iteration of the simulation on `nodes` nodes.
pub fn predict(p: &SimParams, m: &Machine, nodes: usize, variant: Variant) -> PhaseTimes {
    let procs = nodes * m.procs_per_node;
    let gf_flops = flops::contour_flops(p) + flops::rgf_flops(p);
    let t_gf = gf_flops / m.compute_rate(nodes, m.eff_gf);
    match variant {
        Variant::Omen => {
            let t_sse = flops::sse_omen_flops(p) / m.compute_rate(nodes, m.eff_sse_omen);
            let comm_bytes = volume::omen_total_bytes(p, procs);
            let t_comm = comm_bytes / (m.network_rate(nodes) / m.omen_bw_penalty);
            PhaseTimes {
                t_gf,
                t_sse,
                t_comm,
                tiling: None,
                comm_bytes,
            }
        }
        Variant::Dace => {
            let t_sse = flops::sse_dace_flops(p) / m.compute_rate(nodes, m.eff_sse);
            let tiling = tilesearch::optimal_tiling(p, procs).unwrap_or(tilesearch::Tiling {
                te: 1,
                ta: 1,
                total_bytes: volume::dace_total_bytes(p, 1, 1),
            });
            let t_comm = tiling.total_bytes / m.network_rate(nodes);
            PhaseTimes {
                t_gf,
                t_sse,
                t_comm,
                tiling: Some((tiling.te, tiling.ta)),
                comm_bytes: tiling.total_bytes,
            }
        }
    }
}

/// One point of a scaling series.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    pub nodes: usize,
    pub gpus: usize,
    pub times: PhaseTimes,
}

/// Strong scaling: fixed problem, growing node counts (Fig. 13 left).
pub fn strong_scaling(
    p: &SimParams,
    m: &Machine,
    node_counts: &[usize],
    variant: Variant,
) -> Vec<ScalingPoint> {
    node_counts
        .iter()
        .map(|&nodes| ScalingPoint {
            nodes,
            gpus: m.gpus(nodes),
            times: predict(p, m, nodes, variant),
        })
        .collect()
}

/// Weak scaling: `Nkz` grows proportionally with nodes (Fig. 13 right).
/// `nodes_per_kz` fixes the proportionality.
pub fn weak_scaling(
    base: &SimParams,
    m: &Machine,
    nkz_list: &[usize],
    nodes_per_kz: usize,
    variant: Variant,
) -> Vec<(usize, ScalingPoint)> {
    nkz_list
        .iter()
        .map(|&nkz| {
            let mut p = *base;
            p.nkz = nkz;
            p.nqz = nkz;
            let nodes = nodes_per_kz * nkz;
            (
                nkz,
                ScalingPoint {
                    nodes,
                    gpus: m.gpus(nodes),
                    times: predict(&p, m, nodes, variant),
                },
            )
        })
        .collect()
}

/// A Table 8 row: extreme-scale 10,240-atom run on Summit.
#[derive(Clone, Copy, Debug)]
pub struct ExtremeRow {
    pub nkz: usize,
    pub nodes: usize,
    pub gf_pflop: f64,
    pub gf_time: f64,
    pub sse_pflop: f64,
    pub sse_time: f64,
    pub comm_time: f64,
}

/// Model the Table 8 configuration.
pub fn extreme_run(nkz: usize, nodes: usize, m: &Machine) -> ExtremeRow {
    let p = SimParams::paper_si_10240(nkz);
    let t = predict(&p, m, nodes, Variant::Dace);
    ExtremeRow {
        nkz,
        nodes,
        gf_pflop: (flops::contour_flops(&p) + flops::rgf_flops(&p)) / 1e15,
        gf_time: t.t_gf,
        sse_pflop: flops::sse_dace_flops(&p) / 1e15,
        sse_time: t.t_sse,
        comm_time: t.t_comm,
    }
}

/// Parallel efficiency of a strong-scaling series (first point = 100%).
pub fn parallel_efficiency(series: &[ScalingPoint]) -> Vec<f64> {
    let Some(first) = series.first() else {
        return Vec::new();
    };
    let base = first.times.total() * first.nodes as f64;
    series
        .iter()
        .map(|pt| base / (pt.times.total() * pt.nodes as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{PIZ_DAINT, SUMMIT};

    #[test]
    fn daint_strong_scaling_speedup_matches_paper_band() {
        // §5.2: "the total runtime of the reduced-communication variant
        // outperforms OMEN … up to a factor of 16.3×" on Piz Daint
        // (4,864 atoms, Nkz = 7, 112–5,400 nodes).
        let p = SimParams::paper_si_4864(7);
        let nodes = [112usize, 224, 448, 896, 1792, 2700, 5400];
        let omen = strong_scaling(&p, &PIZ_DAINT, &nodes, Variant::Omen);
        let dace = strong_scaling(&p, &PIZ_DAINT, &nodes, Variant::Dace);
        // At the matched small-node configuration (where both codes ran in
        // the paper) the total speedup brackets the reported 16.3×; it only
        // grows with node count since OMEN is communication-bound.
        let matched = omen[0].times.total() / dace[0].times.total();
        assert!(
            matched > 10.0 && matched < 40.0,
            "total speedup {matched:.1} should bracket the paper's 16.3x"
        );
        let speedups: Vec<f64> = omen
            .iter()
            .zip(&dace)
            .map(|(o, d)| o.times.total() / d.times.total())
            .collect();
        assert!(
            speedups.windows(2).all(|w| w[1] >= w[0] * 0.8),
            "speedup should not collapse with node count: {speedups:?}"
        );
        // Communication-only speedup: paper reports up to 417×.
        let comm_speedup = omen
            .iter()
            .zip(&dace)
            .map(|(o, d)| o.times.t_comm / d.times.t_comm)
            .fold(0.0, f64::max);
        assert!(
            comm_speedup > 150.0 && comm_speedup < 900.0,
            "comm speedup {comm_speedup:.0} should be O(paper's 417x)"
        );
    }

    #[test]
    fn summit_speedup_larger_than_daint() {
        // §5.2: 24.5× on Summit vs 16.3× on Piz Daint (OMEN's kernels are
        // less optimized for POWER9 — modeled by the lower eff_sse_omen).
        let p = SimParams::paper_si_4864(7);
        let nodes = [19usize, 38, 76, 152, 228];
        let sp = |m: &Machine| {
            let omen = strong_scaling(&p, m, &nodes, Variant::Omen);
            let dace = strong_scaling(&p, m, &nodes, Variant::Dace);
            omen.iter()
                .zip(&dace)
                .map(|(o, d)| o.times.total() / d.times.total())
                .fold(0.0, f64::max)
        };
        let daint = sp(&PIZ_DAINT);
        let summit = sp(&SUMMIT);
        assert!(
            summit > daint,
            "Summit speedup {summit:.1} must exceed Piz Daint's {daint:.1}"
        );
    }

    #[test]
    fn dace_strong_scaling_efficiency_shape() {
        // Fig. 13(a): DaCe scales from 112 to 5,400 nodes with ~10.7×
        // total speedup over the 48× node growth... the paper reports
        // 10.69× over a 48.2× node range (74% efficiency at mid-range).
        let p = SimParams::paper_si_4864(7);
        let nodes = [112usize, 5400];
        let dace = strong_scaling(&p, &PIZ_DAINT, &nodes, Variant::Dace);
        let speedup = dace[0].times.total() / dace[1].times.total();
        assert!(
            speedup > 6.0 && speedup < 48.0,
            "strong-scaling speedup {speedup:.1} must be sublinear but large"
        );
    }

    #[test]
    fn weak_scaling_dace_grows_slower_than_omen() {
        let base = SimParams::paper_si_4864(3);
        let kz = [3usize, 5, 7, 9, 11];
        let omen = weak_scaling(&base, &PIZ_DAINT, &kz, 128, Variant::Omen);
        let dace = weak_scaling(&base, &PIZ_DAINT, &kz, 128, Variant::Dace);
        // Ideal weak scaling for SSE is ∝ Nkz·Nqz per node count ∝ Nkz:
        // time grows ∝ Nkz. OMEN's communication grows faster.
        let growth = |s: &[(usize, ScalingPoint)]| {
            s.last().unwrap().1.times.t_comm / s.first().unwrap().1.times.t_comm
        };
        assert!(growth(&omen) > growth(&dace));
    }

    #[test]
    fn table8_pflop_magnitudes() {
        // Paper: Nkz=11 → GF 2,922 Pflop, SSE 490 Pflop;
        // Nkz=21 → GF 5,579 Pflop, SSE 1,784 Pflop.
        let r11 = extreme_run(11, 1852, &SUMMIT);
        // GF flop model is calibrated on the 4,864-atom device; at 10,240
        // atoms the paper's bnum/basis details differ, so require the
        // magnitude (factor ~2) not the digit.
        assert!(
            r11.gf_pflop > 1000.0 && r11.gf_pflop < 6000.0,
            "GF {:.0} Pflop",
            r11.gf_pflop
        );
        // SSE model is exact in its inputs: 11²/70-point grid.
        let r21 = extreme_run(21, 3525, &SUMMIT);
        assert!(
            r21.sse_pflop / r11.sse_pflop > 3.0 && r21.sse_pflop / r11.sse_pflop < 4.0,
            "SSE scales ~(21/11)² = 3.6×: {:.2}",
            r21.sse_pflop / r11.sse_pflop
        );
    }

    #[test]
    fn table8_time_magnitudes() {
        // "under 7 minutes per iteration" at full scale.
        let r = extreme_run(21, 3525, &SUMMIT);
        let total = r.gf_time + r.sse_time + r.comm_time;
        assert!(
            total > 60.0 && total < 900.0,
            "iteration time {total:.0}s should be minutes-scale"
        );
    }

    #[test]
    fn efficiency_starts_at_one() {
        let p = SimParams::paper_si_4864(7);
        let series = strong_scaling(&p, &SUMMIT, &[19, 38, 76], Variant::Dace);
        let eff = parallel_efficiency(&series);
        assert!((eff[0] - 1.0).abs() < 1e-12);
        assert!(eff.iter().all(|&e| e <= 1.0 + 1e-9));
    }
}
