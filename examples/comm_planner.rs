//! Communication planner: given a device and a cluster, compare the OMEN
//! and DaCe (communication-avoiding) SSE exchange volumes and search the
//! optimal `(TE, TA)` tiling (§4.1 / Tables 4–5) — the planning workflow a
//! performance engineer runs before submitting a job.
//!
//! ```sh
//! cargo run --release --example comm_planner [nkz] [procs]
//! ```

use dace_omen::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nkz: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(7);
    let procs: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1792);

    let p = SimParams::paper_si_4864(nkz);
    println!("== SSE communication planner ==");
    println!(
        "device: NA={}, NB={}, Norb={}, NE={}, Nw={}, Nkz=Nqz={}",
        p.na, p.nb, p.norb, p.ne, p.nw, p.nkz
    );
    println!("processes: {procs}\n");

    let tib = |b: f64| b / (1u64 << 40) as f64;

    let omen = volume::omen_total_bytes(&p, procs);
    println!("OMEN (momentum x energy decomposition):");
    println!(
        "  G replication : {:8.2} TiB",
        tib(volume::omen_g_bytes_per_proc(&p, procs) * procs as f64)
    );
    println!(
        "  D / Pi rounds : {:8.2} TiB",
        tib(volume::omen_d_bytes_per_proc(&p) * procs as f64)
    );
    println!("  total         : {:8.2} TiB\n", tib(omen));

    match optimal_tiling(&p, procs) {
        Some(t) => {
            println!("DaCe (energy x atom tiling, exhaustive search):");
            println!("  optimal tiling: TE = {}, TA = {}", t.te, t.ta);
            println!("  total         : {:8.3} TiB", tib(t.total_bytes));
            println!("  reduction     : {:8.1}x\n", omen / t.total_bytes);
            // Show the neighborhood of the optimum.
            println!("  {:>6} {:>6} {:>12}", "TE", "TA", "TiB");
            let mut shown = 0;
            for te in 1..=p.nkz.max(64) {
                if !procs.is_multiple_of(te) {
                    continue;
                }
                let ta = procs / te;
                if ta > p.na || te > p.ne {
                    continue;
                }
                println!(
                    "  {te:>6} {ta:>6} {:>12.3}{}",
                    tib(volume::dace_total_bytes(&p, te, ta)),
                    if (te, ta) == (t.te, t.ta) {
                        "  <- optimal"
                    } else {
                        ""
                    }
                );
                shown += 1;
                if shown > 12 {
                    break;
                }
            }
        }
        None => println!("no feasible (TE, TA) tiling for {procs} processes"),
    }

    // Memory feasibility on both machines (§5.2.1).
    println!("\nper-rank memory feasibility:");
    use dace_omen::model::memory;
    for m in [&PIZ_DAINT, &SUMMIT] {
        let omen_gb = memory::omen_bytes_per_rank(&p, procs) / 1e9;
        let fits_omen = memory::fits(omen_gb * 1e9, m, memory::node_memory(m));
        let dace_gb = optimal_tiling(&p, procs)
            .map(|t| memory::dace_bytes_per_rank(&p, t.te, t.ta) / 1e9)
            .unwrap_or(f64::NAN);
        let fits_dace = memory::fits(dace_gb * 1e9, m, memory::node_memory(m));
        println!(
            "  {:<10}: OMEN {omen_gb:7.1} GB/rank [{}] | DaCe {dace_gb:7.2} GB/rank [{}]",
            m.name,
            if fits_omen { "fits" } else { "DOES NOT FIT" },
            if fits_dace { "fits" } else { "DOES NOT FIT" },
        );
    }

    // Predicted iteration times on both machines.
    println!("\npredicted time per GF+SSE iteration (alpha-beta model):");
    for m in [&PIZ_DAINT, &SUMMIT] {
        let nodes = (procs / m.procs_per_node).max(1);
        let omen_t = predict(&p, m, nodes, Variant::Omen);
        let dace_t = predict(&p, m, nodes, Variant::Dace);
        println!(
            "  {:<10} ({} nodes): OMEN {:9.1} s | DaCe {:8.1} s | speedup {:5.1}x",
            m.name,
            nodes,
            omen_t.total(),
            dace_t.total(),
            omen_t.total() / dace_t.total()
        );
    }
}
