//! Data decompositions: OMEN's momentum×energy split and DaCe's
//! energy×atom tiling (§4.1).

use qt_core::params::SimParams;
use std::ops::Range;

/// Balanced contiguous 1-D block partition of `total` items into `parts`.
#[derive(Clone, Copy, Debug)]
pub struct BlockPartition {
    pub total: usize,
    pub parts: usize,
}

impl BlockPartition {
    /// With `parts > total` the trailing `parts - total` parts are
    /// well-defined zero-unit parts: their `range()` is the empty
    /// `total..total` and `owner()` never answers them.
    pub fn new(total: usize, parts: usize) -> Self {
        assert!(parts > 0, "need at least one part");
        BlockPartition { total, parts }
    }

    /// Half-open index range of part `i`. The first `total % parts` parts
    /// get one extra element; with `parts > total` the parts past `total`
    /// are empty (`total..total`).
    pub fn range(&self, i: usize) -> Range<usize> {
        assert!(i < self.parts);
        let base = self.total / self.parts;
        let extra = self.total % self.parts;
        let start = i * base + i.min(extra);
        let len = base + usize::from(i < extra);
        start..start + len
    }

    /// Which part owns global index `idx`.
    pub fn owner(&self, idx: usize) -> usize {
        assert!(idx < self.total);
        let base = self.total / self.parts;
        let extra = self.total % self.parts;
        let fat = (base + 1) * extra; // indices covered by the fat parts
        if idx < fat {
            idx / (base + 1)
        } else {
            extra + (idx - fat) / base.max(1)
        }
    }

    pub fn len(&self, i: usize) -> usize {
        self.range(i).len()
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

/// OMEN's natural decomposition: processes split the energy axis
/// (momentum kept whole per process at this granularity).
#[derive(Clone, Copy, Debug)]
pub struct OmenDecomp {
    pub energy: BlockPartition,
}

impl OmenDecomp {
    pub fn new(p: &SimParams, procs: usize) -> Self {
        OmenDecomp {
            energy: BlockPartition::new(p.ne, procs),
        }
    }

    /// Owner rank of the `(qz, ω)` phonon point (round-robin).
    pub fn d_owner(&self, p: &SimParams, q: usize, w: usize) -> usize {
        (q * p.nw + w) % self.energy.parts
    }
}

/// OMEN's full three-level MPI distribution (§2.1): momentum groups ×
/// energy chunks × spatial (RGF block) ranks. The paper's production runs
/// validated this layout up to 95k cores; the communication analysis of
/// §4.1 collapses the momentum and spatial levels and keeps the energy
/// split, which is what [`OmenDecomp`] models.
#[derive(Clone, Copy, Debug)]
pub struct ThreeLevelDecomp {
    /// Partition of the `Nkz` momentum points.
    pub momentum: BlockPartition,
    /// Partition of the `NE` energies within one momentum group.
    pub energy: BlockPartition,
    /// Spatial ranks sharing one `(kz, E)` RGF solve.
    pub spatial: usize,
}

impl ThreeLevelDecomp {
    pub fn new(p: &SimParams, k_groups: usize, e_groups: usize, spatial: usize) -> Self {
        assert!(spatial >= 1);
        ThreeLevelDecomp {
            momentum: BlockPartition::new(p.nkz, k_groups),
            energy: BlockPartition::new(p.ne, e_groups),
            spatial,
        }
    }

    /// Total rank count.
    pub fn procs(&self) -> usize {
        self.momentum.parts * self.energy.parts * self.spatial
    }

    /// Rank of `(momentum group, energy group, spatial index)`.
    pub fn rank(&self, kg: usize, eg: usize, s: usize) -> usize {
        (kg * self.energy.parts + eg) * self.spatial + s
    }

    /// Inverse of [`ThreeLevelDecomp::rank`].
    pub fn coords(&self, rank: usize) -> (usize, usize, usize) {
        let s = rank % self.spatial;
        let rest = rank / self.spatial;
        (rest / self.energy.parts, rest % self.energy.parts, s)
    }

    /// The spatial group of ranks that collectively own the `(kz, E)` point.
    pub fn owners_of_point(&self, kz: usize, e: usize) -> std::ops::Range<usize> {
        let base = self.rank(self.momentum.owner(kz), self.energy.owner(e), 0);
        base..base + self.spatial
    }
}

/// DaCe's communication-avoiding tiling: `TE` energy × `TA` atom tiles.
#[derive(Clone, Copy, Debug)]
pub struct DaceDecomp {
    pub te: usize,
    pub ta: usize,
    pub energy: BlockPartition,
    pub atoms: BlockPartition,
}

impl DaceDecomp {
    pub fn new(p: &SimParams, te: usize, ta: usize) -> Self {
        DaceDecomp {
            te,
            ta,
            energy: BlockPartition::new(p.ne, te),
            atoms: BlockPartition::new(p.na, ta),
        }
    }

    pub fn procs(&self) -> usize {
        self.te * self.ta
    }

    /// Rank of tile `(i, j)`.
    pub fn rank(&self, i: usize, j: usize) -> usize {
        i * self.ta + j
    }

    /// Tile coordinates of `rank`.
    pub fn coords(&self, rank: usize) -> (usize, usize) {
        (rank / self.ta, rank % self.ta)
    }

    /// Energies needed by energy-tile `i`, including the `Nω` halo on both
    /// sides (for the `E ∓ ω` emission/absorption reads — the `2Nω` term of
    /// the volume formula), clamped to the grid.
    pub fn energy_halo(&self, i: usize, nw: usize) -> Range<usize> {
        let r = self.energy.range(i);
        r.start.saturating_sub(nw)..(r.end + nw).min(self.energy.total)
    }

    /// Atoms needed by atom-tile `j`: the tile widened by the neighbor
    /// window `NB/2` on each side (the paper's indirection model), clamped.
    pub fn atom_window(&self, j: usize, nb: usize, na: usize) -> Range<usize> {
        let r = self.atoms.range(j);
        r.start.saturating_sub(nb / 2 + nb % 2)..(r.end + nb / 2 + nb % 2).min(na)
    }
}

/// Weighted block assignment: map `weights.len()` work units onto `parts`
/// ranks so the maximum per-rank weight is near-minimal.
///
/// Greedy LPT (longest processing time first) — units sorted by
/// `(weight desc, id asc)`, each placed on the currently lightest rank
/// (ties toward the lowest rank id) — followed by bounded
/// boundary-refinement passes that move a unit off the heaviest rank onto
/// the lightest when that strictly shrinks the makespan (the same
/// greedy-then-refine structure METIS uses for weighted partitions).
///
/// Invariants:
/// * **exact partition** — every unit is assigned to exactly one rank in
///   `0..parts`;
/// * **LPT bound** — `max_load ≤ total/parts + max_weight` (list
///   scheduling guarantee; refinement only improves it);
/// * **determinism** — the result is a pure function of `(weights,
///   parts)`: ties break on ids, no randomness, and relabeling
///   equal-weight units permutes the assignment without changing the
///   per-rank load multiset.
///
/// Non-finite or negative weights are treated as zero so a poisoned cost
/// model degrades to "some balanced assignment" instead of poisoning the
/// schedule.
pub fn partition_weighted(weights: &[f64], parts: usize) -> Vec<usize> {
    assert!(parts > 0, "need at least one part");
    let w = |u: usize| {
        let x = weights[u];
        if x.is_finite() && x > 0.0 {
            x
        } else {
            0.0
        }
    };
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| w(b).partial_cmp(&w(a)).unwrap().then(a.cmp(&b)));

    let mut owner = vec![0usize; weights.len()];
    let mut load = vec![0.0f64; parts];
    for &u in &order {
        let r = (0..parts)
            .min_by(|&a, &b| load[a].partial_cmp(&load[b]).unwrap().then(a.cmp(&b)))
            .expect("parts > 0");
        owner[u] = r;
        load[r] += w(u);
    }

    // Boundary refinement: relocate a unit from the heaviest rank to the
    // lightest while it strictly improves the makespan. Deterministic and
    // bounded: each pass scans the heaviest rank's units in id order and
    // the loop stops at the first pass with no improving move.
    for _ in 0..weights.len().max(8) {
        let hi = (0..parts)
            .max_by(|&a, &b| load[a].partial_cmp(&load[b]).unwrap().then(b.cmp(&a)))
            .expect("parts > 0");
        let lo = (0..parts)
            .min_by(|&a, &b| load[a].partial_cmp(&load[b]).unwrap().then(a.cmp(&b)))
            .expect("parts > 0");
        let mut moved = false;
        for (u, o) in owner.iter_mut().enumerate() {
            if *o != hi {
                continue;
            }
            let wu = w(u);
            // Strict improvement of the pairwise makespan.
            if load[lo] + wu < load[hi] - 1e-12 {
                *o = lo;
                load[hi] -= wu;
                load[lo] += wu;
                moved = true;
                break;
            }
        }
        if !moved {
            break;
        }
    }
    owner
}

/// Survivor re-tiling of the CA decomposition.
///
/// The DaCe tiling assigns one *work unit* per original rank: the tile
/// `(i, j) = coords(r)`, the GF energy chunk `r` of `OmenDecomp`, and the
/// `(q, ω)` phonon points with `(q·Nω + ω) mod P == r`. Elasticity keeps
/// the original `P = TE·TA` unit grid fixed — so halos, volumes, and
/// results stay comparable across deaths — and maps each unit to a
/// *surviving* original rank. On a death, only the dead rank's units
/// migrate (minimal movement), each to the currently least-loaded
/// survivor (ties broken toward the lowest rank id), so the reassignment
/// is deterministic and balanced.
#[derive(Clone, Debug)]
pub struct ElasticTiling {
    /// The original (pre-death) tile grid; never shrinks.
    pub dec: DaceDecomp,
    /// Sorted original ids of the ranks still alive.
    pub survivors: Vec<usize>,
    /// `owner[u]` = original rank id currently responsible for work unit
    /// `u` (a tile index `i·TA + j`). Meaningless once `survivors` is
    /// empty — callers must check [`ElasticTiling::world_size`] first.
    pub owner: Vec<usize>,
}

impl ElasticTiling {
    /// The fault-free tiling: every original rank owns its own unit.
    pub fn new(p: &SimParams, te: usize, ta: usize) -> Self {
        let dec = DaceDecomp::new(p, te, ta);
        let procs = dec.procs();
        ElasticTiling {
            dec,
            survivors: (0..procs).collect(),
            owner: (0..procs).collect(),
        }
    }

    /// Static tiling of the full `TE·TA` unit grid over a *smaller* world:
    /// the first `world` ranks are alive and each owns a contiguous block
    /// of units (uniform block assignment — the baseline the adaptive
    /// partitioner is measured against). Requires `world ≥ 1`; with
    /// `world > TE·TA` the surplus ranks own zero units.
    pub fn uniform(p: &SimParams, te: usize, ta: usize, world: usize) -> Self {
        let dec = DaceDecomp::new(p, te, ta);
        let units = dec.procs();
        let bp = BlockPartition::new(units, world);
        ElasticTiling {
            dec,
            survivors: (0..world).collect(),
            owner: (0..units).map(|u| bp.owner(u)).collect(),
        }
    }

    /// Weighted tiling: units assigned to the first `world` ranks by
    /// [`partition_weighted`] over per-unit costs. Same unit grid as
    /// [`ElasticTiling::uniform`], so tile geometries — and therefore the
    /// computed observables — are identical; only the unit→rank map
    /// changes.
    pub fn weighted(p: &SimParams, te: usize, ta: usize, world: usize, weights: &[f64]) -> Self {
        let dec = DaceDecomp::new(p, te, ta);
        let units = dec.procs();
        assert_eq!(weights.len(), units, "one weight per work unit");
        ElasticTiling {
            dec,
            survivors: (0..world).collect(),
            owner: partition_weighted(weights, world),
        }
    }

    /// Re-partition all units over the *current* survivors using fresh
    /// per-unit weights. Returns the units whose owner changed (ascending)
    /// — the migration set the caller must move state for. No-op (empty
    /// return) when there are no survivors.
    pub fn rebalance(&mut self, weights: &[f64]) -> Vec<usize> {
        assert_eq!(weights.len(), self.owner.len(), "one weight per work unit");
        if self.survivors.is_empty() {
            return Vec::new();
        }
        let parts = partition_weighted(weights, self.survivors.len());
        let mut moved = Vec::new();
        for (u, part) in parts.into_iter().enumerate() {
            let new_owner = self.survivors[part];
            if self.owner[u] != new_owner {
                self.owner[u] = new_owner;
                moved.push(u);
            }
        }
        moved
    }

    /// Number of work units (= original world size `TE·TA`).
    pub fn procs(&self) -> usize {
        self.owner.len()
    }

    /// Number of surviving ranks (= the shrunken world size).
    pub fn world_size(&self) -> usize {
        self.survivors.len()
    }

    /// Is original rank `rank` still alive?
    pub fn is_survivor(&self, rank: usize) -> bool {
        self.survivors.binary_search(&rank).is_ok()
    }

    /// World slot of surviving original rank `rank`.
    pub fn slot_of(&self, rank: usize) -> usize {
        self.survivors
            .binary_search(&rank)
            .expect("rank is a survivor")
    }

    /// World slot of the survivor owning work unit `unit`.
    pub fn owner_slot(&self, unit: usize) -> usize {
        self.slot_of(self.owner[unit])
    }

    /// Work units owned by original rank `rank`, ascending.
    pub fn units_of(&self, rank: usize) -> Vec<usize> {
        (0..self.owner.len())
            .filter(|&u| self.owner[u] == rank)
            .collect()
    }

    /// Units currently owned by original rank `rank`.
    pub fn load(&self, rank: usize) -> usize {
        self.owner.iter().filter(|&&o| o == rank).count()
    }

    /// Remove a dead rank and migrate *only its* units, each to the
    /// least-loaded survivor at that moment (ties → lowest rank id).
    /// Returns the migrated unit ids, ascending. With no survivors left
    /// the orphan units stay formally assigned to `dead`; the world size
    /// is then 0 and no work can run.
    pub fn remove_rank(&mut self, dead: usize) -> Vec<usize> {
        if let Ok(pos) = self.survivors.binary_search(&dead) {
            self.survivors.remove(pos);
        }
        let orphans = self.units_of(dead);
        if self.survivors.is_empty() {
            return orphans;
        }
        for &u in &orphans {
            let new_owner = self
                .survivors
                .iter()
                .copied()
                .min_by_key(|&r| (self.load(r), r))
                .expect("nonempty survivors");
            self.owner[u] = new_owner;
        }
        orphans
    }

    /// Remove a dead rank *without* migrating its units: degraded-mode
    /// abandonment. The orphans stay mapped to `dead` and report as not
    /// live; the elastic scheme skips them (their tiles complete as
    /// zeros). Returns the abandoned unit ids, ascending.
    pub fn abandon_rank(&mut self, dead: usize) -> Vec<usize> {
        if let Ok(pos) = self.survivors.binary_search(&dead) {
            self.survivors.remove(pos);
        }
        self.units_of(dead)
    }

    /// Is work unit `unit` still backed by a surviving rank? Abandoned
    /// units (degraded mode) report `false`.
    pub fn is_live_unit(&self, unit: usize) -> bool {
        self.is_survivor(self.owner[unit])
    }

    /// Live units, ascending — the units that will actually be computed.
    pub fn live_units(&self) -> Vec<usize> {
        (0..self.owner.len())
            .filter(|&u| self.is_live_unit(u))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_exactly() {
        for (total, parts) in [(10, 3), (16, 4), (7, 7), (100, 9)] {
            let bp = BlockPartition::new(total, parts);
            let mut covered = vec![false; total];
            for i in 0..parts {
                for idx in bp.range(i) {
                    assert!(!covered[idx], "overlap at {idx}");
                    covered[idx] = true;
                    assert_eq!(bp.owner(idx), i, "owner({idx})");
                }
            }
            assert!(covered.iter().all(|&c| c), "gap in cover");
            // Balanced: sizes differ by at most one.
            let sizes: Vec<usize> = (0..parts).map(|i| bp.len(i)).collect();
            let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(mx - mn <= 1);
        }
    }

    #[test]
    fn partition_with_more_parts_than_items() {
        // parts > total: the first `total` parts own one item each, the
        // rest are well-defined empty parts, and owner()/range() agree.
        for (total, parts) in [(3, 5), (1, 8), (0, 4), (7, 7)] {
            let bp = BlockPartition::new(total, parts);
            let mut covered = vec![false; total];
            for i in 0..parts {
                let r = bp.range(i);
                if i < total {
                    assert_eq!(r.len(), usize::from(total > 0).min(1));
                } else {
                    assert!(r.is_empty(), "part {i} of ({total},{parts}) not empty");
                    assert_eq!(r, total..total);
                }
                for idx in r {
                    assert!(!covered[idx]);
                    covered[idx] = true;
                    assert_eq!(bp.owner(idx), i, "owner({idx}) vs range({i})");
                }
            }
            assert!(covered.iter().all(|&c| c), "gap in cover");
        }
    }

    #[test]
    fn weighted_partition_balances_skew() {
        // One heavy unit plus many light ones: LPT must isolate the heavy
        // unit and spread the rest.
        let mut w = vec![1.0; 12];
        w[0] = 8.0;
        let owner = partition_weighted(&w, 4);
        assert_eq!(owner.len(), 12);
        assert!(owner.iter().all(|&r| r < 4));
        let load = |r: usize| -> f64 { (0..12).filter(|&u| owner[u] == r).map(|u| w[u]).sum() };
        let loads: Vec<f64> = (0..4).map(load).collect();
        let total: f64 = w.iter().sum();
        let max_w = 8.0;
        let max_load = loads.iter().cloned().fold(0.0, f64::max);
        // List-scheduling guarantee.
        assert!(max_load <= total / 4.0 + max_w + 1e-9, "{loads:?}");
        // The heavy rank should get few or no extra light units.
        let heavy_rank = owner[0];
        assert!(load(heavy_rank) <= 9.0, "{loads:?}");
    }

    #[test]
    fn weighted_partition_is_deterministic() {
        let w: Vec<f64> = (0..20).map(|u| 1.0 + (u % 5) as f64).collect();
        let a = partition_weighted(&w, 3);
        let b = partition_weighted(&w, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_partition_tolerates_bad_weights() {
        let w = [f64::NAN, -3.0, f64::INFINITY, 1.0, 2.0];
        let owner = partition_weighted(&w, 2);
        assert_eq!(owner.len(), 5);
        assert!(owner.iter().all(|&r| r < 2));
    }

    #[test]
    fn elastic_uniform_matches_block_partition() {
        let p = SimParams::test_small();
        let t = ElasticTiling::uniform(&p, 3, 4, 5);
        assert_eq!(t.procs(), 12);
        assert_eq!(t.world_size(), 5);
        let bp = BlockPartition::new(12, 5);
        for u in 0..12 {
            assert_eq!(t.owner[u], bp.owner(u));
            assert!(t.is_live_unit(u));
        }
    }

    #[test]
    fn elastic_weighted_keeps_grid_and_moves_owners() {
        let p = SimParams::test_small();
        let mut w = vec![1.0; 12];
        w[0] = 10.0;
        let t = ElasticTiling::weighted(&p, 3, 4, 4, &w);
        assert_eq!(t.procs(), 12);
        assert_eq!(t.world_size(), 4);
        // Same unit grid as uniform — tile geometry untouched.
        let u = ElasticTiling::uniform(&p, 3, 4, 4);
        assert_eq!(t.dec.procs(), u.dec.procs());
        // The heavy unit's rank carries less of the light load.
        let heavy = t.owner[0];
        assert!(t.load(heavy) <= 2, "{:?}", t.owner);
    }

    #[test]
    fn rebalance_reports_exactly_the_moved_units() {
        let p = SimParams::test_small();
        let mut t = ElasticTiling::uniform(&p, 3, 4, 4);
        let before = t.owner.clone();
        let mut w = vec![1.0; 12];
        // Make rank 0's block (units 0..3) heavy so some of it migrates.
        w[0] = 6.0;
        w[1] = 6.0;
        let moved = t.rebalance(&w);
        for u in 0..12 {
            if moved.contains(&u) {
                assert_ne!(t.owner[u], before[u]);
            } else {
                assert_eq!(t.owner[u], before[u]);
            }
        }
        // Rebalance with identical weights is idempotent.
        let again = t.rebalance(&w);
        assert!(again.is_empty(), "{again:?}");
    }

    #[test]
    fn dace_grid_roundtrip() {
        let p = SimParams::test_small();
        let d = DaceDecomp::new(&p, 3, 4);
        assert_eq!(d.procs(), 12);
        for r in 0..12 {
            let (i, j) = d.coords(r);
            assert_eq!(d.rank(i, j), r);
        }
    }

    #[test]
    fn halos_clamp_at_boundaries() {
        let p = SimParams::test_small(); // ne=12, na=16, nw=3, nb=4
        let d = DaceDecomp::new(&p, 3, 4);
        let h0 = d.energy_halo(0, p.nw);
        assert_eq!(h0.start, 0);
        let h1 = d.energy_halo(1, p.nw);
        assert_eq!(h1.start, d.energy.range(1).start - p.nw);
        assert_eq!(h1.end, d.energy.range(1).end + p.nw);
        let hlast = d.energy_halo(2, p.nw);
        assert_eq!(hlast.end, p.ne, "upper halo clamps at the grid end");
        let w0 = d.atom_window(0, p.nb, p.na);
        assert_eq!(w0.start, 0);
        let w3 = d.atom_window(3, p.nb, p.na);
        assert_eq!(w3.end, p.na);
        let w1 = d.atom_window(1, p.nb, p.na);
        assert_eq!(w1.start, d.atoms.range(1).start - 2);
        assert_eq!(w1.end, d.atoms.range(1).end + 2);
    }

    #[test]
    fn three_level_rank_bijection() {
        let p = SimParams::test_small(); // nkz=3, ne=12
        let d = ThreeLevelDecomp::new(&p, 3, 4, 2);
        assert_eq!(d.procs(), 24);
        for r in 0..d.procs() {
            let (kg, eg, s) = d.coords(r);
            assert_eq!(d.rank(kg, eg, s), r);
        }
        // Every (kz, E) point has exactly `spatial` owners, and all points
        // are covered.
        let mut owned = vec![0usize; d.procs()];
        for kz in 0..p.nkz {
            for e in 0..p.ne {
                let o = d.owners_of_point(kz, e);
                assert_eq!(o.len(), 2);
                for r in o {
                    owned[r] += 1;
                }
            }
        }
        // Balanced: every rank owns the same number of points (dims divide).
        assert!(owned.iter().all(|&c| c == owned[0]), "{owned:?}");
    }

    #[test]
    fn elastic_tiling_migrates_only_dead_units() {
        let p = SimParams::test_small();
        let mut t = ElasticTiling::new(&p, 3, 4);
        assert_eq!(t.world_size(), 12);
        let before = t.owner.clone();
        let moved = t.remove_rank(5);
        assert_eq!(moved, vec![5], "exactly the dead rank's unit migrates");
        for u in 0..12 {
            if u != 5 {
                assert_eq!(t.owner[u], before[u], "survivor units must not move");
            }
        }
        assert!(!t.is_survivor(5));
        assert!(t.is_survivor(t.owner[5]));
        // A second death: the doubly-loaded rank is skipped by the
        // least-loaded rule.
        let heavy = t.owner[5];
        let moved2 = t.remove_rank(7);
        assert_eq!(moved2, vec![7]);
        assert_ne!(t.owner[7], heavy, "least-loaded survivor takes the orphan");
    }

    #[test]
    fn elastic_tiling_survives_to_the_last_rank() {
        let p = SimParams::test_small();
        let mut t = ElasticTiling::new(&p, 2, 2);
        for dead in [0, 2, 3] {
            t.remove_rank(dead);
        }
        assert_eq!(t.survivors, vec![1]);
        assert!(t.owner.iter().all(|&o| o == 1), "{:?}", t.owner);
        let orphans = t.remove_rank(1);
        assert_eq!(orphans, vec![0, 1, 2, 3]);
        assert_eq!(t.world_size(), 0);
    }

    #[test]
    fn omen_d_owner_round_robin() {
        let p = SimParams::test_small();
        let d = OmenDecomp::new(&p, 4);
        let owners: Vec<usize> = (0..p.nqz)
            .flat_map(|q| (0..p.nw).map(move |w| (q, w)))
            .map(|(q, w)| d.d_owner(&p, q, w))
            .collect();
        assert!(owners.iter().all(|&o| o < 4));
        for r in 0..4 {
            assert!(owners.contains(&r));
        }
    }
}
