//! The global phase table spans record into.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Accumulated statistics for one phase path (e.g. `"sse/sigma/dace"`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Number of spans closed on this path.
    pub calls: u64,
    /// Summed span duration in nanoseconds. For `enter_global` spans on
    /// sequential orchestration code this is wall-time; for worker-thread
    /// spans it is aggregate busy time across threads.
    pub wall_ns: u64,
    /// Real flops attributed to this phase (nested phases double-count by
    /// design — the table is hierarchical, not a partition).
    pub flops: u64,
    /// Communicated bytes attributed to this phase.
    pub bytes: u64,
    /// Heap bytes allocated while the phase was open (non-zero only when
    /// a counting global allocator feeds `counters::add_alloc`).
    pub alloc_bytes: u64,
    /// Heap allocations performed while the phase was open.
    pub alloc_count: u64,
}

static PHASES: Mutex<BTreeMap<&'static str, PhaseStat>> = Mutex::new(BTreeMap::new());

/// Fold one closed span into the table.
pub fn record(
    path: &'static str,
    wall_ns: u64,
    flops: u64,
    bytes: u64,
    alloc_bytes: u64,
    alloc_count: u64,
) {
    let mut map = PHASES.lock().unwrap();
    let stat = map.entry(path).or_default();
    stat.calls += 1;
    stat.wall_ns += wall_ns;
    stat.flops += flops;
    stat.bytes += bytes;
    stat.alloc_bytes += alloc_bytes;
    stat.alloc_count += alloc_count;
}

/// Copy of the full phase table, keyed by path.
pub fn snapshot() -> BTreeMap<String, PhaseStat> {
    PHASES
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.to_string(), *v))
        .collect()
}

/// Statistics for a single phase, if any span closed on it.
pub fn phase(path: &str) -> Option<PhaseStat> {
    PHASES.lock().unwrap().get(path).copied()
}

/// Clear the phase table.
pub fn reset_phases() {
    PHASES.lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_path() {
        record("test/registry/a", 10, 100, 1, 1024, 4);
        record("test/registry/a", 20, 200, 2, 1024, 4);
        let s = phase("test/registry/a").unwrap();
        assert_eq!(s.calls, 2);
        assert_eq!(s.wall_ns, 30);
        assert_eq!(s.flops, 300);
        assert_eq!(s.bytes, 3);
        assert_eq!(s.alloc_bytes, 2048);
        assert_eq!(s.alloc_count, 8);
        assert!(snapshot().contains_key("test/registry/a"));
    }
}
