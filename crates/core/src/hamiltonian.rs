//! Synthetic DFT-like electron Hamiltonian and phonon dynamical matrix.
//!
//! Substitution (DESIGN.md §4): production OMEN consumes `H(kz)`, `S(kz)`
//! from CP2K/SIESTA and `Φ(qz)` from DFPT. We generate structurally
//! faithful equivalents:
//!
//! * Hermitian block tri-diagonal `H(kz)` with `Norb` orbitals per atom,
//!   nearest-neighbor couplings decaying with bond length, and a periodic
//!   `2·cos(kz)` z-coupling (the momentum dependence of the folded
//!   dimension);
//! * an overlap `S(kz)` close to identity (localized, non-orthogonal GTO
//!   basis);
//! * Hamiltonian derivative blocks `∇H[a, b, i]` with the antisymmetry
//!   `∇H_ba = −(∇H_ab)†` of a bond-vector derivative;
//! * a dynamical matrix `Φ(qz)` obeying the acoustic sum rule at `qz = 0`.
//!
//! All entries are deterministic (hash-based), so every test and benchmark
//! is reproducible without carrying input files.

use crate::device::Device;
use crate::params::{SimParams, N3D};
use qt_linalg::{c64, BlockTridiag, Matrix, Tensor};

/// Deterministic 64-bit mix (splitmix64) used to synthesize couplings.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform value in `[-1, 1)` from a hash key.
#[inline]
fn uniform(key: u64) -> f64 {
    (mix(key) >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
}

/// Seeded lattice disorder: deterministic vacancies (site deletion) and
/// on-site energy perturbation. Both draws are keyed on `(seed, site)`
/// through the same splitmix64 hash as the clean model, so a disordered
/// device is exactly reproducible from its seed — disordered runs can be
/// golden-tested, and the numerical pathology they provoke (an isolated
/// resonant level at zero device broadening is a genuinely singular RGF
/// block) is the *same* pathology on every run.
///
/// The two halves of a vacancy live in different builders: the bond
/// pruning is applied to the [`Device`] ([`Device::delete_sites`] with
/// [`Disorder::vacancies`]), the dangling level's pinned on-site energy in
/// [`ElectronModel::onsite`]. [`crate::scf::Simulation::disordered`] wires
/// both from one spec.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Disorder {
    /// Seed of every per-site draw.
    pub seed: u64,
    /// Fraction of sites deleted (vacancies), in `[0, 1]`.
    pub vacancy_fraction: f64,
    /// On-site energy perturbation amplitude (eV) on surviving sites;
    /// each site's orbitals shift together by `amplitude · u(site)` with
    /// `u ∈ [-1, 1)`.
    pub onsite_amplitude: f64,
    /// Energy (eV) the dangling level of a vacancy is pinned to. Placing
    /// it exactly on an energy grid point (with `device_eta = 0`) makes
    /// the vacancy's decoupled diagonal exactly singular there — the
    /// legitimate `SingularBlock` the quarantine machinery exists for.
    pub vacancy_level: f64,
}

impl Disorder {
    /// Uniform draw in `[0, 1)` for a `(seed, site, salt)` key.
    fn draw(&self, site: usize, salt: u64) -> f64 {
        let key = self
            .seed
            .wrapping_mul(0x9E37)
            .wrapping_add((site as u64) << 16)
            ^ salt;
        (mix(key) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Is `site` deleted under this spec?
    pub fn is_vacant(&self, site: usize) -> bool {
        self.vacancy_fraction > 0.0 && self.draw(site, 0x7ACA) < self.vacancy_fraction
    }

    /// All vacant sites among `0..na`, ascending.
    pub fn vacancies(&self, na: usize) -> Vec<usize> {
        (0..na).filter(|&a| self.is_vacant(a)).collect()
    }

    /// On-site energy shift (eV) of a surviving `site`.
    pub fn onsite_shift(&self, site: usize) -> f64 {
        self.onsite_amplitude * (2.0 * self.draw(site, 0x0514) - 1.0)
    }
}

/// Electron structure generator.
#[derive(Clone, Debug)]
pub struct ElectronModel {
    pub norb: usize,
    /// Onsite orbital energy ladder spacing (eV).
    pub onsite_spacing: f64,
    /// Base hopping strength (eV).
    pub hopping: f64,
    /// z-direction (periodic) coupling strength (eV).
    pub z_coupling: f64,
    /// Overlap magnitude for neighbor pairs.
    pub overlap: f64,
    /// Random seed folded into every coupling.
    pub seed: u64,
    /// Seeded defect/vacancy disorder; `None` is the pristine lattice.
    pub disorder: Option<Disorder>,
}

impl Default for ElectronModel {
    fn default() -> Self {
        ElectronModel {
            norb: 2,
            onsite_spacing: 0.35,
            hopping: 0.8,
            z_coupling: 0.15,
            overlap: 0.04,
            seed: 0x5EED,
            disorder: None,
        }
    }
}

impl ElectronModel {
    pub fn for_params(p: &SimParams) -> Self {
        ElectronModel {
            norb: p.norb,
            ..Default::default()
        }
    }

    /// Hermitian coupling block between neighbor atoms `a != b`
    /// (`H_ab`; caller must place `H_ba = H_ab†`).
    fn coupling(&self, dev: &Device, a: usize, b: usize) -> Matrix {
        let (lo, hi) = (a.min(b), a.max(b));
        let decay = (-1.2 * (dev.distance(a, b) - 0.5)).exp();
        let t = self.hopping * decay;
        let m = Matrix::from_fn(self.norb, self.norb, |o1, o2| {
            let key = self
                .seed
                .wrapping_mul(31)
                .wrapping_add((lo as u64) << 40)
                .wrapping_add((hi as u64) << 20)
                .wrapping_add((o1 * self.norb + o2) as u64);
            c64(
                t * (0.6 + 0.4 * uniform(key)),
                0.3 * t * uniform(key ^ 0xABCD),
            )
        });
        if a <= b {
            m
        } else {
            m.dagger()
        }
    }

    /// Onsite block of atom `a` (Hermitian), including the `2·cos(kz)`
    /// periodic z-coupling. Under [`Disorder`], a vacant site's orbitals
    /// collapse to the pinned dangling level (no z dispersion — the site
    /// carries no bonds), and surviving sites pick up their seeded
    /// per-site shift.
    pub fn onsite(&self, a: usize, kz: f64) -> Matrix {
        if let Some(d) = self.disorder {
            if d.is_vacant(a) {
                return Matrix::scaled_identity(self.norb, c64(d.vacancy_level, 0.0));
            }
        }
        let shift = self.disorder.map_or(0.0, |d| d.onsite_shift(a));
        let mut m = Matrix::zeros(self.norb, self.norb);
        for o in 0..self.norb {
            let eps = self.onsite_spacing * (o as f64 - (self.norb - 1) as f64 / 2.0)
                + 0.05 * uniform(self.seed ^ ((a as u64) << 8) ^ o as u64);
            m[(o, o)] = c64(eps + shift + 2.0 * self.z_coupling * kz.cos(), 0.0);
        }
        m
    }

    /// Assemble the block tri-diagonal `H(kz)`. Couplings are placed per
    /// symmetric pair (`H_ba = H_ab†`), so the result is Hermitian by
    /// construction.
    pub fn hamiltonian(&self, dev: &Device, kz: f64) -> BlockTridiag {
        let bs = dev.atoms_per_slab * self.norb;
        let mut h = BlockTridiag::zeros(dev.bnum, bs);
        let apb = dev.atoms_per_slab;
        for a in 0..dev.na {
            let sa = dev.slab_of(a);
            let ra = a % apb;
            let on = self.onsite(a, kz);
            h.diag_mut(sa)
                .set_submatrix(ra * self.norb, ra * self.norb, &on);
        }
        for (a, b) in dev.coupling_pairs() {
            let (sa, sb) = (dev.slab_of(a), dev.slab_of(b));
            let (ra, rb) = (a % apb, b % apb);
            let blk = self.coupling(dev, a, b); // a < b
            let dag = blk.dagger();
            if sb == sa {
                h.diag_mut(sa)
                    .set_submatrix(ra * self.norb, rb * self.norb, &blk);
                h.diag_mut(sa)
                    .set_submatrix(rb * self.norb, ra * self.norb, &dag);
            } else {
                // a < b and slab-major layout imply sb == sa + 1.
                h.upper_mut(sa)
                    .set_submatrix(ra * self.norb, rb * self.norb, &blk);
                h.lower_mut(sa)
                    .set_submatrix(rb * self.norb, ra * self.norb, &dag);
            }
        }
        h
    }

    /// Structural density of the off-diagonal coupling blocks of `H(kz)`:
    /// the fraction of entries a CSR image of `A_{n+1,n}` / `A_{n,n+1}`
    /// carries, averaged over the interfaces. Each cross-slab neighbor
    /// pair contributes one `Norb × Norb` submatrix to the upper block of
    /// its interface (and the adjoint below), so the estimate is exact for
    /// the structural pattern and an upper bound on the numerical density
    /// (hash-generated entries are nonzero almost surely, but a decayed
    /// coupling can underflow to zero).
    pub fn coupling_density(&self, dev: &Device) -> f64 {
        let bs = dev.atoms_per_slab * self.norb;
        let couplings = dev.bnum.saturating_sub(1);
        if couplings == 0 || bs == 0 {
            return 1.0;
        }
        let cross = dev
            .coupling_pairs()
            .into_iter()
            .filter(|&(a, b)| dev.slab_of(a) != dev.slab_of(b))
            .count();
        let filled = (cross * self.norb * self.norb) as f64;
        (filled / (couplings * bs * bs) as f64).min(1.0)
    }

    /// Assemble the overlap `S(kz)` (identity plus small neighbor overlap).
    pub fn overlap_matrix(&self, dev: &Device, _kz: f64) -> BlockTridiag {
        let bs = dev.atoms_per_slab * self.norb;
        let mut s = BlockTridiag::zeros(dev.bnum, bs);
        let apb = dev.atoms_per_slab;
        for n in 0..dev.bnum {
            *s.diag_mut(n) = Matrix::identity(bs);
        }
        for (a, b) in dev.coupling_pairs() {
            let (sa, sb) = (dev.slab_of(a), dev.slab_of(b));
            let (ra, rb) = (a % apb, b % apb);
            let v = self.overlap * (-1.5 * (dev.distance(a, b) - 0.5)).exp();
            let blk = Matrix::scaled_identity(self.norb, c64(v, 0.0));
            if sb == sa {
                s.diag_mut(sa)
                    .set_submatrix(ra * self.norb, rb * self.norb, &blk);
                s.diag_mut(sa)
                    .set_submatrix(rb * self.norb, ra * self.norb, &blk);
            } else {
                s.upper_mut(sa)
                    .set_submatrix(ra * self.norb, rb * self.norb, &blk);
                s.lower_mut(sa)
                    .set_submatrix(rb * self.norb, ra * self.norb, &blk);
            }
        }
        s
    }

    /// Hamiltonian derivative tensor `∇H[a, b_slot, i]` of shape
    /// `[NA, NB, 3, Norb, Norb]`, with `∇H_ba,i = −(∇H_ab,i)†`.
    pub fn dh_tensor(&self, dev: &Device) -> Tensor {
        let no = self.norb;
        let mut t = Tensor::zeros(&[dev.na, dev.nb, N3D, no, no]);
        for a in 0..dev.na {
            for slot in 0..dev.nb {
                let Some(b) = dev.neighbor(a, slot) else {
                    continue;
                };
                let dir = dev.bond_direction(a, b);
                let (lo, hi) = (a.min(b), a.max(b));
                // Hermitian kernel K_ab shared by the pair.
                let k = Matrix::from_fn(no, no, |o1, o2| {
                    let key = self
                        .seed
                        .wrapping_mul(77)
                        .wrapping_add((lo as u64) << 36)
                        .wrapping_add((hi as u64) << 16)
                        .wrapping_add((o1.min(o2) * no + o1.max(o2)) as u64);
                    let re = 0.12 * self.hopping * uniform(key);
                    let im = if o1 == o2 {
                        0.0
                    } else {
                        0.06 * self.hopping
                            * uniform(key ^ 0xF00D)
                            * if o1 < o2 { 1.0 } else { -1.0 }
                    };
                    c64(re, im)
                });
                // The antisymmetric bond direction carries the sign of the
                // derivative convention ∇H_ba = −(∇H_ab)†.
                for (i, &d) in dir.iter().enumerate() {
                    let block = k.scale(c64(d, 0.0));
                    let dst = t.inner_mut(&[a, slot, i]);
                    dst.copy_from_slice(block.as_slice());
                }
            }
        }
        t
    }
}

/// Phonon structure generator.
#[derive(Clone, Debug)]
pub struct PhononModel {
    /// Base spring constant (eV²; frequencies are in eV via ω² units).
    pub spring: f64,
    /// Periodic z-spring strength.
    pub z_spring: f64,
    pub seed: u64,
}

impl Default for PhononModel {
    fn default() -> Self {
        PhononModel {
            spring: 0.05,
            z_spring: 0.01,
            seed: 0xF0F0,
        }
    }
}

impl PhononModel {
    /// 3×3 spring block for the pair `a → b` (negative semidefinite
    /// contribution `−k·(ê⊗ê + 0.3·I)`).
    fn pair_block(&self, dev: &Device, a: usize, b: usize) -> Matrix {
        let dir = if a < b {
            dev.bond_direction(a, b)
        } else {
            dev.bond_direction(b, a)
        };
        let (lo, hi) = (a.min(b), a.max(b));
        let k = self.spring
            * (-(dev.distance(a, b) - 0.5)).exp()
            * (0.8 + 0.2 * uniform(self.seed ^ ((lo as u64) << 24) ^ hi as u64));
        Matrix::from_fn(N3D, N3D, |i, j| {
            let v = k * (dir[i] * dir[j] + if i == j { 0.3 } else { 0.0 });
            c64(-v, 0.0)
        })
    }

    /// Assemble the dynamical matrix `Φ(qz)`. At `qz = 0` each row of
    /// 3×3 blocks sums to zero (acoustic sum rule).
    pub fn dynamical(&self, dev: &Device, qz: f64) -> BlockTridiag {
        let bs = dev.atoms_per_slab * N3D;
        let mut phi = BlockTridiag::zeros(dev.bnum, bs);
        let apb = dev.atoms_per_slab;
        let mut onsite: Vec<Matrix> = vec![Matrix::zeros(N3D, N3D); dev.na];
        for (a, b) in dev.coupling_pairs() {
            let (sa, sb) = (dev.slab_of(a), dev.slab_of(b));
            let (ra, rb) = (a % apb, b % apb);
            let blk = self.pair_block(dev, a, b); // real symmetric
                                                  // Acoustic sum rule: each atom's onsite subtracts its incident
                                                  // pair blocks.
            onsite[a] -= &blk;
            onsite[b] -= &blk;
            if sb == sa {
                phi.diag_mut(sa).set_submatrix(ra * N3D, rb * N3D, &blk);
                phi.diag_mut(sa).set_submatrix(rb * N3D, ra * N3D, &blk);
            } else {
                phi.upper_mut(sa).set_submatrix(ra * N3D, rb * N3D, &blk);
                phi.lower_mut(sa).set_submatrix(rb * N3D, ra * N3D, &blk);
            }
        }
        for (a, mut on) in onsite.into_iter().enumerate() {
            let sa = dev.slab_of(a);
            let ra = a % apb;
            // Periodic z-springs: +2k_z·(1 − cos(qz)) lifts the acoustic
            // branch at finite qz while preserving the sum rule at qz = 0.
            for i in 0..N3D {
                on[(i, i)] += c64(2.0 * self.z_spring * (1.0 - qz.cos()), 0.0);
            }
            phi.diag_mut(sa).set_submatrix(ra * N3D, ra * N3D, &on);
        }
        phi
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_linalg::Complex64;

    fn setup() -> (Device, ElectronModel, PhononModel) {
        let p = SimParams::test_small();
        (
            Device::new(&p),
            ElectronModel::for_params(&p),
            PhononModel::default(),
        )
    }

    #[test]
    fn coupling_density_bounds_the_measured_density() {
        let (dev, em, _) = setup();
        let predicted = em.coupling_density(&dev);
        assert!(
            predicted > 0.0 && predicted <= 1.0,
            "structural density must be a fraction, got {predicted}"
        );
        // The structural estimate must dominate the numerical density of
        // every assembled coupling block (zeros can only be lost, never
        // gained, relative to the neighbor-pair pattern).
        let h = em.hamiltonian(&dev, 0.3);
        let bs = h.block_size();
        let mut nnz = 0usize;
        let mut cap = 0usize;
        for n in 0..dev.bnum - 1 {
            nnz += h
                .upper(n)
                .as_slice()
                .iter()
                .chain(h.lower(n).as_slice())
                .filter(|z| z.re != 0.0 || z.im != 0.0)
                .count();
            cap += 2 * bs * bs;
        }
        let measured = nnz as f64 / cap as f64;
        assert!(
            measured <= predicted + 1e-12,
            "measured {measured} must not exceed structural {predicted}"
        );
        assert!(measured > 0.0, "couplings must not be empty");
    }

    #[test]
    fn hamiltonian_is_hermitian_at_all_kz() {
        let (dev, em, _) = setup();
        for &kz in &[0.0, 1.1, -2.3, std::f64::consts::PI] {
            let h = em.hamiltonian(&dev, kz);
            assert!(h.is_hermitian(1e-12), "H(kz={kz}) must be Hermitian");
        }
    }

    #[test]
    fn overlap_is_hermitian_and_near_identity() {
        let (dev, em, _) = setup();
        let s = em.overlap_matrix(&dev, 0.3);
        assert!(s.is_hermitian(1e-12));
        let d = s.to_dense();
        for i in 0..d.rows() {
            assert!((d[(i, i)] - Complex64::ONE).abs() < 1e-12);
            // Diagonally dominant -> positive definite.
            let off: f64 = (0..d.cols())
                .filter(|&j| j != i)
                .map(|j| d[(i, j)].abs())
                .sum();
            assert!(off < 1.0, "row {i} off-diagonal mass {off}");
        }
    }

    #[test]
    fn hamiltonian_depends_on_kz() {
        let (dev, em, _) = setup();
        let h0 = em.hamiltonian(&dev, 0.0);
        let h1 = em.hamiltonian(&dev, 1.5);
        assert!(h0.diag(0).max_abs_diff(h1.diag(0)) > 1e-6);
    }

    #[test]
    fn deterministic_construction() {
        let (dev, em, _) = setup();
        let a = em.hamiltonian(&dev, 0.7);
        let b = em.hamiltonian(&dev, 0.7);
        assert!(a.to_dense().max_abs_diff(&b.to_dense()) == 0.0);
    }

    #[test]
    fn dh_antisymmetry() {
        let (dev, em, _) = setup();
        let dh = em.dh_tensor(&dev);
        // For each pair (a, b) find the reverse slot and check
        // ∇H_ba = −(∇H_ab)†.
        for a in 0..dev.na {
            for slot in 0..dev.nb {
                let Some(b) = dev.neighbor(a, slot) else {
                    continue;
                };
                let Some(back) = (0..dev.nb).find(|&s| dev.neighbor(b, s) == Some(a)) else {
                    continue;
                };
                for i in 0..N3D {
                    let fwd = Matrix::from_vec(em.norb, em.norb, dh.inner(&[a, slot, i]).to_vec());
                    let rev = Matrix::from_vec(em.norb, em.norb, dh.inner(&[b, back, i]).to_vec());
                    let expect = fwd.dagger().scale(c64(-1.0, 0.0));
                    assert!(rev.max_abs_diff(&expect) < 1e-12, "pair ({a},{b}) dir {i}");
                }
            }
        }
    }

    #[test]
    fn disorder_draws_are_deterministic_per_seed() {
        let d1 = Disorder {
            seed: 0xD15EA5E,
            vacancy_fraction: 0.25,
            onsite_amplitude: 0.1,
            vacancy_level: 0.0,
        };
        let d2 = d1;
        assert_eq!(d1.vacancies(64), d2.vacancies(64));
        for a in 0..64 {
            assert_eq!(d1.onsite_shift(a).to_bits(), d2.onsite_shift(a).to_bits());
        }
        // A different seed reshuffles the vacancies (for any fraction in
        // (0, 1) the chance of identical 64-site draws is negligible, and
        // this is a fixed-seed check, not a statistical one).
        let d3 = Disorder { seed: 0xBEEF, ..d1 };
        assert_ne!(d1.vacancies(64), d3.vacancies(64));
        // Fraction bounds behave.
        let none = Disorder {
            vacancy_fraction: 0.0,
            ..d1
        };
        assert!(none.vacancies(64).is_empty());
        let all = Disorder {
            vacancy_fraction: 1.0,
            ..d1
        };
        assert_eq!(all.vacancies(8).len(), 8);
    }

    #[test]
    fn vacant_sites_collapse_to_the_pinned_level() {
        let p = SimParams::test_small();
        let disorder = Disorder {
            seed: 42,
            vacancy_fraction: 0.3,
            onsite_amplitude: 0.05,
            vacancy_level: 0.125,
        };
        let mut dev = Device::new(&p);
        dev.delete_sites(&disorder.vacancies(p.na));
        let mut em = ElectronModel::for_params(&p);
        em.disorder = Some(disorder);
        let clean = ElectronModel::for_params(&p);
        let vacancies = disorder.vacancies(p.na);
        assert!(!vacancies.is_empty(), "seed 42 must produce vacancies");
        let h = em.hamiltonian(&dev, 0.7);
        assert!(h.is_hermitian(1e-12), "disorder must keep H Hermitian");
        for a in 0..p.na {
            let on = em.onsite(a, 0.7);
            if disorder.is_vacant(a) {
                for o in 0..p.norb {
                    assert_eq!(on[(o, o)].re, 0.125, "dangling level must be pinned");
                    assert_eq!(on[(o, o)].im, 0.0);
                }
            } else {
                let base = clean.onsite(a, 0.7);
                let shift = (on[(0, 0)] - base[(0, 0)]).re;
                assert!(
                    shift.abs() <= disorder.onsite_amplitude + 1e-12,
                    "per-site shift {shift} exceeds the amplitude"
                );
                // The same site shifts every orbital identically.
                let shift1 = (on[(1, 1)] - base[(1, 1)]).re;
                assert!((shift - shift1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn dynamical_matrix_hermitian_and_acoustic() {
        let (dev, _, pm) = setup();
        let phi = pm.dynamical(&dev, 0.0);
        assert!(phi.is_hermitian(1e-12));
        // Acoustic sum rule at qz = 0: uniform translation is a zero mode.
        let dense = phi.to_dense();
        let n = dense.rows();
        for i in 0..n {
            let mut row_sum = Complex64::ZERO;
            // Sum over same cartesian component of all atoms.
            let comp = i % N3D;
            for j in (comp..n).step_by(N3D) {
                row_sum += dense[(i, j)];
            }
            assert!(
                row_sum.abs() < 1e-12,
                "row {i} violates acoustic sum rule: {row_sum}"
            );
        }
    }

    #[test]
    fn dynamical_qz_gap_opens() {
        let (dev, _, pm) = setup();
        let phi0 = pm.dynamical(&dev, 0.0);
        let phi1 = pm.dynamical(&dev, std::f64::consts::PI);
        // The z-spring lifts the acoustic mode at finite qz.
        let diff = phi1.diag(0).max_abs_diff(phi0.diag(0));
        assert!(diff > 1e-6);
    }
}
