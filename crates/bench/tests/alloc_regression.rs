//! Allocation-regression smoke (feature `count-alloc`): steady-state SCF
//! iterations must stay off the allocator's hot path.
//!
//! This lives in its own test binary with a single `#[test]` because the
//! telemetry counters are process-global — concurrent tests would pollute
//! the per-iteration deltas. The SCF runs inside a 1-thread rayon pool so
//! every workspace arena warms up on one deterministic worker.
#![cfg(feature = "count-alloc")]

use qt_core::params::SimParams;
use qt_core::scf::{run_scf, ScfConfig, Simulation};

#[global_allocator]
static ALLOC: qt_bench::alloc::CountingAllocator = qt_bench::alloc::CountingAllocator;

#[test]
fn warm_scf_iterations_are_allocation_free_on_the_hot_path() {
    let p = SimParams {
        nkz: 2,
        nqz: 2,
        ne: 16,
        nw: 3,
        na: 8,
        nb: 3,
        norb: 2,
        bnum: 4,
    };
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("rayon pool");
    let out = pool.install(|| {
        let sim = Simulation::new(p, -1.2, 1.2);
        let cfg = ScfConfig {
            max_iterations: 4,
            tolerance: 0.0, // force every iteration
            ..Default::default()
        };
        run_scf(&sim, &cfg).expect("SCF")
    });
    assert_eq!(out.iterations, 4);
    let cold = &out.trajectory[0];
    assert!(
        cold.alloc_bytes > 0,
        "counting allocator must be active under --features count-alloc"
    );
    assert!(
        cold.boundary_misses > 0,
        "iteration 0 must compute the contact self-energies"
    );
    for warm in &out.trajectory[1..] {
        // Zero hot-path allocations: every pooled buffer is served from
        // the arenas and every contact Σ from the boundary cache.
        assert_eq!(
            warm.ws_fresh, 0,
            "iteration {}: workspace pool misses",
            warm.iteration
        );
        assert_eq!(
            warm.boundary_misses, 0,
            "iteration {}: Sancho-Rubio decimation recomputed",
            warm.iteration
        );
        // The residual traffic (escaping spectral tensors, per-atom SSE
        // partial sums) must stay far below the cold iteration, which pays
        // the decimation loops and arena warm-up on top.
        assert!(
            warm.alloc_bytes < cold.alloc_bytes / 2,
            "iteration {}: {} bytes allocated vs cold {} — hot path regressed",
            warm.iteration,
            warm.alloc_bytes,
            cold.alloc_bytes
        );
    }
}
