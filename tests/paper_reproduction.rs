//! Paper-number reproduction checks at the integration level: the closed
//! forms and models behind Tables 3–5 and 8 and Fig. 13, exercised through
//! the public facade (EXPERIMENTS.md records the full row-by-row output).

use dace_omen::model::scaling::{self, Variant};
use dace_omen::prelude::*;

const TIB: f64 = (1u64 << 40) as f64;

#[test]
fn table3_flop_counts() {
    use dace_omen::core::flops;
    // SSE (OMEN) column is exact; SSE (DaCe) within the paper's own
    // formula-vs-table drift; GF rows are calibrated fits.
    let rows = [
        (3usize, 8.45, 52.95, 24.41, 12.38),
        (5, 14.12, 88.25, 67.80, 34.19),
        (7, 19.77, 123.55, 132.89, 66.85),
        (9, 25.42, 158.85, 219.67, 110.36),
        (11, 31.06, 194.15, 328.15, 164.71),
    ];
    for (nkz, ci, rgf, sse_omen, sse_dace) in rows {
        let p = SimParams::paper_si_4864(nkz);
        let pf = 1e15;
        assert!(
            (flops::contour_flops(&p) / pf - ci).abs() / ci < 0.02,
            "CI Nkz={nkz}"
        );
        assert!(
            (flops::rgf_flops(&p) / pf - rgf).abs() / rgf < 0.02,
            "RGF Nkz={nkz}"
        );
        assert!(
            (flops::sse_omen_flops(&p) / pf - sse_omen).abs() / sse_omen < 0.005,
            "SSE-OMEN Nkz={nkz}"
        );
        assert!(
            (flops::sse_dace_flops(&p) / pf - sse_dace).abs() / sse_dace < 0.02,
            "SSE-DaCe Nkz={nkz}"
        );
    }
}

#[test]
fn table4_and_5_communication_volumes() {
    // Weak scaling (Table 4).
    for (nkz, procs, omen_t, dace_t) in [
        (3usize, 768usize, 32.11, 0.54),
        (5, 1280, 89.18, 1.22),
        (7, 1792, 174.80, 2.17),
        (9, 2304, 288.95, 3.38),
        (11, 2816, 431.65, 4.86),
    ] {
        let p = SimParams::paper_si_4864(nkz);
        let omen = volume::omen_total_bytes(&p, procs) / TIB;
        let dace = volume::dace_total_bytes(&p, nkz, procs / nkz) / TIB;
        assert!(
            (omen - omen_t).abs() / omen_t < 0.005,
            "T4 OMEN Nkz={nkz}: {omen:.2}"
        );
        assert!(
            (dace - dace_t).abs() / dace_t < 0.02,
            "T4 DaCe Nkz={nkz}: {dace:.3}"
        );
    }
    // Strong scaling (Table 5).
    let p = SimParams::paper_si_4864(7);
    for (procs, omen_t, dace_t) in [
        (224usize, 108.24, 0.95),
        (448, 117.75, 1.13),
        (896, 136.76, 1.48),
        (1792, 174.80, 2.17),
        (2688, 212.84, 2.87),
    ] {
        let omen = volume::omen_total_bytes(&p, procs) / TIB;
        let dace = volume::dace_total_bytes(&p, 7, procs / 7) / TIB;
        assert!((omen - omen_t).abs() / omen_t < 0.005, "T5 OMEN P={procs}");
        assert!((dace - dace_t).abs() / dace_t < 0.02, "T5 DaCe P={procs}");
    }
}

#[test]
fn exhaustive_search_recovers_paper_tiling() {
    // §4.1's search should land on (or beat) the tilings the paper used.
    let p = SimParams::paper_si_4864(7);
    let t = optimal_tiling(&p, 1792).expect("feasible");
    assert_eq!((t.te, t.ta), (7, 256), "Table 5's tiling is optimal");
}

#[test]
fn fig13_shapes() {
    let p = SimParams::paper_si_4864(7);
    // Strong scaling on Piz Daint: DaCe must keep high parallel efficiency
    // over the paper's node range while OMEN is communication-bound.
    let nodes = [112usize, 224, 448, 896, 1792];
    let dace = scaling::strong_scaling(&p, &PIZ_DAINT, &nodes, Variant::Dace);
    let eff = scaling::parallel_efficiency(&dace);
    assert!(eff.last().unwrap() > &0.5, "DaCe efficiency: {eff:?}");
    let omen = scaling::strong_scaling(&p, &PIZ_DAINT, &nodes, Variant::Omen);
    for (o, d) in omen.iter().zip(&dace) {
        assert!(o.times.total() > d.times.total() * 8.0);
        // Communication dominates OMEN, not DaCe.
        assert!(o.times.t_comm > o.times.compute() * 0.4);
        assert!(d.times.t_comm < d.times.compute());
    }
}

#[test]
fn table8_projection() {
    // Pflop magnitudes and minutes-scale iterations at the Table 8
    // configurations.
    for (nkz, nodes, gf_pflop_paper, sse_pflop_paper) in [
        (11usize, 1852usize, 2922.0, 490.0),
        (15, 2580, 3985.0, 910.0),
        (21, 3525, 5579.0, 1784.0),
    ] {
        let r = scaling::extreme_run(nkz, nodes, &SUMMIT);
        // GF model: calibrated on the 4,864-atom geometry; magnitude only.
        assert!(
            r.gf_pflop / gf_pflop_paper > 0.3 && r.gf_pflop / gf_pflop_paper < 3.0,
            "GF Nkz={nkz}: model {:.0} vs paper {gf_pflop_paper}",
            r.gf_pflop
        );
        // SSE model: same closed form as the paper.
        assert!(
            r.sse_pflop / sse_pflop_paper > 0.5 && r.sse_pflop / sse_pflop_paper < 2.0,
            "SSE Nkz={nkz}: model {:.0} vs paper {sse_pflop_paper}",
            r.sse_pflop
        );
        let total = r.gf_time + r.sse_time + r.comm_time;
        assert!(total < 900.0, "under ~minutes per iteration: {total:.0}s");
    }
}

#[test]
fn sdfg_pipeline_improves_all_metrics() {
    use dace_omen::sdfg::library;
    let b: dace_omen::sdfg::Bindings = [
        ("Nkz", 3i64),
        ("NE", 24),
        ("Nqz", 3),
        ("Nw", 4),
        ("N3D", 3),
        ("NA", 16),
        ("NB", 4),
        ("Norb", 3),
    ]
    .iter()
    .map(|&(k, v)| (k.to_string(), v))
    .collect();
    let mut tree = library::sse_sigma_tree();
    let steps = library::transform_sse_sigma(&mut tree, &b).expect("pipeline");
    let first = &steps[0].stats;
    let last = &steps.last().unwrap().stats;
    assert!(last.flops < first.flops);
    assert!(last.total_accesses() < first.total_accesses());
    assert!(last.transient_bytes * 100 < first.transient_bytes);
    // The tree stays valid at the end.
    assert!(tree.validate().is_ok());
}
