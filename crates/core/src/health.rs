//! Numerical health guards: structured errors, per-point quarantine, and
//! coverage accounting.
//!
//! The paper's extreme-scale projection (§5, Table 8) assumes runs long
//! enough that transient numerical breakdowns — a near-singular RGF block
//! at a resonance, a Sancho–Rubio decimation that stalls at a propagating
//! energy — are routine events, not fatal ones. This module gives the
//! pipeline a vocabulary for those events ([`NumericalError`]) and a
//! containment policy ([`HealthPolicy`]): a bad `(E, kz)` grid point is
//! *quarantined* (zero-filled and excluded from observables, recorded in a
//! [`CoverageReport`]) instead of poisoning the whole Born iteration, as
//! long as the bad fraction stays under a configured ceiling.

use qt_linalg::{Matrix, SingularMatrix};
use std::fmt;

/// Structured numerical failure, attributed to a pipeline phase and (where
/// meaningful) a flattened grid-point index.
#[derive(Clone, Debug, PartialEq)]
pub enum NumericalError {
    /// A block inversion failed (LU hit a zero pivot) inside `phase` while
    /// processing flattened grid point `index`.
    SingularBlock { phase: &'static str, index: usize },
    /// The Sancho–Rubio decimation exhausted its iteration budget without
    /// the coupling norm dropping below tolerance; `residual` is the final
    /// coupling norm.
    BoundaryNonConvergence { iters: usize, residual: f64 },
    /// A produced tensor contained NaN or ±Inf, detected at the boundary
    /// of `phase` for flattened grid point `index`.
    NonFiniteTensor { phase: &'static str, index: usize },
    /// The distributed state backing a grid point was lost when `rank`
    /// (an original world identity) died; the point either rode elastic
    /// recovery or was zero-filled in a degraded-mode completion.
    RankLoss { rank: usize },
}

impl NumericalError {
    /// Attach phase/grid-point context to a raw [`SingularMatrix`].
    pub fn singular(phase: &'static str, index: usize) -> Self {
        NumericalError::SingularBlock { phase, index }
    }

    /// Re-attribute a context-free error (e.g. one converted through
    /// `From<SingularMatrix>` inside a deep helper) to the phase and grid
    /// point of the caller. Errors that already carry real context are
    /// passed through unchanged.
    pub fn at(self, phase: &'static str, index: usize) -> Self {
        match self {
            NumericalError::SingularBlock { .. } => NumericalError::SingularBlock { phase, index },
            NumericalError::NonFiniteTensor { .. } => {
                NumericalError::NonFiniteTensor { phase, index }
            }
            other => other,
        }
    }
}

impl fmt::Display for NumericalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericalError::SingularBlock { phase, index } => {
                write!(f, "singular block in phase `{phase}` at grid point {index}")
            }
            NumericalError::BoundaryNonConvergence { iters, residual } => write!(
                f,
                "boundary decimation did not converge after {iters} iterations \
                 (residual {residual:.3e})"
            ),
            NumericalError::NonFiniteTensor { phase, index } => write!(
                f,
                "non-finite tensor produced by phase `{phase}` at grid point {index}"
            ),
            NumericalError::RankLoss { rank } => {
                write!(f, "distributed state lost with the death of rank {rank}")
            }
        }
    }
}

impl std::error::Error for NumericalError {}

impl From<SingularMatrix> for NumericalError {
    fn from(_: SingularMatrix) -> Self {
        // Context-free conversion used by `?` in deep helpers; callers that
        // know the phase/point re-attribute via [`NumericalError::at`].
        NumericalError::SingularBlock {
            phase: "linalg",
            index: 0,
        }
    }
}

/// True when every element of every matrix is finite (no NaN, no ±Inf).
pub fn matrices_finite<'a>(ms: impl IntoIterator<Item = &'a Matrix>) -> bool {
    ms.into_iter().all(|m| {
        m.as_slice()
            .iter()
            .all(|z| z.re.is_finite() && z.im.is_finite())
    })
}

/// One excluded grid point and the reason it was excluded.
#[derive(Clone, Debug, PartialEq)]
pub struct QuarantinedPoint {
    /// Flattened grid index (`kz * ne + e` for electrons,
    /// `qz * nw + w` for phonons).
    pub grid_index: usize,
    /// What went wrong at this point.
    pub error: NumericalError,
}

/// Which grid points a GF phase actually covered.
///
/// A phase that quarantines points still returns a *complete* tensor — the
/// quarantined slices are zero-filled, which drops their contribution to
/// the SSE convolutions and observables — but the report makes the gap
/// visible so callers (and the telemetry `health.*` counters) can decide
/// whether the iteration is still trustworthy.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CoverageReport {
    /// Number of grid points the phase was asked to compute.
    pub total_points: usize,
    /// The points that failed a health check and were zero-filled.
    pub quarantined: Vec<QuarantinedPoint>,
}

impl CoverageReport {
    /// A report claiming full coverage of `total_points` points.
    pub fn full(total_points: usize) -> Self {
        CoverageReport {
            total_points,
            quarantined: Vec::new(),
        }
    }

    /// Fraction of points quarantined, in `[0, 1]`.
    pub fn bad_fraction(&self) -> f64 {
        if self.total_points == 0 {
            0.0
        } else {
            self.quarantined.len() as f64 / self.total_points as f64
        }
    }

    /// True when no point was quarantined.
    pub fn is_full(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// Fold another phase's coverage into this one (used by the SCF loop to
    /// aggregate electron + phonon coverage per iteration).
    pub fn absorb(&mut self, other: &CoverageReport) {
        self.total_points += other.total_points;
        self.quarantined.extend(other.quarantined.iter().cloned());
    }
}

/// Containment policy for numerical failures inside the GF phases.
#[derive(Clone, Copy, Debug)]
pub struct HealthPolicy {
    /// When true (default), a failing grid point is zero-filled and
    /// recorded instead of failing the phase. When false, the first
    /// failure aborts the phase with its [`NumericalError`].
    pub quarantine: bool,
    /// Hard ceiling on [`CoverageReport::bad_fraction`]; exceeding it turns
    /// quarantine into a phase-level error (too little of the spectrum left
    /// to trust the iteration).
    pub max_bad_fraction: f64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            quarantine: true,
            max_bad_fraction: 0.25,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_linalg::c64;

    #[test]
    fn error_display_names_phase_and_point() {
        let e = NumericalError::singular("rgf", 7);
        assert!(format!("{e}").contains("rgf"));
        assert!(format!("{e}").contains('7'));
        let e = NumericalError::BoundaryNonConvergence {
            iters: 200,
            residual: 3.5e-2,
        };
        let s = format!("{e}");
        assert!(s.contains("200") && s.contains("3.5"), "{s}");
    }

    #[test]
    fn from_singular_reattributes_with_at() {
        let e: NumericalError = SingularMatrix.into();
        let e = e.at("gf/electron", 12);
        assert_eq!(e, NumericalError::singular("gf/electron", 12));
        // Convergence errors keep their own payload through `at`.
        let e = NumericalError::BoundaryNonConvergence {
            iters: 9,
            residual: 1.0,
        }
        .at("gf/electron", 12);
        assert!(matches!(
            e,
            NumericalError::BoundaryNonConvergence { iters: 9, .. }
        ));
    }

    #[test]
    fn finite_check_flags_nan_and_inf() {
        let good = Matrix::identity(2);
        assert!(matrices_finite([&good]));
        let mut bad = Matrix::identity(2);
        bad[(0, 1)] = c64(f64::NAN, 0.0);
        assert!(!matrices_finite([&good, &bad]));
        let mut inf = Matrix::identity(2);
        inf[(1, 0)] = c64(0.0, f64::INFINITY);
        assert!(!matrices_finite([&inf]));
    }

    #[test]
    fn coverage_report_fractions_and_absorb() {
        let mut a = CoverageReport::full(8);
        assert!(a.is_full());
        assert_eq!(a.bad_fraction(), 0.0);
        a.quarantined.push(QuarantinedPoint {
            grid_index: 3,
            error: NumericalError::singular("rgf", 3),
        });
        assert!(!a.is_full());
        assert!((a.bad_fraction() - 0.125).abs() < 1e-15);
        let b = CoverageReport::full(8);
        a.absorb(&b);
        assert_eq!(a.total_points, 16);
        assert!((a.bad_fraction() - 1.0 / 16.0).abs() < 1e-15);
        assert_eq!(CoverageReport::default().bad_fraction(), 0.0);
    }
}
