//! Offline stand-in for `serde_json` 1.
//!
//! Works against the stand-in `serde` value tree: `to_string_pretty`
//! renders a [`serde::Value`] as JSON text, `from_str` parses JSON text
//! back into the tree and rebuilds the target type — so derive-based
//! round trips (e.g. the SDFG JSON tests) work without registry access.

use serde::{Deserialize, Serialize, Value};

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s).map_err(Error)?;
    T::from_value(&value).map_err(Error)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(v: f64, out: &mut String) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            out.push_str(&format!("{:.1}", v));
        } else {
            out.push_str(&format!("{}", v));
        }
    } else {
        out.push_str("null");
    }
}

fn write_value(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Num(x) => write_num(*x, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, indent, level + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, level + 1, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self.bytes.get(self.pos).ok_or("bad escape")?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("bad \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("bad codepoint")?);
                        }
                        _ => return Err(format!("bad escape \\{}", e as char)),
                    }
                }
                _ => {
                    // Recover full UTF-8 sequences.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk =
                        std::str::from_utf8(&self.bytes[start..end]).map_err(|e| e.to_string())?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if text.is_empty() {
            return Err(format!("expected value at byte {start}"));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', got {:?}", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}', got {:?}", other as char)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrips_through_text() {
        let v = Value::Obj(vec![
            ("a".to_string(), Value::Int(-3)),
            ("b".to_string(), Value::Num(1.5)),
            (
                "c".to_string(),
                Value::Arr(vec![
                    Value::Null,
                    Value::Bool(true),
                    Value::Str("x\"y\n".into()),
                ]),
            ),
            ("d".to_string(), Value::Obj(vec![])),
        ]);
        let mut text = String::new();
        write_value(&v, Some(2), 0, &mut text);
        assert_eq!(parse(&text).unwrap(), v);
        let mut compact = String::new();
        write_value(&v, None, 0, &mut compact);
        assert_eq!(parse(&compact).unwrap(), v);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("[] trailing").is_err());
    }
}
