//! Chaos tests at the harness level (feature `fault-inject`): a faulty
//! distributed iteration must survive, match the fault-free answer, and
//! leave a telemetry report whose health block records the recovery work —
//! the in-process equivalent of `check-report --require-health`. The
//! rank-kill tests go further: a seeded mid-exchange death must either
//! ride elastic recovery to a bitwise-exact result or complete degraded
//! with an honest coverage report — never hang, never silently drift.
//!
//! The kill tests' tile grid is parameterized by `QT_CHAOS_WORLD`
//! (2, 4, or 8 ranks; default 4) so CI can sweep world sizes.
#![cfg(feature = "fault-inject")]

use std::sync::Mutex;
use std::time::Duration;

use qt_core::device::Device;
use qt_core::gf::GfConfig;
use qt_core::grids::Grids;
use qt_core::hamiltonian::{ElectronModel, PhononModel};
use qt_core::params::SimParams;
use qt_dist::runner::{
    distributed_iteration, distributed_iteration_elastic_with_faults,
    distributed_iteration_tiled_with_faults, distributed_iteration_with_faults, ElasticPolicy,
};
use qt_dist::{ElasticTiling, FaultPlan};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// `(te, ta)` for the world size requested via `QT_CHAOS_WORLD`.
fn world_shape() -> (usize, usize) {
    match std::env::var("QT_CHAOS_WORLD").ok().as_deref() {
        Some("2") => (1, 2),
        Some("8") => (2, 4),
        None | Some("4") => (2, 2),
        Some(other) => panic!("QT_CHAOS_WORLD must be 2, 4, or 8, got {other:?}"),
    }
}

fn fixture() -> (SimParams, Device, ElectronModel, PhononModel, Grids) {
    let p = SimParams {
        nkz: 2,
        nqz: 2,
        ne: 12,
        nw: 2,
        na: 12,
        nb: 3,
        norb: 2,
        bnum: 4,
    };
    let dev = Device::new(&p);
    let em = ElectronModel::for_params(&p);
    let pm = PhononModel::default();
    let grids = Grids::new(&p, -1.2, 1.2);
    (p, dev, em, pm, grids)
}

#[test]
fn faulty_pipeline_reports_health_and_passes_the_gate() {
    let _g = lock();
    qt_telemetry::reset_all();
    qt_telemetry::set_enabled(true);
    let p = SimParams {
        nkz: 2,
        nqz: 2,
        ne: 12,
        nw: 2,
        na: 12,
        nb: 3,
        norb: 2,
        bnum: 4,
    };
    let dev = Device::new(&p);
    let em = ElectronModel::for_params(&p);
    let pm = PhononModel::default();
    let grids = Grids::new(&p, -1.2, 1.2);
    let cfg = GfConfig::default();
    let clean = distributed_iteration(&p, &dev, &em, &pm, &grids, &cfg, 2, 2).unwrap();
    let plan = FaultPlan::new(515)
        .with_drops(150)
        .with_corruption(100)
        .with_stalled_rank(2, Duration::from_millis(10));
    let faulty =
        distributed_iteration_with_faults(&p, &dev, &em, &pm, &grids, &cfg, 2, 2, plan).unwrap();
    let rel = clean.sigma.lesser.max_abs_diff(&faulty.sigma.lesser)
        / clean.sigma.lesser.norm().max(1e-30);
    assert!(rel <= 1e-10, "faulty run must match fault-free: rel {rel}");

    // The report's health block carries the recovery counters, and the
    // --require-health gate (health block present) passes after a
    // JSON roundtrip.
    let rep = qt_telemetry::TelemetryReport::from_current();
    rep.validate().expect("report validates");
    let h = rep.health.expect("health block present");
    assert!(
        h.comm_retries > 0,
        "chaos plan must be visible as comm retries in the health block"
    );
    let back = qt_telemetry::TelemetryReport::from_json(&rep.to_json()).expect("roundtrip");
    assert_eq!(back.health, rep.health);
}

#[test]
fn killed_rank_recovers_bitwise_exactly() {
    let _g = lock();
    qt_telemetry::reset_all();
    let (p, dev, em, pm, grids) = fixture();
    let cfg = GfConfig::default();
    let (te, ta) = world_shape();
    let procs = te * ta;
    let victim = procs - 1;

    let clean = distributed_iteration(&p, &dev, &em, &pm, &grids, &cfg, te, ta).unwrap();

    // Seeded, deterministic kill: the victim dies on its third SSE send.
    // Survivors detect it, re-tile, and retry on the shrunken world. One
    // rank's death quarantines exactly 1/procs of the electron grid, so
    // the ceiling is set to admit exactly one loss at any world size.
    let plan = FaultPlan::new(42).with_kill_at(victim, 3);
    let policy = ElasticPolicy {
        max_bad_fraction: 1.0 / procs as f64,
        ..Default::default()
    };
    let el = distributed_iteration_elastic_with_faults(
        &p, &dev, &em, &pm, &grids, &cfg, te, ta, &policy, plan,
    )
    .unwrap();

    assert_eq!(el.deaths, vec![victim], "exactly the scheduled rank dies");
    assert!(el.retiles >= 1, "the supervisor must have re-tiled");
    assert!(!el.degraded, "one death out of {procs} must ride recovery");
    assert!(
        el.migrated_units >= 1,
        "only the dead rank's tiles migrate, but they do migrate"
    );
    // Recovery recomputes the migrated tiles from supervisor-held GF
    // state, so the result is bitwise identical to the fault-free run.
    assert_eq!(
        el.result.sigma.lesser.as_slice(),
        clean.sigma.lesser.as_slice()
    );
    assert_eq!(
        el.result.sigma.greater.as_slice(),
        clean.sigma.greater.as_slice()
    );
    assert_eq!(el.result.pi.lesser.as_slice(), clean.pi.lesser.as_slice());
    assert_eq!(el.result.pi.greater.as_slice(), clean.pi.greater.as_slice());
    assert_eq!(el.result.current.to_bits(), clean.current.to_bits());
    // The lost grid points stay on the record even though they recovered,
    // and the elasticity telemetry block carries the event counts.
    assert!(!el.coverage.is_full());
    assert!(el.coverage.bad_fraction() <= policy.max_bad_fraction);
    let rep = qt_telemetry::TelemetryReport::from_current();
    let e = rep.elasticity.expect("elasticity block present");
    assert!(e.rank_deaths >= 1);
    assert!(e.retile_events >= 1);
    assert!(e.migrated_tiles as usize >= el.migrated_units);
}

#[test]
fn chaos_recovery_is_deterministic() {
    let _g = lock();
    let (p, dev, em, pm, grids) = fixture();
    let cfg = GfConfig::default();
    let (te, ta) = world_shape();
    let run = || {
        distributed_iteration_elastic_with_faults(
            &p,
            &dev,
            &em,
            &pm,
            &grids,
            &cfg,
            te,
            ta,
            &ElasticPolicy::default(),
            FaultPlan::new(7).with_kill_at(0, 2),
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.deaths, b.deaths);
    assert_eq!(a.migrated_units, b.migrated_units);
    assert_eq!(
        a.result.sigma.lesser.as_slice(),
        b.result.sigma.lesser.as_slice()
    );
    assert_eq!(
        a.result.pi.greater.as_slice(),
        b.result.pi.greater.as_slice()
    );
}

#[test]
fn killed_steal_participant_falls_back_to_elastic_recovery() {
    let _g = lock();
    qt_telemetry::reset_all();
    let (p, dev, em, pm, grids) = fixture();
    let cfg = GfConfig::default();
    let (te, ta) = world_shape();
    let procs = te * ta;
    let clean = distributed_iteration(&p, &dev, &em, &pm, &grids, &cfg, te, ta).unwrap();

    // Collapse every unit onto rank 0: all other ranks enter the steal
    // protocol immediately and rank 0's only cross-rank traffic is steal
    // frames, so its scheduled death lands squarely inside the protocol.
    // Thieves must detect the dead victim, surface a typed death, and the
    // supervisor must finish the iteration on the elastic path.
    let mut tiling = ElasticTiling::weighted(&p, te, ta, procs, &vec![0.0; procs]);
    assert_eq!(tiling.units_of(0).len(), procs);
    // Rank 0 owns all units, so its loss quarantines the whole grid —
    // admit that so it rides recovery instead of degrading.
    let policy = ElasticPolicy {
        max_bad_fraction: 1.0,
        ..Default::default()
    };
    let el = distributed_iteration_tiled_with_faults(
        &p,
        &dev,
        &em,
        &pm,
        &grids,
        &cfg,
        &mut tiling,
        &policy,
        true,
        FaultPlan::new(13).with_kill_at(0, 1),
    )
    .unwrap();

    assert_eq!(el.deaths, vec![0], "the steal victim dies, nobody else");
    assert!(el.retiles >= 1, "its death must force a re-tile");
    assert!(!el.degraded, "recovery must complete undegraded");
    assert_eq!(
        el.migrated_units, procs,
        "all of the victim's units migrate to survivors"
    );
    // The retry (stealing still on, over the survivor set) reproduces the
    // fault-free observables bit for bit.
    assert_eq!(
        el.result.sigma.lesser.as_slice(),
        clean.sigma.lesser.as_slice()
    );
    assert_eq!(
        el.result.sigma.greater.as_slice(),
        clean.sigma.greater.as_slice()
    );
    assert_eq!(el.result.pi.lesser.as_slice(), clean.pi.lesser.as_slice());
    assert_eq!(el.result.pi.greater.as_slice(), clean.pi.greater.as_slice());
    // The survivor exchange still measures balance.
    if procs > 1 {
        assert!(el.result.comm.balance.is_some());
    }
}

#[test]
fn death_past_bad_fraction_ceiling_degrades_instead_of_hanging() {
    let _g = lock();
    let (p, dev, em, pm, grids) = fixture();
    let cfg = GfConfig::default();
    let (te, ta) = world_shape();
    let victim = 0;

    // A zero ceiling makes any loss unrecoverable: the victim's units
    // must be abandoned and the iteration must still complete.
    let policy = ElasticPolicy {
        max_bad_fraction: 0.0,
        ..Default::default()
    };
    let el = distributed_iteration_elastic_with_faults(
        &p,
        &dev,
        &em,
        &pm,
        &grids,
        &cfg,
        te,
        ta,
        &policy,
        FaultPlan::new(9).with_kill_at(victim, 1),
    )
    .unwrap();

    assert!(el.degraded, "an unrecoverable death must degrade, not hang");
    assert_eq!(el.deaths, vec![victim]);
    assert_eq!(el.migrated_units, 0, "abandoned units must not migrate");
    assert!(!el.coverage.is_full());
    assert!(el.coverage.bad_fraction() > 0.0);
    for q in &el.coverage.quarantined {
        assert!(q.grid_index < p.nkz * p.ne);
        assert!(matches!(
            q.error,
            qt_core::health::NumericalError::RankLoss { rank } if rank == victim
        ));
    }
    // Degraded ≠ garbage: the surviving tiles still carry fault-free
    // values; only the abandoned slices are zero-filled.
    let clean = distributed_iteration(&p, &dev, &em, &pm, &grids, &cfg, te, ta).unwrap();
    let nonzero = el
        .result
        .sigma
        .lesser
        .as_slice()
        .iter()
        .filter(|z| z.re != 0.0 || z.im != 0.0)
        .count();
    if te * ta > 1 {
        assert!(nonzero > 0, "survivor tiles must be present");
    }
    assert!(
        nonzero
            < clean
                .sigma
                .lesser
                .as_slice()
                .iter()
                .filter(|z| z.re != 0.0 || z.im != 0.0)
                .count(),
        "abandoned tiles must be zero-filled"
    );
}
