//! Offline stand-in for `rand` 0.9.
//!
//! The build environment has no registry access, so the workspace patches
//! `rand` to this crate (see `[patch.crates-io]` in the root manifest). It
//! implements exactly the API subset the workspace uses: seeded `StdRng`
//! construction and `Rng::random_range` over primitive ranges. The
//! generator is SplitMix64 — deterministic for a given seed, which is all
//! the seeded test fixtures require (they never depend on the upstream
//! rand stream).

use std::ops::{Range, RangeInclusive};

/// Seedable generator construction (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling (`rand::Rng` subset).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Range types [`Rng::random_range`] accepts.
pub trait SampleRange {
    type Output;
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> Self::Output;
}

fn unit_f64<G: Rng + ?Sized>(rng: &mut G) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty range");
        a + unit_f64(rng) * (b - a)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range");
                let span = (b as i128 - a as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (a as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    /// Deterministic SplitMix64 generator (stand-in for `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl crate::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        use crate::{Rng as _, SeedableRng as _};
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        use crate::{Rng as _, SeedableRng as _};
        let mut r = rngs::StdRng::seed_from_u64(1);
        for _ in 0..256 {
            let x = r.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n = r.random_range(3usize..9);
            assert!((3..9).contains(&n));
            let m = r.random_range(0i64..=4);
            assert!((0..=4).contains(&m));
        }
    }
}
