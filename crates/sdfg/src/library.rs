//! Builders for the paper's SDFGs and the §4.2 transformation pipeline.
//!
//! * [`matmul_tree`] — the naïve matrix-multiplication SDFG of Fig. 4;
//! * [`sse_sigma_tree`] — the initial Σ≷ kernel of Fig. 8 (the Python code
//!   of Fig. 5);
//! * [`transform_sse_sigma`] — the exact transformation sequence of
//!   Figs. 9–12 (fission → redundancy removal → data layout →
//!   multiplication fusion → expansion/GEMM substitution → map fusion),
//!   returning movement/compute statistics after every step;
//! * [`qt_toplevel`] — the two-state GF↔SSE view of Fig. 6.

use crate::propagate::{IndirectionModel, ParamRange};
use crate::stree::{Access, ArrayDesc, Dtype, Node, OpKind, ScopeTree, TreeStats};
use crate::subset::{Dim, Subset};
use crate::symexpr::{Bindings, SymExpr};
use crate::transforms;

fn s(name: &str) -> SymExpr {
    SymExpr::sym(name)
}

/// Fig. 4: `C = A @ B` as a single map over `[0,M)×[0,N)×[0,K)` with a
/// multiply tasklet and sum-conflict-resolution into `C`.
pub fn matmul_tree() -> ScopeTree {
    let mut t = ScopeTree::new("matmul");
    t.add_array(
        "A",
        ArrayDesc::new(vec![s("M"), s("K")], Dtype::Complex128, false),
    );
    t.add_array(
        "B",
        ArrayDesc::new(vec![s("K"), s("N")], Dtype::Complex128, false),
    );
    t.add_array(
        "C",
        ArrayDesc::new(vec![s("M"), s("N")], Dtype::Complex128, false),
    );
    t.roots.push(Node::map(
        "mm",
        vec![
            ParamRange::new("i", 0, s("M")),
            ParamRange::new("j", 0, s("N")),
            ParamRange::new("k", 0, s("K")),
        ],
        vec![Node::compute(
            "mult",
            OpKind::Tasklet,
            vec![
                Access::read("A", Subset::new(vec![Dim::idx(s("i")), Dim::idx(s("k"))])),
                Access::read("B", Subset::new(vec![Dim::idx(s("k")), Dim::idx(s("j"))])),
            ],
            vec![Access::accumulate(
                "C",
                Subset::new(vec![Dim::idx(s("i")), Dim::idx(s("j"))]),
            )],
            SymExpr::int(8),
        )],
    ));
    t
}

/// Subset helper: an `Norb × Norb` matrix block (two trailing full dims).
fn orb_block(prefix: Vec<Dim>) -> Subset {
    let mut dims = prefix;
    dims.push(Dim::full(s("Norb")));
    dims.push(Dim::full(s("Norb")));
    Subset::new(dims)
}

/// Fig. 8: the initial Σ≷ SSE kernel. One 8-D map over
/// `(kz, E, qz, w, i, j, a, b)` containing three computes:
///
/// 1. `dHG = G[kz−qz, E−w, f(a,b)] @ dH[a, b, i]`
/// 2. `dHD = dH[a, b, j] * D[qz, w, a, b, i, j]` (scalar × matrix)
/// 3. `Sigma[kz, E, a] += dHG @ dHD`
///
/// The transient tensors are declared at the full rank that map fission
/// will give them (Fig. 9); their initial per-iteration character is
/// captured by the pointwise indices.
pub fn sse_sigma_tree() -> ScopeTree {
    let mut t = ScopeTree::new("sse_sigma");
    t.add_array(
        "G",
        ArrayDesc::new(
            vec![s("Nkz"), s("NE"), s("NA"), s("Norb"), s("Norb")],
            Dtype::Complex128,
            false,
        ),
    );
    t.add_array(
        "dH",
        ArrayDesc::new(
            vec![s("NA"), s("NB"), s("N3D"), s("Norb"), s("Norb")],
            Dtype::Complex128,
            false,
        ),
    );
    t.add_array(
        "D",
        ArrayDesc::new(
            vec![s("Nqz"), s("Nw"), s("NA"), s("NB"), s("N3D"), s("N3D")],
            Dtype::Complex128,
            false,
        ),
    );
    t.add_array(
        "Sigma",
        ArrayDesc::new(
            vec![s("Nkz"), s("NE"), s("NA"), s("Norb"), s("Norb")],
            Dtype::Complex128,
            false,
        ),
    );
    // Transients at post-fission rank (Fig. 9).
    t.add_array(
        "dHG",
        ArrayDesc::new(
            vec![
                s("Nkz"),
                s("NE"),
                s("Nqz"),
                s("Nw"),
                s("N3D"),
                s("NA"),
                s("NB"),
                s("Norb"),
                s("Norb"),
            ],
            Dtype::Complex128,
            true,
        ),
    );
    t.add_array(
        "dHD",
        ArrayDesc::new(
            vec![
                s("Nqz"),
                s("Nw"),
                s("N3D"),
                s("NA"),
                s("NB"),
                s("Norb"),
                s("Norb"),
            ],
            Dtype::Complex128,
            true,
        ),
    );
    t.indirection_tables.push("f".into());

    let g_read = orb_block(vec![
        Dim::idx(s("kz") - s("qz")),
        Dim::idx(s("E") - s("w")),
        Dim::Indirect {
            table: "f".into(),
            args: vec![s("a"), s("b")],
        },
    ]);
    let dh_i = orb_block(vec![Dim::idx(s("a")), Dim::idx(s("b")), Dim::idx(s("i"))]);
    let dh_j = orb_block(vec![Dim::idx(s("a")), Dim::idx(s("b")), Dim::idx(s("j"))]);
    let d_read = Subset::new(vec![
        Dim::idx(s("qz")),
        Dim::idx(s("w")),
        Dim::idx(s("a")),
        Dim::idx(s("b")),
        Dim::idx(s("i")),
        Dim::idx(s("j")),
    ]);
    let dhg_idx = orb_block(vec![
        Dim::idx(s("kz")),
        Dim::idx(s("E")),
        Dim::idx(s("qz")),
        Dim::idx(s("w")),
        Dim::idx(s("i")),
        Dim::idx(s("a")),
        Dim::idx(s("b")),
    ]);
    let dhd_idx = orb_block(vec![
        Dim::idx(s("qz")),
        Dim::idx(s("w")),
        Dim::idx(s("i")),
        Dim::idx(s("a")),
        Dim::idx(s("b")),
    ]);
    let sigma_out = orb_block(vec![Dim::idx(s("kz")), Dim::idx(s("E")), Dim::idx(s("a"))]);

    let norb3 = s("Norb") * s("Norb") * s("Norb");
    let norb2 = s("Norb") * s("Norb");
    t.roots.push(Node::map(
        "sse",
        vec![
            ParamRange::new("kz", 0, s("Nkz")),
            ParamRange::new("E", 0, s("NE")),
            ParamRange::new("qz", 0, s("Nqz")),
            ParamRange::new("w", 0, s("Nw")),
            ParamRange::new("i", 0, s("N3D")),
            ParamRange::new("j", 0, s("N3D")),
            ParamRange::new("a", 0, s("NA")),
            ParamRange::new("b", 0, s("NB")),
        ],
        vec![
            Node::compute(
                "dHG_mm",
                OpKind::MatMul,
                vec![Access::read("G", g_read), Access::read("dH", dh_i)],
                vec![Access::write("dHG", dhg_idx.clone())],
                SymExpr::int(8) * norb3.clone(),
            ),
            Node::compute(
                "dHD_scal",
                OpKind::ScalarMul,
                vec![Access::read("dH", dh_j), Access::read("D", d_read)],
                vec![Access::accumulate("dHD", dhd_idx.clone())],
                SymExpr::int(8) * norb2,
            ),
            Node::compute(
                "sigma_mm",
                OpKind::MatMul,
                vec![Access::read("dHG", dhg_idx), Access::read("dHD", dhd_idx)],
                vec![Access::accumulate("Sigma", sigma_out)],
                SymExpr::int(8) * norb3,
            ),
        ],
    ));
    t
}

/// The indirection model the performance engineer supplies for the neighbor
/// table `f(a, b)` (§4.1).
pub fn neighbor_model() -> IndirectionModel {
    IndirectionModel::neighbor_window("f", s("NA"), s("NB"))
}

/// One step of the transformation pipeline, with the stats after applying it.
#[derive(Clone, Debug)]
pub struct PipelineStep {
    pub name: &'static str,
    pub stats: TreeStats,
}

/// Apply the full Fig. 9→12 transformation sequence to the Σ≷ kernel,
/// recording statistics after every step (evaluated at `bindings`).
///
/// Steps: map fission → redundancy removal (drop `qz`,`w` from `dHG`) →
/// data-layout transformation on `G`/`dHG` → multiplication fusion over
/// `(kz, E)` → map expansion + GEMM substitution over `w` → map fusion over
/// `(a, b)`.
pub fn transform_sse_sigma(
    tree: &mut ScopeTree,
    bindings: &Bindings,
) -> Result<Vec<PipelineStep>, String> {
    let models = [neighbor_model()];
    let mut steps = Vec::new();
    let record = |name: &'static str, tree: &ScopeTree, steps: &mut Vec<PipelineStep>| {
        steps.push(PipelineStep {
            name,
            stats: tree.stats(bindings, &models),
        });
    };
    record("initial (Fig. 8)", tree, &mut steps);

    transforms::map_fission(tree, "sse")?;
    tree.validate()?;
    record("map fission (Fig. 9)", tree, &mut steps);

    transforms::redundancy_removal(
        tree,
        "map_dHG_mm",
        &[("kz".into(), "qz".into()), ("E".into(), "w".into())],
    )?;
    tree.validate()?;
    record("redundancy removal (Fig. 10b)", tree, &mut steps);

    // G: [Nkz, NE, NA, Norb, Norb] -> [NA, Nkz, NE, Norb, Norb]
    transforms::data_layout(tree, "G", &[2, 0, 1, 3, 4])?;
    // dHG: [kz, E, i, a, b, No, No] -> [a, b, i, kz, E, No, No]
    transforms::data_layout(tree, "dHG", &[3, 4, 2, 0, 1, 5, 6])?;
    tree.validate()?;
    record("data layout (Fig. 10c)", tree, &mut steps);

    transforms::multiplication_fusion(tree, "map_dHG_mm", &["kz", "E"])?;
    tree.validate()?;
    record("multiplication fusion (Fig. 10d)", tree, &mut steps);

    transforms::map_expansion(tree, "map_sigma_mm", &["w"])?;
    transforms::multiplication_fusion(tree, "map_sigma_mm_inner", &["w"])?;
    tree.validate()?;
    record(
        "map expansion + GEMM substitution (Fig. 11)",
        tree,
        &mut steps,
    );

    transforms::map_fusion(
        tree,
        &["map_dHG_mm", "map_dHD_scal", "map_sigma_mm"],
        &["a", "b"],
        "sse_fused",
    )?;
    tree.validate()?;
    record("map fusion (Fig. 12)", tree, &mut steps);

    Ok(steps)
}

/// Fig. 6: top-level two-state view of the QT simulation. The GF state holds
/// the electron and phonon RGF maps; the SSE state holds the scattering
/// self-energy map. Returned as one scope tree per state.
pub fn qt_toplevel() -> Vec<ScopeTree> {
    let mut gf = ScopeTree::new("GF");
    gf.add_array(
        "H",
        ArrayDesc::new(
            vec![s("Nkz"), s("NAorb"), s("NAorb")],
            Dtype::Complex128,
            false,
        ),
    );
    gf.add_array(
        "Phi",
        ArrayDesc::new(vec![s("Nqz"), s("NA3"), s("NA3")], Dtype::Complex128, false),
    );
    gf.add_array(
        "SigmaIn",
        ArrayDesc::new(
            vec![s("Nkz"), s("NE"), s("NA"), s("Norb"), s("Norb")],
            Dtype::Complex128,
            false,
        ),
    );
    gf.add_array(
        "PiIn",
        ArrayDesc::new(
            vec![s("Nqz"), s("Nw"), s("NA"), s("NB1"), s("N3D"), s("N3D")],
            Dtype::Complex128,
            false,
        ),
    );
    gf.add_array(
        "G",
        ArrayDesc::new(
            vec![s("Nkz"), s("NE"), s("NA"), s("Norb"), s("Norb")],
            Dtype::Complex128,
            false,
        ),
    );
    gf.add_array(
        "Dph",
        ArrayDesc::new(
            vec![s("Nqz"), s("Nw"), s("NA"), s("NB1"), s("N3D"), s("N3D")],
            Dtype::Complex128,
            false,
        ),
    );
    gf.add_array(
        "Ie",
        ArrayDesc::new(vec![SymExpr::int(1)], Dtype::Float64, false),
    );
    gf.add_array(
        "Iph",
        ArrayDesc::new(vec![SymExpr::int(1)], Dtype::Float64, false),
    );
    let naorb2 = s("NAorb") * s("NAorb");
    gf.roots.push(Node::map(
        "electrons",
        vec![
            ParamRange::new("kz", 0, s("Nkz")),
            ParamRange::new("E", 0, s("NE")),
        ],
        vec![Node::compute(
            "RGF_e",
            OpKind::Tasklet,
            vec![
                Access::read(
                    "H",
                    Subset::new(vec![
                        Dim::idx(s("kz")),
                        Dim::full(s("NAorb")),
                        Dim::full(s("NAorb")),
                    ]),
                ),
                Access::read(
                    "SigmaIn",
                    orb_block(vec![
                        Dim::idx(s("kz")),
                        Dim::idx(s("E")),
                        Dim::full(s("NA")),
                    ]),
                ),
            ],
            vec![
                Access::write(
                    "G",
                    orb_block(vec![
                        Dim::idx(s("kz")),
                        Dim::idx(s("E")),
                        Dim::full(s("NA")),
                    ]),
                ),
                Access::accumulate("Ie", Subset::new(vec![Dim::idx(SymExpr::int(0))])),
            ],
            SymExpr::int(8) * naorb2.clone() * s("NAorb"),
        )],
    ));
    let na32 = s("NA3") * s("NA3");
    gf.roots.push(Node::map(
        "phonons",
        vec![
            ParamRange::new("qz", 0, s("Nqz")),
            ParamRange::new("w", 1, s("Nw")),
        ],
        vec![Node::compute(
            "RGF_ph",
            OpKind::Tasklet,
            vec![
                Access::read(
                    "Phi",
                    Subset::new(vec![
                        Dim::idx(s("qz")),
                        Dim::full(s("NA3")),
                        Dim::full(s("NA3")),
                    ]),
                ),
                Access::read(
                    "PiIn",
                    Subset::new(vec![
                        Dim::idx(s("qz")),
                        Dim::idx(s("w")),
                        Dim::full(s("NA")),
                        Dim::full(s("NB1")),
                        Dim::full(s("N3D")),
                        Dim::full(s("N3D")),
                    ]),
                ),
            ],
            vec![
                Access::write(
                    "Dph",
                    Subset::new(vec![
                        Dim::idx(s("qz")),
                        Dim::idx(s("w")),
                        Dim::full(s("NA")),
                        Dim::full(s("NB1")),
                        Dim::full(s("N3D")),
                        Dim::full(s("N3D")),
                    ]),
                ),
                Access::accumulate("Iph", Subset::new(vec![Dim::idx(SymExpr::int(0))])),
            ],
            SymExpr::int(8) * na32 * s("NA3"),
        )],
    ));

    let sse = sse_sigma_tree();
    vec![gf, sse]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_small_bindings() -> Bindings {
        // Scaled-down but structurally faithful parameter set.
        [
            ("Nkz", 3),
            ("NE", 16),
            ("Nqz", 3),
            ("Nw", 4),
            ("N3D", 3),
            ("NA", 12),
            ("NB", 4),
            ("Norb", 4),
        ]
        .iter()
        .map(|&(k, v)| (k.to_string(), v))
        .collect()
    }

    #[test]
    fn matmul_tree_validates_and_counts() {
        let t = matmul_tree();
        assert!(t.validate().is_ok());
        let b: Bindings = [("M", 4), ("N", 5), ("K", 6)]
            .iter()
            .map(|&(k, v)| (k.to_string(), v))
            .collect();
        let stats = t.stats(&b, &[]);
        // MKN accesses on A and B, as in Fig. 4's memlet annotations.
        assert_eq!(stats.accesses["A"], 4 * 5 * 6);
        assert_eq!(stats.unique["C"], 4 * 5);
    }

    #[test]
    fn sse_tree_validates() {
        let t = sse_sigma_tree();
        assert!(t.validate().is_ok());
        assert_eq!(t.num_maps(), 1);
    }

    #[test]
    fn pipeline_runs_and_improves() {
        let b = paper_small_bindings();
        let mut t = sse_sigma_tree();
        let steps = transform_sse_sigma(&mut t, &b).expect("pipeline applies");
        assert_eq!(steps.len(), 7);
        let initial = &steps[0].stats;
        let last = steps.last().unwrap();

        // Flop count must strictly decrease (redundancy removal) and the
        // reduction factor of the dHG stage is Nqz*Nw.
        assert!(last.stats.flops < initial.flops);

        // G accesses: initially the full 8-D map touches G every iteration;
        // afterwards only the (a, b)-fused batched GEMM reads it.
        assert!(last.stats.accesses["G"] < initial.accesses["G"]);

        // Transient footprint shrinks dramatically after map fusion.
        assert!(last.stats.transient_bytes < initial.transient_bytes / 10);
    }

    #[test]
    fn pipeline_flop_model_matches_paper_structure() {
        // Paper §4.3: OMEN SSE flop = 64·NA·NB·N3D·Nkz·Nqz·NE·Nw·Norb^3
        // (the two matmuls over the full space); DaCe removes the
        // (Nqz, Nw) redundancy from the dHG stage:
        //   32·NA·NB·N3D·Nkz·Nqz·NE·Nw·Norb^3 + 32·NA·NB·N3D·Nkz·NE·Norb^3.
        let b = paper_small_bindings();
        let get = |k: &str| b[k];
        let (nkz, ne, nqz, nw) = (get("Nkz"), get("NE"), get("Nqz"), get("Nw"));
        let (n3d, na, nb, norb) = (get("N3D"), get("NA"), get("NB"), get("Norb"));
        let mut t = sse_sigma_tree();
        let steps = transform_sse_sigma(&mut t, &b).unwrap();
        let full_space = na * nb * n3d * nkz * nqz * ne * nw * norb.pow(3);
        // Initial: dHG matmul + sigma matmul both span the full 8-D space
        // (with the extra j factor for computes that ignore j), plus the
        // scalar stage. The two Norb^3 matmuls give at least
        // 2 × 8 × N3D × (full space) — the structure behind the paper's
        // 64-prefactor.
        let initial = &steps[0].stats;
        let matmul_flops = 2 * 8 * full_space * n3d; // both matmuls run per (i, j)
        assert!(
            initial.flops >= matmul_flops,
            "initial flops {} must include both matmuls over the full space {}",
            initial.flops,
            matmul_flops
        );
        // Final: sigma matmul over full space (i only) + dHG matmul without
        // (qz, w) + scalar stage.
        let final_ = &steps.last().unwrap().stats;
        let expected_min = 8 * full_space + 8 * na * nb * n3d * nkz * ne * norb.pow(3);
        assert!(final_.flops >= expected_min);
        // The ratio initial/final approaches 2 for large Nqz·Nw — with the
        // small test bindings it must already exceed 1.5.
        assert!(
            initial.flops as f64 / final_.flops as f64 > 1.5,
            "ratio {}",
            initial.flops as f64 / final_.flops as f64
        );
    }

    #[test]
    fn toplevel_states_validate() {
        for state in qt_toplevel() {
            assert!(state.validate().is_ok(), "state {}", state.name);
        }
    }

    #[test]
    fn tiled_sse_reproduces_communication_structure() {
        // Tile the (E, a) dimensions of the SSE map (§4.1) and check that
        // the propagated unique volume of G per tile follows
        // Nkz · (sE + Nw − 1) · (sa + NB) · Norb² — the structure behind the
        // paper's per-process formula Nkz(NE/TE + 2Nω)(NA/TA + NB)Norb².
        let mut t = sse_sigma_tree();
        let b = paper_small_bindings();
        transforms::map_tiling(
            &mut t,
            "sse",
            &[
                transforms::TileSpec::new("E", SymExpr::sym("TE"), SymExpr::sym("sE")),
                transforms::TileSpec::new("a", SymExpr::sym("TA"), SymExpr::sym("sa")),
            ],
        )
        .unwrap();
        assert!(t.validate().is_ok());
        // Find the inner map and propagate G's read through it.
        let Node::Map { body, .. } = t.find_map("sse").unwrap() else {
            panic!()
        };
        let Node::Map {
            params,
            body: inner_body,
            ..
        } = &body[0]
        else {
            panic!()
        };
        let Node::Compute { inputs, .. } = &inner_body[0] else {
            panic!()
        };
        let g_access = &inputs[0];
        let prop = crate::propagate::propagate_subset(
            &g_access.subset,
            params,
            &[neighbor_model()],
            Some(&t.arrays["G"].shape),
        );
        let mut bind = b.clone();
        bind.insert("TE".into(), 4);
        bind.insert("sE".into(), 4); // NE=16, 4 tiles of 4
        bind.insert("TA".into(), 3);
        bind.insert("sa".into(), 4); // NA=12, 3 tiles of 4
        bind.insert("tE".into(), 1);
        bind.insert("ta".into(), 1);
        // Expected per-tile unique coverage of G:
        //   kz−qz: min(Nkz, Nkz+Nqz−1) = Nkz (clamped)
        //   E−w:   sE + Nw − 1
        //   f:     min(NA, sa + NB)  (clamped window may hit the boundary)
        //   orbitals: Norb²
        let nkz = 3i64;
        let se_nw = 4 + 4 - 1;
        let sa_nb = 4 + 4;
        let norb2 = 16;
        // Clamp to array dims like TreeStats does.
        let mut unique = 1i64;
        for (d, dim) in prop.subset.0.iter().enumerate() {
            use crate::subset::Dim;
            let len = match dim {
                Dim::Index(_) | Dim::Indirect { .. } => 1,
                Dim::Range(r) => r
                    .clamped(&t.arrays["G"].shape[d])
                    .eval_length(&bind)
                    .unwrap(),
            };
            unique *= len;
        }
        assert_eq!(unique, nkz * se_nw * sa_nb * norb2);
    }
}
