//! Property-based integration tests (proptest) over the core numerical
//! invariants: linear algebra, symbolic propagation, partitions, and the
//! physics identities that must hold for *any* valid configuration.

use dace_omen::linalg::{c64, eigh, invert, CsrMatrix, Lu, Matrix};
use dace_omen::sdfg::{propagate_index, ParamRange, SymExpr};
use proptest::prelude::*;
use rand::SeedableRng;

fn seeded_matrix(n: usize, seed: u64) -> Matrix {
    let mut r = rand::rngs::StdRng::seed_from_u64(seed);
    Matrix::random(n, n, &mut r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (A·B)·C == A·(B·C) for random complex matrices.
    #[test]
    fn gemm_associative(seed in 0u64..5000, n in 1usize..12) {
        let a = seeded_matrix(n, seed);
        let b = seeded_matrix(n, seed ^ 1);
        let c = seeded_matrix(n, seed ^ 2);
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9 * (1.0 + lhs.max_abs()));
    }

    /// LU solves reproduce the right-hand side.
    #[test]
    fn lu_residual_small(seed in 0u64..5000, n in 1usize..10) {
        let mut a = seeded_matrix(n, seed);
        for i in 0..n {
            a[(i, i)] += c64(3.0, 0.5); // keep well-conditioned
        }
        let b = seeded_matrix(n, seed ^ 7);
        let x = Lu::factor(&a).unwrap().solve(&b);
        let resid = &a.matmul(&x) - &b;
        prop_assert!(resid.max_abs() < 1e-9);
    }

    /// Inverse of the inverse is the original.
    #[test]
    fn double_inverse(seed in 0u64..5000, n in 1usize..9) {
        let mut a = seeded_matrix(n, seed);
        for i in 0..n {
            a[(i, i)] += c64(4.0, 1.0);
        }
        let back = invert(&invert(&a).unwrap()).unwrap();
        prop_assert!(back.max_abs_diff(&a) < 1e-8);
    }

    /// Sparse×dense equals densified product for any sparsity pattern.
    #[test]
    fn csr_matches_dense(seed in 0u64..5000, m in 1usize..8, k in 1usize..8, n in 1usize..8, density in 0.05f64..0.9) {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng as _;
        let dense_a = Matrix::from_fn(m, k, |_, _| {
            if r.random_range(0.0..1.0) < density {
                c64(r.random_range(-1.0..1.0), r.random_range(-1.0..1.0))
            } else {
                dace_omen::linalg::Complex64::ZERO
            }
        });
        let sp = CsrMatrix::from_dense(&dense_a, 0.0);
        let b = Matrix::random(k, n, &mut r);
        let got = sp.mul_dense(&b);
        let expect = dense_a.matmul(&b);
        prop_assert!(got.max_abs_diff(&expect) < 1e-10);
    }

    /// Hermitian eigendecomposition: reconstruction and unitarity.
    #[test]
    fn eigh_reconstructs(seed in 0u64..5000, n in 1usize..8) {
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        let h = Matrix::random_hermitian(n, &mut r);
        let e = eigh(&h);
        let av = h.matmul(&e.vectors);
        let vl = Matrix::from_fn(n, n, |i, j| e.vectors[(i, j)].scale(e.values[j]));
        prop_assert!(av.max_abs_diff(&vl) < 1e-8);
    }

    /// Symbolic index propagation bounds every concrete access: for any
    /// affine expression c1·x + c2·y + c0 over box ranges, each concrete
    /// value lies in the propagated interval.
    #[test]
    fn propagation_bounds_concrete_accesses(
        c1 in -4i64..5, c2 in -4i64..5, c0 in -10i64..10,
        x_lo in 0i64..6, x_len in 1i64..6,
        y_lo in 0i64..6, y_len in 1i64..6,
    ) {
        let e = SymExpr::int(c1) * SymExpr::sym("x")
            + SymExpr::int(c2) * SymExpr::sym("y")
            + SymExpr::int(c0);
        let params = vec![
            ParamRange::new("x", x_lo, x_lo + x_len),
            ParamRange::new("y", y_lo, y_lo + y_len),
        ];
        let r = propagate_index(&e, &params);
        let empty: dace_omen::sdfg::Bindings = Default::default();
        let lo = r.begin.eval(&empty).unwrap();
        let hi = r.end.eval(&empty).unwrap();
        for x in x_lo..x_lo + x_len {
            for y in y_lo..y_lo + y_len {
                let v = c1 * x + c2 * y + c0;
                prop_assert!(lo <= v && v < hi, "{v} outside [{lo}, {hi})");
            }
        }
    }

    /// Simplification preserves the value of symbolic expressions.
    #[test]
    fn simplification_preserves_value(a in -20i64..20, b in -20i64..20, x in -50i64..50) {
        let e = (SymExpr::sym("x") + SymExpr::int(a)) - SymExpr::sym("x")
            + SymExpr::int(b) * (SymExpr::sym("x") - SymExpr::sym("x"))
            + SymExpr::int(2) * SymExpr::sym("x");
        let bind: dace_omen::sdfg::Bindings =
            [("x".to_string(), x)].into_iter().collect();
        let direct = e.eval(&bind).unwrap();
        let simplified = e.simplified().eval(&bind).unwrap();
        prop_assert_eq!(direct, simplified);
        prop_assert_eq!(direct, a + 2 * x);
    }

    /// Block partitions cover exactly without overlap for any sizes.
    #[test]
    fn partition_exactness(total in 1usize..200, parts_seed in 1usize..50) {
        let parts = parts_seed.min(total);
        let bp = dace_omen::dist::decomp::BlockPartition::new(total, parts);
        let mut count = 0;
        for i in 0..parts {
            let r = bp.range(i);
            for idx in r {
                prop_assert_eq!(bp.owner(idx), i);
                count += 1;
            }
        }
        prop_assert_eq!(count, total);
    }

    /// DaCe volume formula is monotone: more atoms per tile (smaller TA)
    /// never decreases per-process G traffic.
    #[test]
    fn dace_volume_monotone_in_tile_size(nkz in 1usize..22, ta_small in 1usize..16) {
        let p = dace_omen::core::params::SimParams::paper_si_4864(nkz.max(1));
        let ta_large = ta_small * 2;
        let per_small = dace_omen::dist::volume::dace_g_bytes_per_proc(&p, nkz, ta_large);
        let per_large = dace_omen::dist::volume::dace_g_bytes_per_proc(&p, nkz, ta_small);
        prop_assert!(per_large >= per_small);
    }
}
