//! `qt-telemetry` — phase-scoped tracing, sharded counters, and
//! model-vs-measured reporting for the quantum-transport pipeline.
//!
//! The paper's evaluation (§4.3, §5) compares *measured* flops, bytes and
//! runtimes against closed-form models (Tables 3–5). This crate is the one
//! source of truth those comparisons flow through:
//!
//! * [`counters`] — per-thread sharded flop/byte counters (rayon-safe, no
//!   cross-thread cache-line contention on the hot path) plus dedicated
//!   hot-section timers for the blocked-GEMM pack/microkernel split.
//! * [`span`] — hierarchical phase spans (`scf` → `scf_iter` →
//!   `gf/electron` → `rgf` / `contour` → …). A span snapshots the counters
//!   on entry and attributes the delta to its phase on drop. Spans are
//!   inert (a single relaxed atomic load) while telemetry is disabled.
//! * [`registry`] — the global phase table spans record into.
//! * [`trace`] — a Chrome/Perfetto `trace_event` exporter so a full SCF
//!   run can be opened in a trace viewer, including cross-rank flow
//!   arrows pairing sends with receives and steal requests with grants.
//! * [`report`] — the serialisable [`report::TelemetryReport`]: per-phase
//!   time/flops/GF·s/bytes plus model residuals (measured vs Table 3 flop
//!   models, measured vs Table 4/5 communication-volume models) and the
//!   SCF convergence trajectory.
//! * [`names`] — the single registry of metric name strings; every
//!   exported counter spells its name through a constant here.
//! * [`journal`] — the flight recorder: lock-light per-rank bounded rings
//!   of typed, timestamped events (quarantines, retries, rank deaths,
//!   re-tilings, steals, checkpoints, iteration marks).
//! * [`series`] — periodic counter snapshots in a bounded ring, exported
//!   as the report's `series` block and as Prometheus text.
//! * [`postmortem`] — drains the journal into a versioned crash artifact
//!   (`POSTMORTEM.json`) on rank death, degraded completion, or panic.
//!
//! Attribution modes: [`span::Span::enter_global`] measures deltas of the
//! *summed* counters and is correct for sequential orchestration phases
//! (the SCF loop body), even when the phase fans out over rayon
//! internally. [`span::Span::enter`] measures deltas of the *calling
//! thread's* counters and is the right tool inside parallel worker bodies
//! (per-energy-point `rgf`/`contour`), where it reports aggregate busy
//! time across workers rather than wall-clock.

pub mod counters;
pub mod cputime;
pub mod journal;
pub mod json;
pub mod names;
pub mod postmortem;
pub mod registry;
pub mod report;
pub mod series;
pub mod span;
pub mod trace;

pub use journal::{journaling_enabled, set_journaling, EventKind};
pub use postmortem::{Postmortem, PostmortemError};
pub use registry::PhaseStat;
pub use report::{
    BalanceReport, ElasticityReport, JournalBlock, KernelSelectionReport, SeriesBlock,
    TelemetryReport,
};
pub use series::{series_enabled, set_series_enabled};
pub use span::{enabled, set_enabled, Span};
pub use trace::{export_chrome_trace, set_tracing, tracing_enabled};

/// Reset every piece of global telemetry state: counters, the phase
/// registry, buffered trace events, the event journal, and the metrics
/// series. Enable/trace/journal flags keep their values.
pub fn reset_all() {
    counters::reset_counters();
    registry::reset_phases();
    trace::clear_trace();
    journal::reset_journal();
    series::reset_series();
}
