//! Shared fixtures for the benchmark harness: reduced-scale devices whose
//! structure matches the paper's evaluation configurations.

#[cfg(feature = "count-alloc")]
pub mod alloc;

use qt_core::device::Device;
use qt_core::gf::{self, GfConfig};
use qt_core::grids::Grids;
use qt_core::hamiltonian::{ElectronModel, PhononModel};
use qt_core::params::SimParams;
use qt_core::sse;
use qt_linalg::{BlockTridiag, CsrMatrix, Matrix, Tensor};

/// Reduced-scale stand-in for the 4,864-atom Table 7 configuration:
/// identical structure, laptop-sized dimensions.
pub fn bench_params() -> SimParams {
    SimParams {
        nkz: 3,
        nqz: 3,
        ne: 32,
        nw: 4,
        na: 32,
        nb: 4,
        norb: 4,
        bnum: 8,
    }
}

/// Everything a kernel benchmark needs, built once.
pub struct BenchFixture {
    pub p: SimParams,
    pub dev: Device,
    pub em: ElectronModel,
    pub pm: PhononModel,
    pub grids: Grids,
    pub dh: Tensor,
    pub g_lesser: Tensor,
    pub g_greater: Tensor,
    pub d_lesser_pre: Tensor,
    pub d_greater_pre: Tensor,
    pub cfg: GfConfig,
}

impl BenchFixture {
    pub fn new(p: SimParams) -> Self {
        let dev = Device::new(&p);
        let em = ElectronModel::for_params(&p);
        let pm = PhononModel::default();
        let grids = Grids::new(&p, -1.2, 1.2);
        let cfg = GfConfig::default();
        let egf = gf::electron_gf_phase(
            &dev,
            &em,
            &p,
            &grids,
            &gf::ElectronSelfEnergy::zeros(&p),
            &cfg,
        )
        .expect("electron GF");
        let pgf = gf::phonon_gf_phase(
            &dev,
            &pm,
            &p,
            &grids,
            &gf::PhononSelfEnergy::zeros(&p),
            &cfg,
        )
        .expect("phonon GF");
        let (dl, dg) = sse::preprocess_d(&dev, &p, &pgf);
        BenchFixture {
            dh: em.dh_tensor(&dev),
            g_lesser: egf.g_lesser,
            g_greater: egf.g_greater,
            d_lesser_pre: dl,
            d_greater_pre: dg,
            p,
            dev,
            em,
            pm,
            grids,
            cfg,
        }
    }

    pub fn sse_inputs(&self) -> sse::SseInputs<'_> {
        sse::SseInputs {
            dev: &self.dev,
            p: &self.p,
            grids: &self.grids,
            dh: &self.dh,
            g_lesser: &self.g_lesser,
            g_greater: &self.g_greater,
            d_lesser_pre: &self.d_lesser_pre,
            d_greater_pre: &self.d_greater_pre,
        }
    }
}

/// The Table 6 operand set: sparse Hamiltonian blocks `F`, `E` and a dense
/// retarded Green's-function block `gR` of order `n`.
pub struct Table6Operands {
    pub f_sparse: CsrMatrix,
    pub e_sparse: CsrMatrix,
    pub g_dense: Matrix,
    pub g_sparse: CsrMatrix,
}

/// Build representative Table 6 operands (`n × n`, Hamiltonian blocks with
/// the given density; `gR` is dense with a sparsified image for the
/// CSRGEMM route).
pub fn table6_operands(n: usize, density: f64, seed: u64) -> Table6Operands {
    use rand::{Rng as _, SeedableRng};
    let mut r = rand::rngs::StdRng::seed_from_u64(seed);
    let sparse = |r: &mut rand::rngs::StdRng| {
        let d = Matrix::from_fn(n, n, |_, _| {
            if r.random_range(0.0..1.0) < density {
                qt_linalg::c64(r.random_range(-1.0..1.0), r.random_range(-1.0..1.0))
            } else {
                qt_linalg::Complex64::ZERO
            }
        });
        CsrMatrix::from_dense(&d, 0.0)
    };
    let f_sparse = sparse(&mut r);
    let e_sparse = sparse(&mut r);
    let g_dense = Matrix::random(n, n, &mut r);
    // "Keeping the result (and thus gR) sparse": threshold the dense block.
    let g_thresh = Matrix::from_fn(n, n, |i, j| {
        let v = g_dense[(i, j)];
        if v.abs() > 0.85 {
            v
        } else {
            qt_linalg::Complex64::ZERO
        }
    });
    let g_sparse = CsrMatrix::from_dense(&g_thresh, 0.0);
    Table6Operands {
        f_sparse,
        e_sparse,
        g_dense,
        g_sparse,
    }
}

/// A synthetic sparse block-tridiagonal RGF problem at a controlled
/// coupling density: diagonally dominant (well-conditioned) dense diagonal
/// blocks, random coupling blocks keeping each entry with probability
/// `density`, and anti-Hermitian `Σ<` blocks. One fixture serves the
/// Table 6 sweep (`reproduce table6`), the criterion benchmark, and the
/// sparse allocation-regression test.
pub fn sparse_rgf_problem(
    nb: usize,
    bs: usize,
    density: f64,
    seed: u64,
) -> (BlockTridiag, Vec<Matrix>) {
    use rand::{Rng as _, SeedableRng};
    let mut r = rand::rngs::StdRng::seed_from_u64(seed);
    let mut a = BlockTridiag::zeros(nb, bs);
    // The diagonal shift scales with the block order so the system stays
    // diagonally dominant even when dense couplings push the off-diagonal
    // row sums to O(bs): the kernel-agreement gates compare observables to
    // 1e-10 and must not be washed out by conditioning.
    let shift = qt_linalg::c64(4.0 + 2.5 * bs as f64, 1.0);
    for n in 0..nb {
        let mut d = Matrix::random(bs, bs, &mut r);
        for i in 0..bs {
            d[(i, i)] += shift;
        }
        *a.diag_mut(n) = d;
    }
    for n in 0..nb - 1 {
        let blk = |r: &mut rand::rngs::StdRng| {
            Matrix::from_fn(bs, bs, |_, _| {
                if r.random_range(0.0..1.0) < density {
                    qt_linalg::c64(r.random_range(-1.0..1.0), r.random_range(-1.0..1.0))
                } else {
                    qt_linalg::Complex64::ZERO
                }
            })
        };
        *a.upper_mut(n) = blk(&mut r);
        *a.lower_mut(n) = blk(&mut r);
    }
    let sig: Vec<Matrix> = (0..nb)
        .map(|_| Matrix::random_hermitian(bs, &mut r).scale(qt_linalg::Complex64::I))
        .collect();
    (a, sig)
}

/// Route (a): densify both Hamiltonian blocks, two dense GEMMs.
pub fn table6_dense_mm(ops: &Table6Operands) -> Matrix {
    let f = ops.f_sparse.to_dense();
    let e = ops.e_sparse.to_dense();
    f.matmul(&ops.g_dense).matmul(&e)
}

/// Route (b): CSR × dense, then dense × CSR (the paper's winning CSRMM).
pub fn table6_csrmm(ops: &Table6Operands) -> Matrix {
    let fg = ops.f_sparse.mul_dense(&ops.g_dense);
    ops.e_sparse.rmul_dense(&fg)
}

/// Route (c): all-sparse CSRGEMM chain.
pub fn table6_csrgemm(ops: &Table6Operands) -> CsrMatrix {
    ops.f_sparse.mul_csr(&ops.g_sparse).mul_csr(&ops.e_sparse)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_routes_agree_where_comparable() {
        let ops = table6_operands(48, 0.1, 3);
        let a = table6_dense_mm(&ops);
        let b = table6_csrmm(&ops);
        assert!(a.max_abs_diff(&b) < 1e-10);
        let c = table6_csrgemm(&ops).to_dense();
        let ref_sparse = ops
            .f_sparse
            .to_dense()
            .matmul(&ops.g_sparse.to_dense())
            .matmul(&ops.e_sparse.to_dense());
        assert!(c.max_abs_diff(&ref_sparse) < 1e-10);
    }

    #[test]
    fn sparse_rgf_problem_strategies_agree() {
        let (a, sig) = sparse_rgf_problem(4, 12, 0.1, 9);
        let dense =
            qt_core::rgf::rgf_with_strategy(&a, &sig, qt_core::rgf::MultiplyStrategy::Dense)
                .unwrap();
        let sparse = qt_core::rgf::rgf_with_strategy(
            &a,
            &sig,
            qt_core::rgf::MultiplyStrategy::Csrmm { threshold: 0.0 },
        )
        .unwrap();
        for n in 0..4 {
            assert!(dense.gr_diag[n].max_abs_diff(&sparse.gr_diag[n]) < 1e-10);
            assert!(dense.gl_diag[n].max_abs_diff(&sparse.gl_diag[n]) < 1e-10);
        }
    }

    #[test]
    fn fixture_builds() {
        let fx = BenchFixture::new(SimParams {
            nkz: 2,
            nqz: 2,
            ne: 8,
            nw: 2,
            na: 8,
            nb: 3,
            norb: 2,
            bnum: 4,
        });
        assert!(fx.g_lesser.norm() > 0.0);
        assert!(fx.d_lesser_pre.norm() > 0.0);
    }
}
