//! End-to-end tests of the sweep service: warm sharing, backpressure,
//! deadlines, degradation, circuit breaking, and drain-on-shutdown.

use std::time::Duration;

use qt_core::params::SimParams;
use qt_core::scf::ScfConfig;
use qt_serve::{ServeConfig, Service, SubmitError, SweepRequest, SweepStatus, VariantSpec};

fn tiny_params() -> SimParams {
    SimParams {
        nkz: 2,
        nqz: 2,
        ne: 10,
        nw: 2,
        na: 8,
        nb: 3,
        norb: 2,
        bnum: 4,
    }
}

fn variant(max_iterations: usize, tolerance: f64) -> VariantSpec {
    VariantSpec {
        params: tiny_params(),
        emin: -1.2,
        emax: 1.2,
        cfg: ScfConfig {
            max_iterations,
            tolerance,
            ..Default::default()
        },
    }
}

fn quick_service(cfg: ServeConfig) -> Service {
    Service::start(vec![variant(40, 1e-6)], cfg).expect("valid test variant")
}

#[test]
fn sweep_completes_and_later_points_warm_start() {
    let svc = quick_service(ServeConfig {
        workers: 1,
        ..Default::default()
    });
    let ticket = svc
        .submit(SweepRequest::new(0, vec![0.10, 0.12, 0.14]))
        .unwrap();
    let resp = ticket.wait().expect("service answers");
    let SweepStatus::Completed { points } = resp.status else {
        panic!("sweep should complete: {:?}", resp.status);
    };
    assert_eq!(points.len(), 3);
    assert!(points.iter().all(|p| p.converged));
    assert!(points.iter().all(|p| p.current.is_finite()));
    assert!(!points[0].warm_started, "first point has no neighbor");
    assert!(points[1].warm_started && points[2].warm_started);
    // A warm continuation must not cost more iterations than the cold
    // opener at a nearby bias.
    assert!(points[1].iterations <= points[0].iterations);
    svc.shutdown();
}

#[test]
fn full_queue_rejects_with_retry_after() {
    // One worker, and a pool too small for two concurrent solves, so
    // the first job occupies the worker while the queue fills.
    let svc = quick_service(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        pool_slots: 1,
        slots_per_solve: 1,
        ..Default::default()
    });
    let t1 = svc
        .submit(SweepRequest::new(0, vec![0.1, 0.11, 0.12]))
        .unwrap();
    // Stuff the queue past capacity: with one slot reserved, a second
    // un-dequeued submit must bounce. The worker may dequeue the first
    // job quickly, so allow a couple of fillers before asserting.
    let mut rejected = None;
    let mut fillers = Vec::new();
    for _ in 0..3 {
        match svc.submit(SweepRequest::new(0, vec![0.1])) {
            Ok(t) => fillers.push(t),
            Err(e) => {
                rejected = Some(e);
                break;
            }
        }
    }
    match rejected.expect("a submit past capacity must be rejected") {
        SubmitError::QueueFull { retry_after } => {
            assert!(retry_after > Duration::ZERO, "hint must be actionable");
        }
        other => panic!("expected QueueFull, got {other:?}"),
    }
    // Everything admitted still gets answered.
    assert!(matches!(
        t1.wait().unwrap().status,
        SweepStatus::Completed { .. }
    ));
    for t in fillers {
        assert!(matches!(
            t.wait().unwrap().status,
            SweepStatus::Completed { .. }
        ));
    }
    svc.shutdown();
}

#[test]
fn unknown_variant_is_rejected() {
    let svc = quick_service(ServeConfig::default());
    assert_eq!(
        svc.submit(SweepRequest::new(9, vec![0.1])).err(),
        Some(SubmitError::UnknownVariant { variant: 9 })
    );
    svc.shutdown();
}

/// Satellite: warm-start determinism under degradation. A poisoned warm
/// seed cannot converge, so the service falls back to a cold solve —
/// and that answer must match a never-warmed reference. The cold
/// fallback runs the *identical* deterministic solve as the reference
/// (same seed state Σ=Π=0, same config), so the agreement tolerance is
/// bitwise zero, not an approximate bound.
#[test]
fn poisoned_warm_start_degrades_to_the_cold_answer() {
    qt_telemetry::set_journaling(true);
    let fallbacks0 = qt_telemetry::counters::total_service_warm_fallbacks();

    // Reference: same sweep on a service that never warm-starts the
    // second point (fresh service, single-point sweeps → no neighbors).
    let reference = {
        let svc = quick_service(ServeConfig {
            workers: 1,
            ..Default::default()
        });
        let t = svc.submit(SweepRequest::new(0, vec![0.14])).unwrap();
        let SweepStatus::Completed { points } = t.wait().unwrap().status else {
            panic!("reference sweep must complete");
        };
        svc.shutdown();
        points[0].clone()
    };

    let svc = quick_service(ServeConfig {
        workers: 1,
        ..Default::default()
    });
    let req = SweepRequest {
        poison_warm_point: Some(1),
        ..SweepRequest::new(0, vec![0.10, 0.14])
    };
    let t = svc.submit(req).unwrap();
    let SweepStatus::Completed { points } = t.wait().unwrap().status else {
        panic!("degraded sweep must still complete");
    };
    let degraded = &points[1];
    assert!(degraded.warm_started, "the poisoned seed was attempted");
    assert!(degraded.degraded_to_cold, "and fell back to cold");
    assert!(degraded.converged);
    assert_eq!(
        degraded.current, reference.current,
        "cold fallback must reproduce the cold reference bitwise"
    );
    assert_eq!(degraded.retries, 0, "degradation never burns retry budget");

    // The degradation is observable: counter bumped and event journaled.
    assert!(qt_telemetry::counters::total_service_warm_fallbacks() > fallbacks0);
    let events = qt_telemetry::journal::drain();
    assert!(
        events.iter().any(|e| matches!(
            e.kind,
            qt_telemetry::EventKind::WarmFallback { point: 1, .. }
        )),
        "WarmFallback must be journaled"
    );
    qt_telemetry::set_journaling(false);
    svc.shutdown();
}

#[test]
fn deadline_expires_without_hanging() {
    let svc = quick_service(ServeConfig {
        workers: 1,
        ..Default::default()
    });
    let req = SweepRequest {
        deadline: Some(Duration::from_millis(1)),
        ..SweepRequest::new(0, vec![0.1, 0.2, 0.3, 0.4])
    };
    let t = svc.submit(req).unwrap();
    let resp = t
        .wait_timeout(Duration::from_secs(120))
        .expect("an expired request must still be answered");
    match resp.status {
        SweepStatus::DeadlineExpired { completed } => {
            // The 1ms budget cannot fit four solves.
            assert!(completed.len() < 4);
        }
        // A very fast machine could finish a point before the watchdog
        // fires, but never all four within a millisecond.
        other => panic!("expected DeadlineExpired, got {other:?}"),
    }
    svc.shutdown();
}

#[test]
fn repeated_failures_open_the_breaker() {
    // tolerance = 0 never converges → every request fails after its
    // retries, which must open the variant's breaker.
    let svc = Service::start(
        vec![variant(2, 0.0)],
        ServeConfig {
            workers: 1,
            max_retries: 0,
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(3600),
            ..Default::default()
        },
    )
    .expect("valid test variant");
    let opens0 = qt_telemetry::counters::total_service_breaker_opens();
    for _ in 0..2 {
        let t = svc.submit(SweepRequest::new(0, vec![0.1])).unwrap();
        assert!(matches!(
            t.wait().unwrap().status,
            SweepStatus::Failed { .. }
        ));
    }
    match svc.submit(SweepRequest::new(0, vec![0.1])).err() {
        Some(SubmitError::BreakerOpen { retry_after }) => {
            assert!(retry_after > Duration::ZERO);
        }
        other => panic!("expected BreakerOpen, got {other:?}"),
    }
    assert!(qt_telemetry::counters::total_service_breaker_opens() > opens0);
    svc.shutdown();
}

#[test]
fn shutdown_drains_in_flight_sweeps_with_resumable_checkpoints() {
    let dir = std::env::temp_dir().join(format!("qt-serve-drain-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let svc = quick_service(ServeConfig {
        workers: 1,
        drain_dir: Some(dir.clone()),
        ..Default::default()
    });
    // Long sweep the shutdown will interrupt.
    let t = svc
        .submit(SweepRequest::new(
            0,
            (0..20).map(|i| 0.1 + 0.01 * i as f64).collect(),
        ))
        .unwrap();
    // Give the worker a moment to start solving, then drain.
    std::thread::sleep(Duration::from_millis(50));
    svc.shutdown();
    let resp = t.wait().expect("drained request must still be answered");
    match resp.status {
        SweepStatus::Drained {
            completed,
            checkpoints,
        } => {
            assert!(completed.len() < 20, "shutdown interrupted the sweep");
            // The interrupted point (if any was in flight past iteration
            // 0) left a resumable QTCKPT01 file.
            for path in &checkpoints {
                let ck = qt_core::checkpoint::ScfCheckpoint::load(path)
                    .expect("drain checkpoint must be loadable");
                assert!(ck.iteration >= 1);
            }
        }
        // The worker may have been between jobs; then the queue path
        // answers ShutDown. Both are valid drain outcomes, but with a
        // 50ms head start on a 20-point sweep the drain path is the
        // expected one.
        SweepStatus::ShutDown => {}
        other => panic!("expected Drained/ShutDown, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn non_finite_biases_are_rejected_at_admission() {
    let svc = quick_service(ServeConfig {
        workers: 1,
        ..Default::default()
    });
    // Before the admission check, a NaN bias sailed into the worker and
    // panicked the warm store's nearest-neighbor comparison. It must be
    // a typed submit error instead — and must not consume queue depth.
    assert_eq!(
        svc.submit(SweepRequest::new(0, vec![0.1, f64::NAN, 0.2]))
            .err(),
        Some(SubmitError::NonFiniteBias { index: 1 })
    );
    assert_eq!(
        svc.submit(SweepRequest::new(0, vec![f64::INFINITY])).err(),
        Some(SubmitError::NonFiniteBias { index: 0 })
    );
    // The service stays healthy for well-formed requests afterwards.
    let t = svc.submit(SweepRequest::new(0, vec![0.1])).unwrap();
    assert!(matches!(
        t.wait().unwrap().status,
        SweepStatus::Completed { .. }
    ));
    svc.shutdown();
}

#[test]
fn invalid_variant_registrations_are_typed_errors() {
    // bnum does not divide na: the old path panicked inside
    // `Simulation::new`; registration must now fail closed.
    let bad = VariantSpec {
        params: SimParams {
            bnum: 3,
            ..tiny_params()
        },
        emin: -1.2,
        emax: 1.2,
        cfg: ScfConfig::default(),
    };
    match Service::start(vec![variant(40, 1e-6), bad], ServeConfig::default()) {
        Err(SubmitError::InvalidVariant { variant, reason }) => {
            assert_eq!(variant, 1);
            assert!(!reason.is_empty());
        }
        other => panic!("expected InvalidVariant, got {:?}", other.err()),
    }
    // An inverted energy window is caught the same way.
    let inverted = VariantSpec {
        params: tiny_params(),
        emin: 1.2,
        emax: -1.2,
        cfg: ScfConfig::default(),
    };
    assert!(matches!(
        Service::start(vec![inverted], ServeConfig::default()),
        Err(SubmitError::InvalidVariant { variant: 0, .. })
    ));
}
