//! The scenario schema: strict walking of the parsed TOML tree into a
//! normalized [`Scenario`].
//!
//! Walking is *closed-world*: every key the walker does not explicitly
//! consume is an [`ScenarioError::UnknownKey`] carrying its full dotted
//! path. Optional keys have documented defaults, and the normalized
//! scenario always spells them out — [`Scenario::to_toml`] serializes
//! the *effective* configuration, so re-parsing it is the identity.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::error::ScenarioError;
use crate::toml::{self, Value};

/// Device geometry family. The family fixes the neighbor coordination
/// of the synthetic atomistic chain — the block sparsity pattern the
/// RGF/SSE kernels see — while sections/atoms set its extent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Geometry {
    /// Quasi-1D wire, coordination 4 (the paper's silicon nanowire).
    Nanowire,
    /// Gate-all-around-like stack: denser coordination (6) and gate-
    /// shifted contact bands.
    GateAllAround,
    /// 2D-material-like sheet: sparse coordination (3).
    Sheet2d,
}

impl Geometry {
    pub fn tag(self) -> &'static str {
        match self {
            Geometry::Nanowire => "nanowire",
            Geometry::GateAllAround => "gate-all-around",
            Geometry::Sheet2d => "sheet-2d",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "nanowire" => Some(Geometry::Nanowire),
            "gate-all-around" => Some(Geometry::GateAllAround),
            "sheet-2d" => Some(Geometry::Sheet2d),
            _ => None,
        }
    }

    /// Neighbor slots per atom (`SimParams::nb`).
    pub fn coordination(self) -> usize {
        match self {
            Geometry::Nanowire => 4,
            Geometry::GateAllAround => 6,
            Geometry::Sheet2d => 3,
        }
    }
}

/// `[geometry]` — the device's block structure.
#[derive(Clone, Debug, PartialEq)]
pub struct GeometrySpec {
    pub kind: Geometry,
    /// RGF sections (`SimParams::bnum`), 2..=64.
    pub sections: usize,
    /// Atoms per section, 1..=64 (`na = sections * atoms_per_section`).
    pub atoms_per_section: usize,
    /// Orbitals per atom, 1..=8.
    pub orbitals: usize,
}

/// `[grid]` — energy/momentum resolution and the electron window.
#[derive(Clone, Debug, PartialEq)]
pub struct GridSpec {
    pub nkz: usize,
    pub nqz: usize,
    pub ne: usize,
    pub nw: usize,
    /// Electron energy window (eV).
    pub emin: f64,
    pub emax: f64,
}

/// `[contacts]` — temperature and rigid lead band offsets.
#[derive(Clone, Debug, PartialEq)]
pub struct ContactsSpec {
    /// Lattice/contact temperature (K), (0, 2000].
    pub temperature: f64,
    pub shift_left: f64,
    pub shift_right: f64,
}

/// `[sweep]` — the bias points (and optional temperature ladder) the
/// scenario's observables are recorded at.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSpec {
    /// Bias points (V); each runs at `mu = ±bias/2`. 1..=16 points.
    pub biases: Vec<f64>,
    /// Temperatures (K); defaults to the contact temperature alone.
    /// 1..=4 entries; the sweep runs the full temperature × bias grid.
    pub temperatures: Vec<f64>,
}

/// `[solver]` — Born-iteration knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct SolverSpec {
    pub max_iterations: usize,
    pub tolerance: f64,
    pub mixing: f64,
    pub adaptive_mixing: bool,
    /// SSE kernel variant tag: "reference" | "omen" | "dace".
    pub variant: String,
}

/// `[disorder]` — seeded vacancies and on-site perturbation.
#[derive(Clone, Debug, PartialEq)]
pub struct DisorderSpec {
    pub seed: u64,
    /// Fraction of sites deleted as vacancies, [0, 0.3].
    pub vacancy_fraction: f64,
    /// Half-width of the uniform on-site energy shift (eV), [0, 1].
    pub onsite_amplitude: f64,
    /// Pinned on-site level of vacancy sites (eV), inside the window.
    /// Snapped bitwise to the nearest grid energy when `snap_level` —
    /// landing a vacancy resonance *exactly on* a grid point is what
    /// makes disordered scenarios deterministically exercise the
    /// `SingularBlock` quarantine path.
    pub vacancy_level: f64,
    pub snap_level: bool,
}

/// A fully validated, normalized scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// File-safe identifier: `[a-z0-9_-]+`.
    pub name: String,
    pub geometry: GeometrySpec,
    pub grid: GridSpec,
    pub contacts: ContactsSpec,
    pub sweep: SweepSpec,
    pub solver: SolverSpec,
    pub disorder: Option<DisorderSpec>,
}

/// Closed-world section walker: hands out typed values by key and
/// rejects, at `finish()`, any key it was never asked about.
struct Section<'a> {
    table: &'a BTreeMap<String, Value>,
    path: String,
    seen: BTreeSet<String>,
}

impl<'a> Section<'a> {
    fn new(table: &'a BTreeMap<String, Value>, path: &str) -> Self {
        Section {
            table,
            path: path.to_string(),
            seen: BTreeSet::new(),
        }
    }

    fn key_path(&self, key: &str) -> String {
        if self.path.is_empty() {
            key.to_string()
        } else {
            format!("{}.{key}", self.path)
        }
    }

    fn get(&mut self, key: &str) -> Option<&'a Value> {
        self.seen.insert(key.to_string());
        self.table.get(key)
    }

    fn required(&mut self, key: &str) -> Result<&'a Value, ScenarioError> {
        self.get(key).ok_or_else(|| ScenarioError::MissingKey {
            path: self.key_path(key),
        })
    }

    fn mismatch(&self, key: &str, expected: &'static str, v: &Value) -> ScenarioError {
        ScenarioError::TypeMismatch {
            path: self.key_path(key),
            expected,
            found: v.kind(),
        }
    }

    fn str(&mut self, key: &str) -> Result<&'a str, ScenarioError> {
        match self.required(key)? {
            Value::Str(s) => Ok(s),
            v => Err(self.mismatch(key, "string", v)),
        }
    }

    fn usize_in(&mut self, key: &str, lo: usize, hi: usize) -> Result<usize, ScenarioError> {
        match self.required(key)? {
            Value::Int(i) => self.range_usize(key, *i, lo, hi),
            v => Err(self.mismatch(key, "integer", v)),
        }
    }

    fn opt_usize_in(
        &mut self,
        key: &str,
        default: usize,
        lo: usize,
        hi: usize,
    ) -> Result<usize, ScenarioError> {
        match self.get(key) {
            None => Ok(default),
            Some(Value::Int(i)) => self.range_usize(key, *i, lo, hi),
            Some(v) => Err(self.mismatch(key, "integer", v)),
        }
    }

    fn range_usize(&self, key: &str, i: i64, lo: usize, hi: usize) -> Result<usize, ScenarioError> {
        usize::try_from(i)
            .ok()
            .filter(|u| (lo..=hi).contains(u))
            .ok_or_else(|| ScenarioError::OutOfRange {
                path: self.key_path(key),
                value: i.to_string(),
                constraint: format!("an integer in [{lo}, {hi}]"),
            })
    }

    fn u64(&mut self, key: &str) -> Result<u64, ScenarioError> {
        match self.required(key)? {
            Value::Int(i) => u64::try_from(*i).map_err(|_| ScenarioError::OutOfRange {
                path: self.key_path(key),
                value: i.to_string(),
                constraint: "a non-negative integer".into(),
            }),
            v => Err(self.mismatch(key, "integer", v)),
        }
    }

    fn number(&self, key: &str, v: &Value) -> Result<f64, ScenarioError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            v => Err(self.mismatch(key, "number", v)),
        }
    }

    fn f64_in(&mut self, key: &str, constraint: &Bound) -> Result<f64, ScenarioError> {
        let v = self.required(key)?;
        let f = self.number(key, v)?;
        self.check_bound(key, f, constraint)
    }

    fn opt_f64_in(
        &mut self,
        key: &str,
        default: f64,
        constraint: &Bound,
    ) -> Result<f64, ScenarioError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => {
                let f = self.number(key, v)?;
                self.check_bound(key, f, constraint)
            }
        }
    }

    fn check_bound(&self, key: &str, f: f64, b: &Bound) -> Result<f64, ScenarioError> {
        if b.admits(f) {
            Ok(f)
        } else {
            Err(ScenarioError::OutOfRange {
                path: self.key_path(key),
                value: format!("{f}"),
                constraint: b.describe(),
            })
        }
    }

    fn opt_bool(&mut self, key: &str, default: bool) -> Result<bool, ScenarioError> {
        match self.get(key) {
            None => Ok(default),
            Some(Value::Bool(b)) => Ok(*b),
            Some(v) => Err(self.mismatch(key, "boolean", v)),
        }
    }

    fn f64_array(
        &mut self,
        key: &str,
        max_len: usize,
        each: &Bound,
    ) -> Result<Vec<f64>, ScenarioError> {
        let Some(v) = self.get(key) else {
            return Err(ScenarioError::MissingKey {
                path: self.key_path(key),
            });
        };
        self.f64_array_value(key, v, max_len, each)
    }

    fn opt_f64_array(
        &mut self,
        key: &str,
        max_len: usize,
        each: &Bound,
    ) -> Result<Option<Vec<f64>>, ScenarioError> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => Ok(Some(self.f64_array_value(key, v, max_len, each)?)),
        }
    }

    fn f64_array_value(
        &self,
        key: &str,
        v: &Value,
        max_len: usize,
        each: &Bound,
    ) -> Result<Vec<f64>, ScenarioError> {
        let Value::Array(items) = v else {
            return Err(self.mismatch(key, "array", v));
        };
        if items.is_empty() || items.len() > max_len {
            return Err(ScenarioError::OutOfRange {
                path: self.key_path(key),
                value: format!("{} entries", items.len()),
                constraint: format!("between 1 and {max_len} entries"),
            });
        }
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let elem_key = format!("{key}[{i}]");
            let f = self.number(&elem_key, item)?;
            out.push(self.check_bound(&elem_key, f, each)?);
        }
        Ok(out)
    }

    fn table(&mut self, key: &str) -> Result<Option<&'a BTreeMap<String, Value>>, ScenarioError> {
        match self.get(key) {
            None => Ok(None),
            Some(Value::Table(t)) => Ok(Some(t)),
            Some(v) => Err(self.mismatch(key, "table", v)),
        }
    }

    /// Reject every key that was never consumed. Deterministic: the
    /// first unknown key in sorted order wins.
    fn finish(self) -> Result<(), ScenarioError> {
        for key in self.table.keys() {
            if !self.seen.contains(key) {
                return Err(ScenarioError::UnknownKey {
                    path: self.key_path(key),
                });
            }
        }
        Ok(())
    }
}

/// A closed or half-open numeric interval with finite-ness built in.
struct Bound {
    lo: f64,
    hi: f64,
    /// Exclude the lower endpoint (`(lo, hi]` instead of `[lo, hi]`).
    open_lo: bool,
}

impl Bound {
    const fn closed(lo: f64, hi: f64) -> Self {
        Bound {
            lo,
            hi,
            open_lo: false,
        }
    }

    const fn above(lo: f64, hi: f64) -> Self {
        Bound {
            lo,
            hi,
            open_lo: true,
        }
    }

    fn admits(&self, f: f64) -> bool {
        f.is_finite()
            && f <= self.hi
            && if self.open_lo {
                f > self.lo
            } else {
                f >= self.lo
            }
    }

    fn describe(&self) -> String {
        let open = if self.open_lo { '(' } else { '[' };
        format!("a finite number in {open}{}, {}]", self.lo, self.hi)
    }
}

impl Scenario {
    /// Parse and validate a scenario document. Every failure is a typed
    /// [`ScenarioError`]; this function must never panic on any input.
    pub fn parse(source: &str) -> Result<Scenario, ScenarioError> {
        let root = toml::parse(source)?;
        let mut top = Section::new(&root, "");

        let name = top.str("name")?.to_string();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
        {
            return Err(ScenarioError::OutOfRange {
                path: "name".into(),
                value: format!("{name:?}"),
                constraint: "a non-empty [a-z0-9_-]+ identifier".into(),
            });
        }

        let geometry = {
            let t = top.table("geometry")?.ok_or(ScenarioError::MissingKey {
                path: "geometry".into(),
            })?;
            let mut s = Section::new(t, "geometry");
            let kind_tag = s.str("kind")?;
            let kind = Geometry::from_tag(kind_tag).ok_or_else(|| ScenarioError::OutOfRange {
                path: "geometry.kind".into(),
                value: format!("{kind_tag:?}"),
                constraint: "one of \"nanowire\", \"gate-all-around\", \"sheet-2d\"".into(),
            })?;
            let spec = GeometrySpec {
                kind,
                sections: s.usize_in("sections", 2, 64)?,
                atoms_per_section: s.usize_in("atoms_per_section", 1, 64)?,
                orbitals: s.opt_usize_in("orbitals", 2, 1, 8)?,
            };
            s.finish()?;
            spec
        };

        let grid = {
            let t = top.table("grid")?.ok_or(ScenarioError::MissingKey {
                path: "grid".into(),
            })?;
            let mut s = Section::new(t, "grid");
            let nkz = s.opt_usize_in("nkz", 2, 1, 8)?;
            let window = Bound::closed(-20.0, 20.0);
            let spec = GridSpec {
                nkz,
                nqz: s.opt_usize_in("nqz", nkz, 1, 8)?,
                ne: s.usize_in("ne", 2, 64)?,
                nw: s.opt_usize_in("nw", 1, 1, 63)?,
                emin: s.f64_in("emin", &window)?,
                emax: s.f64_in("emax", &window)?,
            };
            s.finish()?;
            spec
        };

        let contacts = match top.table("contacts")? {
            None => ContactsSpec {
                temperature: 300.0,
                shift_left: 0.0,
                shift_right: 0.0,
            },
            Some(t) => {
                let mut s = Section::new(t, "contacts");
                let shift = Bound::closed(-10.0, 10.0);
                let spec = ContactsSpec {
                    temperature: s.opt_f64_in("temperature", 300.0, &Bound::above(0.0, 2000.0))?,
                    shift_left: s.opt_f64_in("shift_left", 0.0, &shift)?,
                    shift_right: s.opt_f64_in("shift_right", 0.0, &shift)?,
                };
                s.finish()?;
                spec
            }
        };

        let sweep = {
            let t = top.table("sweep")?.ok_or(ScenarioError::MissingKey {
                path: "sweep".into(),
            })?;
            let mut s = Section::new(t, "sweep");
            let spec = SweepSpec {
                biases: s.f64_array("biases", 16, &Bound::closed(-10.0, 10.0))?,
                temperatures: s
                    .opt_f64_array("temperatures", 4, &Bound::above(0.0, 2000.0))?
                    .unwrap_or_else(|| vec![contacts.temperature]),
            };
            s.finish()?;
            spec
        };

        let solver = match top.table("solver")? {
            None => SolverSpec::default(),
            Some(t) => {
                let mut s = Section::new(t, "solver");
                let variant = match s.get("variant") {
                    None => "dace".to_string(),
                    Some(Value::Str(v)) if ["reference", "omen", "dace"].contains(&v.as_str()) => {
                        v.clone()
                    }
                    Some(Value::Str(v)) => {
                        return Err(ScenarioError::OutOfRange {
                            path: "solver.variant".into(),
                            value: format!("{v:?}"),
                            constraint: "one of \"reference\", \"omen\", \"dace\"".into(),
                        })
                    }
                    Some(v) => return Err(s.mismatch("variant", "string", v)),
                };
                let spec = SolverSpec {
                    max_iterations: s.opt_usize_in("max_iterations", 15, 1, 200)?,
                    tolerance: s.opt_f64_in("tolerance", 1e-6, &Bound::above(0.0, 1.0))?,
                    mixing: s.opt_f64_in("mixing", 0.5, &Bound::above(0.0, 1.0))?,
                    adaptive_mixing: s.opt_bool("adaptive_mixing", true)?,
                    variant,
                };
                s.finish()?;
                spec
            }
        };

        let disorder = match top.table("disorder")? {
            None => None,
            Some(t) => {
                let mut s = Section::new(t, "disorder");
                let spec = DisorderSpec {
                    seed: s.u64("seed")?,
                    vacancy_fraction: s.opt_f64_in(
                        "vacancy_fraction",
                        0.0,
                        &Bound::closed(0.0, 0.3),
                    )?,
                    onsite_amplitude: s.opt_f64_in(
                        "onsite_amplitude",
                        0.0,
                        &Bound::closed(0.0, 1.0),
                    )?,
                    vacancy_level: s.opt_f64_in(
                        "vacancy_level",
                        0.0,
                        &Bound::closed(-20.0, 20.0),
                    )?,
                    snap_level: s.opt_bool("snap_level", true)?,
                };
                s.finish()?;
                Some(spec)
            }
        };

        top.finish()?;

        let mut scenario = Scenario {
            name,
            geometry,
            grid,
            contacts,
            sweep,
            solver,
            disorder,
        };
        scenario.check_cross_field()?;
        scenario.snap_vacancy_level();
        Ok(scenario)
    }

    /// Snap the vacancy level bitwise onto the nearest energy grid point,
    /// replicating the exact `Grids` formula `emin + e * de`. A vacancy
    /// resonance landing *exactly on* a grid energy (with `device_eta` 0)
    /// is what makes the disordered scenarios trip `SingularBlock`
    /// deterministically; a level between grid points just scatters.
    /// Idempotent, so normalized scenarios re-parse to themselves.
    fn snap_vacancy_level(&mut self) {
        let (ne, emin, emax) = (self.grid.ne, self.grid.emin, self.grid.emax);
        let Some(d) = &mut self.disorder else { return };
        if !d.snap_level {
            return;
        }
        let de = (emax - emin) / (ne - 1) as f64;
        let mut best = emin;
        let mut best_gap = f64::INFINITY;
        for e in 0..ne {
            let energy = emin + e as f64 * de;
            let gap = (energy - d.vacancy_level).abs();
            if gap < best_gap {
                best_gap = gap;
                best = energy;
            }
        }
        d.vacancy_level = best;
    }

    /// Cross-field physical consistency — values fine in isolation but
    /// impossible together.
    fn check_cross_field(&self) -> Result<(), ScenarioError> {
        let g = &self.geometry;
        let na = g.sections * g.atoms_per_section;
        if g.kind.coordination() >= na {
            return Err(ScenarioError::Invalid {
                path: "geometry".into(),
                reason: format!(
                    "{} coordination {} needs more than {na} atoms \
                     (sections * atoms_per_section)",
                    g.kind.tag(),
                    g.kind.coordination()
                ),
            });
        }
        let gr = &self.grid;
        if gr.emax <= gr.emin {
            return Err(ScenarioError::Invalid {
                path: "grid.emax".into(),
                reason: format!("window [{}, {}] is empty", gr.emin, gr.emax),
            });
        }
        if gr.nw >= gr.ne {
            return Err(ScenarioError::Invalid {
                path: "grid.nw".into(),
                reason: format!(
                    "phonon ladder nw {} must be shorter than the energy grid ne {}",
                    gr.nw, gr.ne
                ),
            });
        }
        for (i, &b) in self.sweep.biases.iter().enumerate() {
            // mu = ±b/2 outside the energy window puts the contact
            // occupation edges where no spectrum is computed.
            if b / 2.0 < gr.emin || b / 2.0 > gr.emax || -b / 2.0 < gr.emin || -b / 2.0 > gr.emax {
                return Err(ScenarioError::Invalid {
                    path: format!("sweep.biases[{i}]"),
                    reason: format!(
                        "bias {b} V puts mu = ±{} eV outside the energy window [{}, {}]",
                        b / 2.0,
                        gr.emin,
                        gr.emax
                    ),
                });
            }
        }
        if let Some(d) = &self.disorder {
            if d.vacancy_level < gr.emin || d.vacancy_level > gr.emax {
                return Err(ScenarioError::Invalid {
                    path: "disorder.vacancy_level".into(),
                    reason: format!(
                        "level {} eV is outside the energy window [{}, {}]",
                        d.vacancy_level, gr.emin, gr.emax
                    ),
                });
            }
            if d.vacancy_fraction > 0.0 && gr.ne < 8 {
                return Err(ScenarioError::Invalid {
                    path: "disorder.vacancy_fraction".into(),
                    reason: format!(
                        "vacancy resonances quarantine one energy column; with ne {} \
                         that exceeds the tolerable bad fraction (need ne >= 8)",
                        gr.ne
                    ),
                });
            }
        }
        Ok(())
    }

    /// Canonical serialization of the *effective* configuration: every
    /// optional key is spelled out with its resolved value, keys are
    /// sorted, floats keep round-trip precision. `parse(to_toml(s))`
    /// is the identity on normalized scenarios.
    pub fn to_toml(&self) -> String {
        let mut root = BTreeMap::new();
        root.insert("name".to_string(), Value::Str(self.name.clone()));
        let mut geometry = BTreeMap::new();
        geometry.insert(
            "kind".to_string(),
            Value::Str(self.geometry.kind.tag().to_string()),
        );
        geometry.insert(
            "sections".to_string(),
            Value::Int(self.geometry.sections as i64),
        );
        geometry.insert(
            "atoms_per_section".to_string(),
            Value::Int(self.geometry.atoms_per_section as i64),
        );
        geometry.insert(
            "orbitals".to_string(),
            Value::Int(self.geometry.orbitals as i64),
        );
        root.insert("geometry".to_string(), Value::Table(geometry));
        let mut grid = BTreeMap::new();
        grid.insert("nkz".to_string(), Value::Int(self.grid.nkz as i64));
        grid.insert("nqz".to_string(), Value::Int(self.grid.nqz as i64));
        grid.insert("ne".to_string(), Value::Int(self.grid.ne as i64));
        grid.insert("nw".to_string(), Value::Int(self.grid.nw as i64));
        grid.insert("emin".to_string(), Value::Float(self.grid.emin));
        grid.insert("emax".to_string(), Value::Float(self.grid.emax));
        root.insert("grid".to_string(), Value::Table(grid));
        let mut contacts = BTreeMap::new();
        contacts.insert(
            "temperature".to_string(),
            Value::Float(self.contacts.temperature),
        );
        contacts.insert(
            "shift_left".to_string(),
            Value::Float(self.contacts.shift_left),
        );
        contacts.insert(
            "shift_right".to_string(),
            Value::Float(self.contacts.shift_right),
        );
        root.insert("contacts".to_string(), Value::Table(contacts));
        let mut sweep = BTreeMap::new();
        sweep.insert(
            "biases".to_string(),
            Value::Array(self.sweep.biases.iter().map(|&b| Value::Float(b)).collect()),
        );
        sweep.insert(
            "temperatures".to_string(),
            Value::Array(
                self.sweep
                    .temperatures
                    .iter()
                    .map(|&t| Value::Float(t))
                    .collect(),
            ),
        );
        root.insert("sweep".to_string(), Value::Table(sweep));
        let mut solver = BTreeMap::new();
        solver.insert(
            "max_iterations".to_string(),
            Value::Int(self.solver.max_iterations as i64),
        );
        solver.insert("tolerance".to_string(), Value::Float(self.solver.tolerance));
        solver.insert("mixing".to_string(), Value::Float(self.solver.mixing));
        solver.insert(
            "adaptive_mixing".to_string(),
            Value::Bool(self.solver.adaptive_mixing),
        );
        solver.insert(
            "variant".to_string(),
            Value::Str(self.solver.variant.clone()),
        );
        root.insert("solver".to_string(), Value::Table(solver));
        if let Some(d) = &self.disorder {
            let mut disorder = BTreeMap::new();
            disorder.insert("seed".to_string(), Value::Int(d.seed as i64));
            disorder.insert(
                "vacancy_fraction".to_string(),
                Value::Float(d.vacancy_fraction),
            );
            disorder.insert(
                "onsite_amplitude".to_string(),
                Value::Float(d.onsite_amplitude),
            );
            disorder.insert("vacancy_level".to_string(), Value::Float(d.vacancy_level));
            disorder.insert("snap_level".to_string(), Value::Bool(d.snap_level));
            root.insert("disorder".to_string(), Value::Table(disorder));
        }
        toml::dump(&root)
    }
}

impl Default for SolverSpec {
    fn default() -> Self {
        SolverSpec {
            max_iterations: 15,
            tolerance: 1e-6,
            mixing: 0.5,
            adaptive_mixing: true,
            variant: "dace".to_string(),
        }
    }
}
