//! The single registry of counter/metric name strings.
//!
//! Every metric exported anywhere — the report's counter blocks, the
//! time-series samples, the Prometheus rendering — must spell its name
//! through a constant in this module. Scattered string literals fork a
//! metric silently on the first typo ("health.quarantine" next to
//! "health.quarantined" would both look plausible in a dashboard);
//! `report.rs` carries a test asserting its block keys resolve here.
//!
//! Naming convention: `<block>.<field>`, where `<block>` matches the
//! report block (`health`, `elastic`, `balance`, `boundary`, `alloc`,
//! `journal`, `service`) and `<field>` the counter inside it. The Prometheus
//! rendering in [`crate::series`] maps `.` to `_` and prefixes `qt_`.

/// Total real floating-point operations.
pub const FLOPS: &str = "flops";
/// Total communicated bytes.
pub const BYTES: &str = "bytes";
/// Heap bytes allocated (counting allocator only).
pub const ALLOC_BYTES: &str = "alloc.bytes";
/// Heap allocations performed (counting allocator only).
pub const ALLOC_COUNT: &str = "alloc.count";
/// Workspace-arena pool misses.
pub const WS_FRESH: &str = "ws.fresh";
/// Boundary self-energies served from the cache.
pub const BOUNDARY_CACHE_HITS: &str = "boundary.cache_hits";
/// Boundary self-energies recomputed by decimation.
pub const BOUNDARY_CACHE_MISSES: &str = "boundary.cache_misses";
/// Grid points quarantined after numerical failures.
pub const HEALTH_QUARANTINED: &str = "health.quarantined_points";
/// Eta-bump regularized decimation retries.
pub const HEALTH_ETA_RETRIES: &str = "health.eta_retries";
/// Adaptive-mixing backoffs (mixing factor halvings).
pub const HEALTH_MIXING_BACKOFFS: &str = "health.mixing_backoffs";
/// Communication retries (retransmissions, timeouts, discards).
pub const HEALTH_COMM_RETRIES: &str = "health.comm_retries";
/// SCF checkpoints written to disk.
pub const HEALTH_CHECKPOINT_WRITES: &str = "health.checkpoint_writes";
/// Ranks declared permanently dead.
pub const ELASTIC_RANK_DEATHS: &str = "elastic.rank_deaths";
/// Receive-poll liveness probes that expired without data.
pub const ELASTIC_HEARTBEAT_TIMEOUTS: &str = "elastic.heartbeat_timeouts";
/// Survivor re-tiling passes.
pub const ELASTIC_RETILE_EVENTS: &str = "elastic.retile_events";
/// Tiles migrated off dead ranks.
pub const ELASTIC_MIGRATED_TILES: &str = "elastic.migrated_tiles";
/// Work-steal requests sent by idle ranks.
pub const BALANCE_STEAL_REQUESTS: &str = "balance.steal_requests";
/// Work units granted to thieves.
pub const BALANCE_STOLEN_UNITS: &str = "balance.stolen_units";
/// Iteration-to-iteration re-partitioning passes.
pub const BALANCE_REBALANCE_EVENTS: &str = "balance.rebalance_events";
/// Units whose owner changed in re-partitioning passes.
pub const BALANCE_MOVED_UNITS: &str = "balance.moved_units";
/// Journal events lost to flight-recorder ring overflow.
pub const JOURNAL_DROPPED: &str = "journal.dropped";
/// Journal events currently captured across all rings.
pub const JOURNAL_EVENTS: &str = "journal.events";
/// Kernel-selector decisions that chose the CSR sparse route.
pub const KERNEL_SPARSE_SELECTED: &str = "kernel.sparse_selected";
/// Kernel-selector decisions that kept the blocked dense GEMM.
pub const KERNEL_DENSE_SELECTED: &str = "kernel.dense_selected";
/// Hysteresis flips of sticky per-block kernel choices.
pub const KERNEL_SWITCHES: &str = "kernel.switches";
/// Real flops executed by CSR sparse kernels.
pub const KERNEL_SPARSE_FLOPS: &str = "kernel.sparse_flops";
/// Bytes streamed by CSR sparse kernels (minimal traffic model).
pub const KERNEL_SPARSE_BYTES: &str = "kernel.sparse_bytes";
/// Flops of selector-governed coupling products run densely.
pub const KERNEL_DENSE_FLOPS: &str = "kernel.dense_flops";
/// Sweep requests admitted into the service queue.
pub const SERVICE_ADMITTED: &str = "service.admitted";
/// Sweep requests rejected with backpressure.
pub const SERVICE_REJECTED: &str = "service.rejected";
/// Sweep requests completed with every point answered.
pub const SERVICE_COMPLETED: &str = "service.completed";
/// Sweep requests that failed after exhausting retries.
pub const SERVICE_FAILED: &str = "service.failed";
/// Requests cancelled by the deadline watchdog.
pub const SERVICE_DEADLINE_CANCELS: &str = "service.deadline_cancels";
/// Sweep points seeded from a neighboring converged solve.
pub const SERVICE_WARM_STARTS: &str = "service.warm_starts";
/// Warm-start validation failures degraded to cold solves.
pub const SERVICE_WARM_FALLBACKS: &str = "service.warm_fallbacks";
/// Per-request retries after transient failures.
pub const SERVICE_RETRIES: &str = "service.retries";
/// Circuit-breaker trips quarantining device variants.
pub const SERVICE_BREAKER_OPENS: &str = "service.breaker_opens";
/// In-flight sweep points checkpointed by drain-on-shutdown.
pub const SERVICE_DRAINED: &str = "service.drained";
/// Warm-start seeds evicted by the bounded store's spread policy.
pub const SERVICE_WARM_EVICTED: &str = "service.warm_evicted";
/// Scenarios parsed, validated and built into simulations.
pub const CORPUS_SCENARIOS_BUILT: &str = "corpus.scenarios_built";
/// Scenarios rejected fail-closed with typed errors.
pub const CORPUS_SCENARIOS_REJECTED: &str = "corpus.scenarios_rejected";
/// Golden-corpus scenarios executed end to end.
pub const CORPUS_SCENARIOS_RUN: &str = "corpus.scenarios_run";
/// Scenario fingerprints that matched their golden record.
pub const CORPUS_MATCHED: &str = "corpus.matched";
/// Scenario fingerprints that diverged from their golden record.
pub const CORPUS_MISMATCHED: &str = "corpus.mismatched";
/// Chaos-matrix reruns of corpus scenarios under fault injection.
pub const CORPUS_CHAOS_RERUNS: &str = "corpus.chaos_reruns";

/// Number of metrics sampled into every time-series snapshot.
pub const N_SERIES_METRICS: usize = 43;

/// The metric names of a time-series sample, in sampling order. The
/// order is part of the series schema: `Sample::values[i]` is the total
/// of `SERIES_METRICS[i]`.
pub const SERIES_METRICS: [&str; N_SERIES_METRICS] = [
    FLOPS,
    BYTES,
    ALLOC_BYTES,
    ALLOC_COUNT,
    WS_FRESH,
    BOUNDARY_CACHE_HITS,
    BOUNDARY_CACHE_MISSES,
    HEALTH_QUARANTINED,
    HEALTH_ETA_RETRIES,
    HEALTH_MIXING_BACKOFFS,
    HEALTH_COMM_RETRIES,
    HEALTH_CHECKPOINT_WRITES,
    ELASTIC_RANK_DEATHS,
    ELASTIC_HEARTBEAT_TIMEOUTS,
    ELASTIC_RETILE_EVENTS,
    ELASTIC_MIGRATED_TILES,
    BALANCE_STEAL_REQUESTS,
    BALANCE_STOLEN_UNITS,
    BALANCE_REBALANCE_EVENTS,
    BALANCE_MOVED_UNITS,
    KERNEL_SPARSE_SELECTED,
    KERNEL_DENSE_SELECTED,
    KERNEL_SWITCHES,
    KERNEL_SPARSE_FLOPS,
    KERNEL_SPARSE_BYTES,
    KERNEL_DENSE_FLOPS,
    SERVICE_ADMITTED,
    SERVICE_REJECTED,
    SERVICE_COMPLETED,
    SERVICE_FAILED,
    SERVICE_DEADLINE_CANCELS,
    SERVICE_WARM_STARTS,
    SERVICE_WARM_FALLBACKS,
    SERVICE_RETRIES,
    SERVICE_BREAKER_OPENS,
    SERVICE_DRAINED,
    SERVICE_WARM_EVICTED,
    CORPUS_SCENARIOS_BUILT,
    CORPUS_SCENARIOS_REJECTED,
    CORPUS_SCENARIOS_RUN,
    CORPUS_MATCHED,
    CORPUS_MISMATCHED,
    CORPUS_CHAOS_RERUNS,
];

/// The report's `health` block keys are the `health.*` metric names with
/// the block prefix stripped; same for `elasticity` (`elastic.*`) and the
/// counter fields of `balance`. This helper strips the prefix so the
/// report test can assert its keys resolve here.
pub fn field_of(metric: &str) -> &str {
    metric.rsplit('.').next().unwrap_or(metric)
}

/// Is `name` a registered metric name?
pub fn is_registered(name: &str) -> bool {
    name == JOURNAL_DROPPED || name == JOURNAL_EVENTS || SERIES_METRICS.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_metrics_are_unique_and_registered() {
        for (i, m) in SERIES_METRICS.iter().enumerate() {
            assert!(is_registered(m));
            assert!(
                !SERIES_METRICS[..i].contains(m),
                "duplicate metric name {m:?}"
            );
        }
        assert!(is_registered(JOURNAL_DROPPED));
        assert!(!is_registered("health.quarantine")); // the typo-fork case
    }

    #[test]
    fn field_of_strips_the_block_prefix() {
        assert_eq!(field_of(HEALTH_ETA_RETRIES), "eta_retries");
        assert_eq!(field_of(FLOPS), "flops");
        assert_eq!(field_of(BALANCE_MOVED_UNITS), "moved_units");
    }
}
