//! Compressed-sparse-row complex matrices.
//!
//! The Hamiltonian blocks produced by a localized-basis DFT code are sparse
//! (each orbital couples to a few dozen neighbors), so the RGF triple
//! products `F[n] @ gR[n+1] @ E[n+1]` can be evaluated along three routes
//! (§5.1.2 / Table 6): densify-then-GEMM, CSR×dense (CSRMM), or fully sparse
//! CSR×CSR (CSRGEMM). All three are implemented here.

use crate::complex::Complex64;
use crate::dense::Matrix;
use crate::flops;
use crate::workspace;

/// Account a sparse-kernel operation: `f` real flops into the global flop
/// counter (same source of truth as the dense GEMMs) and into the
/// sparse-kernel telemetry shard, plus `b` streamed bytes under the
/// minimal traffic model (each operand read once, the result written
/// once).
#[inline]
fn account(f: u64, b: u64) {
    flops::add_flops(f);
    qt_telemetry::counters::add_kernel_sparse_flops(f);
    qt_telemetry::counters::add_kernel_sparse_bytes(b);
}

/// Bytes of one dense `Complex64` element.
const C64_BYTES: u64 = 16;
/// Bytes of one CSR index / row-pointer entry.
const IDX_BYTES: u64 = 8;

/// CSR sparse matrix over [`Complex64`].
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<Complex64>,
}

impl CsrMatrix {
    /// Empty (all-zero) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Identity of order `n`.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            data: vec![Complex64::ONE; n],
        }
    }

    /// Build from triplets `(row, col, value)`; duplicate entries are summed.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        mut triplets: Vec<(usize, usize, Complex64)>,
    ) -> Self {
        triplets.sort_by_key(|&(r, c, _)| (r, c));
        let mut indptr = vec![0usize; rows + 1];
        let mut indices: Vec<usize> = Vec::with_capacity(triplets.len());
        let mut data: Vec<Complex64> = Vec::with_capacity(triplets.len());
        let mut last: Option<(usize, usize)> = None;
        for (r, c, v) in triplets {
            assert!(r < rows && c < cols, "triplet out of bounds");
            if last == Some((r, c)) {
                *data.last_mut().unwrap() += v;
            } else {
                indices.push(c);
                data.push(v);
                indptr[r + 1] += 1;
                last = Some((r, c));
            }
        }
        for r in 0..rows {
            indptr[r + 1] += indptr[r];
        }
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            data,
        }
    }

    /// Keep-predicate of the dense → CSR conversions: strict structural
    /// non-zero test when `tol == 0` (no arithmetic at all), squared-
    /// modulus compare otherwise — `hypot` per entry is pure overhead on
    /// the per-solve conversion path, and `|v| > tol ⇔ |v|² > tol²` for
    /// every representable magnitude a drop threshold cares about.
    #[inline(always)]
    fn keeps(v: Complex64, tol: f64) -> bool {
        if tol == 0.0 {
            v.re != 0.0 || v.im != 0.0
        } else {
            v.norm_sqr() > tol * tol
        }
    }

    /// Convert from dense, dropping entries with modulus `<= tol`.
    pub fn from_dense(m: &Matrix, tol: f64) -> Self {
        let (rows, cols) = m.shape();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0);
        for i in 0..rows {
            for j in 0..cols {
                let v = m[(i, j)];
                if Self::keeps(v, tol) {
                    indices.push(j);
                    data.push(v);
                }
            }
            indptr.push(indices.len());
        }
        let out = CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            data,
        };
        account(0, C64_BYTES * (rows * cols) as u64 + out.storage_bytes());
        out
    }

    /// Like [`CsrMatrix::from_dense`], but with all three CSR arrays
    /// checked out of the thread-local workspace pools, so warm SCF
    /// iterations build coupling-block images without touching the
    /// allocator. The buffers are sized for the dense worst case, so the
    /// push loop can never reallocate. Return the storage with
    /// [`CsrMatrix::recycle`] on the same thread.
    pub fn from_dense_pooled(m: &Matrix, tol: f64) -> Self {
        let (rows, cols) = m.shape();
        // Empty checkouts: every retained slot is pushed before it is
        // read, so the zeroing `take_*` variants would memset worst-case
        // dense storage only to clear it again.
        let mut data = workspace::take_scratch_empty(rows * cols);
        let mut indices = workspace::take_idx_empty(rows * cols);
        let mut indptr = workspace::take_idx_empty(rows + 1);
        indptr.push(0);
        for i in 0..rows {
            for j in 0..cols {
                let v = m[(i, j)];
                if Self::keeps(v, tol) {
                    indices.push(j);
                    data.push(v);
                }
            }
            indptr.push(indices.len());
        }
        let out = CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            data,
        };
        account(0, C64_BYTES * (rows * cols) as u64 + out.storage_bytes());
        out
    }

    /// Return this matrix's storage to the calling thread's workspace
    /// pools. Pairs with [`CsrMatrix::from_dense_pooled`]; harmless (the
    /// buffers simply join the pools) for heap-built matrices.
    pub fn recycle(self) {
        workspace::give_scratch(self.data);
        workspace::give_idx(self.indices);
        workspace::give_idx(self.indptr);
    }

    /// Convert to dense. Counted as the memory traffic of a densification.
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for idx in self.indptr[i]..self.indptr[i + 1] {
                m[(i, self.indices[idx])] = self.data[idx];
            }
        }
        account(
            0,
            self.storage_bytes() + C64_BYTES * (self.rows * self.cols) as u64,
        );
        m
    }

    /// Bytes of the CSR storage itself: one complex value per stored
    /// entry, one column index per entry, one row pointer per row.
    pub fn storage_bytes(&self) -> u64 {
        (C64_BYTES + IDX_BYTES) * self.nnz() as u64 + IDX_BYTES * (self.rows + 1) as u64
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structural) non-zeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Fraction of non-zero entries.
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// Occupancy list of the stored rows, flattened as `(row, start, end)`
    /// triples in a pooled index buffer (return it with
    /// [`workspace::give_idx`]). The dense×CSR kernels iterate this per
    /// dense row, so at low density the inner loops touch only the rows
    /// that exist instead of probing `indptr` across the whole order.
    fn occupied_rows(&self) -> Vec<usize> {
        let mut occ = workspace::take_idx_empty(3 * self.rows);
        for k in 0..self.rows {
            let (s, e) = (self.indptr[k], self.indptr[k + 1]);
            if s != e {
                occ.push(k);
                occ.push(s);
                occ.push(e);
            }
        }
        occ
    }

    /// Iterate `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, Complex64)> + '_ {
        (0..self.rows).flat_map(move |i| {
            (self.indptr[i]..self.indptr[i + 1])
                .map(move |idx| (i, self.indices[idx], self.data[idx]))
        })
    }

    /// Sparse × dense → dense (`CSRMM` forward form).
    pub fn mul_dense(&self, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, b.cols());
        self.mul_dense_acc(b, &mut out);
        out
    }

    /// `out += self · b` — the CSRMM forward form, accumulating into a
    /// caller-owned (usually pooled) dense block.
    pub fn mul_dense_acc(&self, b: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, b.rows(), "inner dimension mismatch");
        let n = b.cols();
        assert_eq!(out.shape(), (self.rows, n), "output shape mismatch");
        account(
            8 * self.nnz() as u64 * n as u64,
            self.storage_bytes() + C64_BYTES * ((self.nnz() + self.rows) * n) as u64,
        );
        for i in 0..self.rows {
            let out_row = out.row_mut(i);
            for idx in self.indptr[i]..self.indptr[i + 1] {
                let a = self.data[idx];
                let b_row = b.row(self.indices[idx]);
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o = o.mul_add(a, bv);
                }
            }
        }
    }

    /// Dense × sparse → dense (the "transposed dense-CSR" form of CSRMM).
    pub fn rmul_dense(&self, a: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), self.cols);
        self.rmul_dense_scaled_acc(a, Complex64::ONE, &mut out);
        out
    }

    /// `out += z · (a · self)` — dense × sparse accumulate, the
    /// right-hand CSRMM form the RGF recursions need for `X · τ`
    /// coupling products (with `z = ±1`).
    pub fn rmul_dense_scaled_acc(&self, a: &Matrix, z: Complex64, out: &mut Matrix) {
        assert_eq!(a.cols(), self.rows, "inner dimension mismatch");
        let m = a.rows();
        assert_eq!(out.shape(), (m, self.cols), "output shape mismatch");
        account(
            8 * self.nnz() as u64 * m as u64,
            self.storage_bytes() + C64_BYTES * ((self.nnz() + self.cols) * m) as u64,
        );
        // Row-contiguous: for each row of `a`, both the `a` reads and the
        // scattered `out` updates stay inside one cached row. The stored
        // rows are compacted into an occupancy list once, so the hot loop
        // never probes `indptr` for the (at low density, many) empty rows.
        let occ = self.occupied_rows();
        for i in 0..m {
            let a_row = a.row(i);
            let out_row = out.row_mut(i);
            for t in occ.chunks_exact(3) {
                let av = a_row[t[0]];
                if av == Complex64::ZERO {
                    continue;
                }
                let avz = av * z;
                for idx in t[1]..t[2] {
                    let o = &mut out_row[self.indices[idx]];
                    *o = o.mul_add(avz, self.data[idx]);
                }
            }
        }
        workspace::give_idx(occ);
    }

    /// `out += z · (a · selfᴴ)` — dense × conjugate-transposed sparse,
    /// accumulating; covers the RGF's `X · τ†` coupling products without
    /// materializing τ†. `selfᴴ[k, j] = conj(self[j, k])`, so each stored
    /// row `j` of `self` contributes one column `j` of the product.
    pub fn rmul_dagger_scaled_acc(&self, a: &Matrix, z: Complex64, out: &mut Matrix) {
        assert_eq!(a.cols(), self.cols, "inner dimension mismatch");
        let m = a.rows();
        assert_eq!(out.shape(), (m, self.rows), "output shape mismatch");
        account(
            8 * self.nnz() as u64 * m as u64,
            self.storage_bytes() + C64_BYTES * ((self.nnz() + self.rows) * m) as u64,
        );
        // Dot-product form, row-contiguous in both operands: stored row `j`
        // of `self` is column `j` of `selfᴴ`, so `out[i, j]` is a gather-dot
        // of `a`'s row `i` against that row's indices — no column-strided
        // walks over `a` or `out`, and the per-entry accumulator folds in
        // with a single scaled add (the blocked GEMM epilogue order). The
        // compacted occupancy list keeps the hot loop off the empty rows.
        let occ = self.occupied_rows();
        for i in 0..m {
            let a_row = a.row(i);
            let out_row = out.row_mut(i);
            for t in occ.chunks_exact(3) {
                let mut acc = Complex64::ZERO;
                for idx in t[1]..t[2] {
                    acc = acc.mul_add(a_row[self.indices[idx]], self.data[idx].conj());
                }
                out_row[t[0]] += acc * z;
            }
        }
        workspace::give_idx(occ);
    }

    /// Sparse × sparse → sparse (Gustavson's algorithm, `CSRGEMM`). The
    /// per-row accumulator, occupancy markers and touch list come from
    /// the thread-local workspace pools; only the result allocates.
    pub fn mul_csr(&self, b: &CsrMatrix) -> CsrMatrix {
        assert_eq!(self.cols, b.rows, "inner dimension mismatch");
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0);
        // Dense accumulator row with occupancy markers. The pooled marker
        // buffer arrives zeroed, so occupancy for row `i` is `i + 1`.
        let mut acc = workspace::take_scratch(b.cols);
        let mut marker = workspace::take_idx(b.cols);
        let mut touched = workspace::take_idx(b.cols);
        touched.clear();
        let mut muladds: u64 = 0;
        for i in 0..self.rows {
            touched.clear();
            for idx in self.indptr[i]..self.indptr[i + 1] {
                let a = self.data[idx];
                let k = self.indices[idx];
                for bidx in b.indptr[k]..b.indptr[k + 1] {
                    let j = b.indices[bidx];
                    muladds += 1;
                    if marker[j] != i + 1 {
                        marker[j] = i + 1;
                        acc[j] = a * b.data[bidx];
                        touched.push(j);
                    } else {
                        acc[j] = acc[j].mul_add(a, b.data[bidx]);
                    }
                }
            }
            touched.sort_unstable();
            for &j in &touched {
                indices.push(j);
                data.push(acc[j]);
            }
            indptr.push(indices.len());
        }
        workspace::give_scratch(acc);
        workspace::give_idx(marker);
        workspace::give_idx(touched);
        let out = CsrMatrix {
            rows: self.rows,
            cols: b.cols,
            indptr,
            indices,
            data,
        };
        account(
            8 * muladds,
            self.storage_bytes() + b.storage_bytes() + out.storage_bytes(),
        );
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &j in &self.indices {
            counts[j + 1] += 1;
        }
        for j in 0..self.cols {
            counts[j + 1] += counts[j];
        }
        let indptr = counts.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut data = vec![Complex64::ZERO; self.nnz()];
        let mut next = counts;
        for (i, j, v) in self.iter() {
            let pos = next[j];
            indices[pos] = i;
            data[pos] = v;
            next[j] += 1;
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            data,
        }
    }

    /// Sparse matrix-vector product.
    pub fn matvec(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(x.len(), self.cols);
        account(
            8 * self.nnz() as u64,
            self.storage_bytes() + C64_BYTES * (self.cols + self.rows) as u64,
        );
        let mut y = vec![Complex64::ZERO; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = Complex64::ZERO;
            for idx in self.indptr[i]..self.indptr[i + 1] {
                acc = acc.mul_add(self.data[idx], x[self.indices[idx]]);
            }
            *yi = acc;
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use rand::{Rng, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    fn random_sparse(rows: usize, cols: usize, density: f64, r: &mut impl Rng) -> CsrMatrix {
        let dense = Matrix::from_fn(rows, cols, |_, _| {
            if r.random_range(0.0..1.0) < density {
                c64(r.random_range(-1.0..1.0), r.random_range(-1.0..1.0))
            } else {
                Complex64::ZERO
            }
        });
        CsrMatrix::from_dense(&dense, 0.0)
    }

    #[test]
    fn dense_roundtrip() {
        let mut r = rng();
        let s = random_sparse(9, 7, 0.3, &mut r);
        let back = CsrMatrix::from_dense(&s.to_dense(), 0.0);
        assert_eq!(s, back);
    }

    #[test]
    fn spmm_matches_dense() {
        let mut r = rng();
        let s = random_sparse(8, 6, 0.4, &mut r);
        let b = Matrix::random(6, 5, &mut r);
        let got = s.mul_dense(&b);
        let expect = s.to_dense().matmul(&b);
        assert!(got.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn rmul_matches_dense() {
        let mut r = rng();
        let s = random_sparse(6, 8, 0.4, &mut r);
        let a = Matrix::random(5, 6, &mut r);
        let got = s.rmul_dense(&a);
        let expect = a.matmul(&s.to_dense());
        assert!(got.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn spgemm_matches_dense() {
        let mut r = rng();
        let a = random_sparse(7, 9, 0.35, &mut r);
        let b = random_sparse(9, 4, 0.35, &mut r);
        let got = a.mul_csr(&b).to_dense();
        let expect = a.to_dense().matmul(&b.to_dense());
        assert!(got.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let mut r = rng();
        let s = random_sparse(6, 9, 0.3, &mut r);
        let got = s.transpose().to_dense();
        let expect = s.to_dense().transpose();
        assert!(got.max_abs_diff(&expect) < 1e-14);
    }

    #[test]
    fn identity_behaves() {
        let mut r = rng();
        let s = random_sparse(5, 5, 0.5, &mut r);
        let i = CsrMatrix::identity(5);
        assert!(i.mul_csr(&s).to_dense().max_abs_diff(&s.to_dense()) < 1e-15);
        assert!(s.mul_csr(&i).to_dense().max_abs_diff(&s.to_dense()) < 1e-15);
    }

    #[test]
    fn matvec_matches_dense() {
        let mut r = rng();
        let s = random_sparse(6, 6, 0.5, &mut r);
        let x: Vec<_> = (0..6)
            .map(|_| c64(r.random_range(-1.0..1.0), 0.3))
            .collect();
        let y = s.matvec(&x);
        let d = s.to_dense();
        for i in 0..6 {
            let expect: Complex64 = (0..6).map(|j| d[(i, j)] * x[j]).sum();
            assert!((y[i] - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn triplets_sum_duplicates() {
        let t = vec![
            (0, 0, c64(1.0, 0.0)),
            (0, 0, c64(2.0, 0.0)),
            (1, 1, c64(3.0, 0.0)),
        ];
        let s = CsrMatrix::from_triplets(2, 2, t);
        let d = s.to_dense();
        assert!((d[(0, 0)] - c64(3.0, 0.0)).abs() < 1e-15);
        assert!((d[(1, 1)] - c64(3.0, 0.0)).abs() < 1e-15);
    }

    #[test]
    fn empty_rows_handled() {
        let t = vec![(3, 1, c64(1.0, 0.0))];
        let s = CsrMatrix::from_triplets(5, 3, t);
        assert_eq!(s.nnz(), 1);
        let d = s.to_dense();
        assert_eq!(d[(3, 1)], c64(1.0, 0.0));
    }

    #[test]
    fn density_and_nnz() {
        let s = CsrMatrix::identity(10);
        assert_eq!(s.nnz(), 10);
        assert!((s.density() - 0.1).abs() < 1e-15);
    }

    #[test]
    fn accumulate_forms_match_dense_references() {
        let mut r = rng();
        let s = random_sparse(7, 5, 0.4, &mut r);
        let a = Matrix::random(6, 7, &mut r);
        let b = Matrix::random(5, 4, &mut r);
        let z = c64(-1.0, 0.5);

        // out starts non-zero so the accumulate semantics are exercised.
        let mut out = Matrix::random(7, 4, &mut r);
        let mut expect = out.clone();
        s.mul_dense_acc(&b, &mut out);
        expect.axpy(Complex64::ONE, &s.to_dense().matmul(&b));
        assert!(out.max_abs_diff(&expect) < 1e-12);

        let mut out = Matrix::random(6, 5, &mut r);
        let mut expect = out.clone();
        s.rmul_dense_scaled_acc(&a, z, &mut out);
        expect.axpy(z, &a.matmul(&s.to_dense()));
        assert!(out.max_abs_diff(&expect) < 1e-12);

        let a2 = Matrix::random(6, 5, &mut r);
        let mut out = Matrix::random(6, 7, &mut r);
        let mut expect = out.clone();
        s.rmul_dagger_scaled_acc(&a2, z, &mut out);
        expect.axpy(z, &a2.matmul(&s.to_dense().dagger()));
        assert!(out.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn pooled_conversion_roundtrips_and_recycles() {
        let mut r = rng();
        let dense = Matrix::from_fn(9, 9, |_, _| {
            if r.random_range(0.0..1.0) < 0.25 {
                c64(r.random_range(-1.0..1.0), r.random_range(-1.0..1.0))
            } else {
                Complex64::ZERO
            }
        });
        let heap = CsrMatrix::from_dense(&dense, 0.0);
        // Warm the pools, then assert the second conversion is a pure
        // pool hit.
        CsrMatrix::from_dense_pooled(&dense, 0.0).recycle();
        let fresh0 = workspace::fresh_here();
        let pooled = CsrMatrix::from_dense_pooled(&dense, 0.0);
        assert_eq!(workspace::fresh_here(), fresh0, "warm conversion allocated");
        assert_eq!(pooled, heap);
        pooled.recycle();
    }

    #[test]
    fn sparse_ops_feed_kernel_telemetry() {
        use qt_telemetry::counters as tc;
        let mut r = rng();
        let s = random_sparse(8, 8, 0.5, &mut r);
        let b = Matrix::random(8, 8, &mut r);
        let (f0, b0) = (
            tc::total_kernel_sparse_flops(),
            tc::total_kernel_sparse_bytes(),
        );
        let _ = s.mul_dense(&b);
        let n = s.nnz() as u64;
        assert!(tc::total_kernel_sparse_flops() - f0 >= 8 * n * 8);
        assert!(tc::total_kernel_sparse_bytes() - b0 >= s.storage_bytes());
        let f1 = tc::total_kernel_sparse_flops();
        let _ = s.mul_csr(&s);
        assert!(tc::total_kernel_sparse_flops() > f1);
        let f2 = tc::total_kernel_sparse_flops();
        let x = vec![Complex64::ONE; 8];
        let _ = s.matvec(&x);
        assert!(tc::total_kernel_sparse_flops() - f2 >= 8 * n);
    }
}
