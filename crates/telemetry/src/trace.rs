//! Chrome/Perfetto `trace_event` export.
//!
//! Every closed span becomes one complete ("X") event; nesting is
//! reconstructed by the viewer from timestamps and durations per thread
//! track. Cross-rank causality — a send landing in a receive, a steal
//! request answered by a grant — is encoded as flow-event pairs (`ph:
//! "s"` on the initiating rank's track, `ph: "f"` on the completing
//! rank's) sharing an `id`, so the viewer draws arrows between rank
//! lanes. Load the emitted file in `chrome://tracing` or
//! <https://ui.perfetto.dev>.

use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

static TRACING: AtomicBool = AtomicBool::new(false);
static EVENTS: Mutex<Vec<Event>> = Mutex::new(Vec::new());
static EPOCH: OnceLock<Instant> = OnceLock::new();

static NEXT_TID: AtomicU64 = AtomicU64::new(1);
thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Relaxed);
}

/// Chrome event phase: complete slices and the two ends of a flow arrow.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Ph {
    Complete,
    FlowStart,
    FlowFinish,
}

struct Event {
    name: Cow<'static, str>,
    ts_us: f64,
    dur_us: f64,
    tid: u64,
    ph: Ph,
    /// Flow-pair correlation id; meaningful only for flow phases.
    flow_id: u64,
}

/// Track-id base for per-rank tracks: rank `r`'s slices land on tid
/// `RANK_TRACK_BASE + r`, far above the thread-local tids, so a trace
/// viewer shows one clean lane per world slot.
pub const RANK_TRACK_BASE: u64 = 1_000_000;

/// Turn trace-event buffering on or off. Turning it on pins the trace
/// epoch (timestamp zero) if not already set.
pub fn set_tracing(on: bool) {
    if on {
        let _ = EPOCH.set(Instant::now());
    }
    TRACING.store(on, Relaxed);
}

/// Is trace-event buffering enabled?
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Relaxed)
}

/// Append one complete event for a span that started at `t0` and ran for
/// `dur_ns`. No-op unless tracing is enabled.
pub fn record_event(name: &'static str, t0: Instant, dur_ns: u64) {
    record_on_track(Cow::Borrowed(name), t0, dur_ns, TID.with(|t| *t));
}

/// Append one complete event on the dedicated track of world slot `rank`
/// (tid `RANK_TRACK_BASE + rank`) — used for unit-granularity compute
/// slices so the trace shows one lane per rank regardless of which OS
/// thread backed it. Owned names allow per-unit labels like
/// `"sse/unit/7"`. No-op unless tracing is enabled.
pub fn record_rank_event(name: String, rank: usize, t0: Instant, dur_ns: u64) {
    record_on_track(Cow::Owned(name), t0, dur_ns, RANK_TRACK_BASE + rank as u64);
}

fn record_on_track(name: Cow<'static, str>, t0: Instant, dur_ns: u64, tid: u64) {
    if !tracing_enabled() {
        return;
    }
    let epoch = *EPOCH.get_or_init(Instant::now);
    let ts_us = t0.saturating_duration_since(epoch).as_nanos() as f64 / 1e3;
    EVENTS.lock().unwrap().push(Event {
        name,
        ts_us,
        dur_us: dur_ns as f64 / 1e3,
        tid,
        ph: Ph::Complete,
        flow_id: 0,
    });
}

/// Stable correlation id for a flow pair: FNV-1a over the identifying
/// words (e.g. `[src, dst, tag, seq]` for a message, `[thief, victim,
/// ordinal]` for a steal arc). Both endpoints must derive the id from
/// the same words; the per-pair FIFO channel order guarantees their
/// ordinals agree.
pub fn flow_id(words: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    // Mask to 53 bits so the id survives the JSON number round-trip
    // exactly; 0 is reserved for "not a flow event".
    (h & ((1 << 53) - 1)).max(1)
}

/// Record the *initiating* end of a flow arrow (`ph: "s"`) on world slot
/// `rank`'s track, timestamped now. No-op unless tracing is enabled.
pub fn record_flow_start(name: &'static str, rank: usize, id: u64) {
    record_flow(name, rank, id, Ph::FlowStart);
}

/// Record the *completing* end of a flow arrow (`ph: "f"`) on world slot
/// `rank`'s track, timestamped now. Must use the same `name` and `id` as
/// its matching [`record_flow_start`]. No-op unless tracing is enabled.
pub fn record_flow_finish(name: &'static str, rank: usize, id: u64) {
    record_flow(name, rank, id, Ph::FlowFinish);
}

fn record_flow(name: &'static str, rank: usize, id: u64, ph: Ph) {
    if !tracing_enabled() {
        return;
    }
    let epoch = *EPOCH.get_or_init(Instant::now);
    let ts_us = epoch.elapsed().as_nanos() as f64 / 1e3;
    EVENTS.lock().unwrap().push(Event {
        name: Cow::Borrowed(name),
        ts_us,
        dur_us: 0.0,
        tid: RANK_TRACK_BASE + rank as u64,
        ph,
        flow_id: id,
    });
}

/// Discard all buffered events.
pub fn clear_trace() {
    EVENTS.lock().unwrap().clear();
}

/// Number of buffered events.
pub fn event_count() -> usize {
    EVENTS.lock().unwrap().len()
}

/// Serialise the buffered events as Chrome `trace_event` JSON (object
/// format, complete events).
pub fn export_chrome_trace() -> String {
    let events = EVENTS.lock().unwrap();
    let items: Vec<Json> = events
        .iter()
        .map(|e| {
            let mut fields = vec![
                ("name".to_string(), Json::Str(e.name.to_string())),
                (
                    "cat".to_string(),
                    Json::Str(category_of(&e.name).to_string()),
                ),
                (
                    "ph".to_string(),
                    Json::Str(
                        match e.ph {
                            Ph::Complete => "X",
                            Ph::FlowStart => "s",
                            Ph::FlowFinish => "f",
                        }
                        .to_string(),
                    ),
                ),
                ("ts".to_string(), Json::Num(e.ts_us)),
            ];
            match e.ph {
                Ph::Complete => fields.push(("dur".to_string(), Json::Num(e.dur_us))),
                Ph::FlowStart | Ph::FlowFinish => {
                    fields.push(("id".to_string(), Json::Num(e.flow_id as f64)));
                    if e.ph == Ph::FlowFinish {
                        // Bind to the enclosing slice so viewers draw the
                        // arrowhead inside the receiving rank's lane.
                        fields.push(("bp".to_string(), Json::Str("e".to_string())));
                    }
                }
            }
            fields.push(("pid".to_string(), Json::Num(1.0)));
            fields.push(("tid".to_string(), Json::Num(e.tid as f64)));
            Json::Obj(fields)
        })
        .collect();
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(items)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
    ])
    .dump()
}

/// Check that `json` parses as a Chrome trace with at least one complete
/// event, returning the event count. Flow events (`ph: "s"` / `"f"`)
/// must pair up: every flow id carries exactly one start and one finish,
/// with non-decreasing timestamps and matching names. Used by the CI
/// smoke job and `reproduce profile --trace`.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let trace = Json::parse(json).map_err(|e| format!("trace does not parse: {e}"))?;
    let events = trace
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or("trace has no traceEvents array")?;
    if events.is_empty() {
        return Err("trace has no events".into());
    }
    // flow id → (name, starts, finishes, start ts, finish ts).
    let mut flows: std::collections::BTreeMap<u64, (String, u32, u32, f64, f64)> =
        std::collections::BTreeMap::new();
    let mut complete = 0usize;
    for ev in events {
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or("event without name")?;
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {name:?} lacks ph"))?;
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {name:?} lacks ts"))?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!("event {name:?} has bad ts {ts}"));
        }
        if ev.get("tid").and_then(Json::as_u64).is_none() {
            return Err(format!("event {name:?} lacks tid"));
        }
        match ph {
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {name:?} lacks dur"))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {name:?} has bad dur {dur}"));
                }
                complete += 1;
            }
            "s" | "f" => {
                let id = ev
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("flow event {name:?} lacks id"))?;
                let slot = flows
                    .entry(id)
                    .or_insert_with(|| (name.to_string(), 0, 0, 0.0, 0.0));
                if slot.0 != name {
                    return Err(format!(
                        "flow id {id} mixes names {:?} and {name:?}",
                        slot.0
                    ));
                }
                if ph == "s" {
                    slot.1 += 1;
                    slot.3 = ts;
                } else {
                    slot.2 += 1;
                    slot.4 = ts;
                }
            }
            other => {
                return Err(format!("event {name:?} has unsupported phase {other:?}"));
            }
        }
    }
    if complete == 0 {
        return Err("trace has no complete events".into());
    }
    for (id, (name, starts, finishes, s_ts, f_ts)) in &flows {
        if *starts != 1 || *finishes != 1 {
            return Err(format!(
                "flow {name:?} id {id} is unpaired: {starts} start(s), {finishes} finish(es)"
            ));
        }
        if f_ts < s_ts {
            return Err(format!(
                "flow {name:?} id {id} finishes before it starts ({f_ts} < {s_ts})"
            ));
        }
    }
    Ok(events.len())
}

/// Number of paired flow arrows in a trace that already passed
/// [`validate_chrome_trace`], grouped by name prefix. Convenience for
/// tests and the CI smoke assertions.
pub fn count_flows(json: &str, name: &str) -> usize {
    let Ok(trace) = Json::parse(json) else {
        return 0;
    };
    let Some(events) = trace.get("traceEvents").and_then(Json::as_array) else {
        return 0;
    };
    events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::as_str) == Some("s")
                && e.get("name").and_then(Json::as_str) == Some(name)
        })
        .count()
}

/// First path segment, used as the event category (`sse/sigma/dace` →
/// `sse`).
fn category_of(name: &str) -> &str {
    name.split(['/', '.']).next().unwrap_or(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The trace buffer is process-global: tests that record flow pairs
    // and tests that export/validate must not interleave (an export
    // between a flow's start and finish would see it unpaired).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn export_roundtrips_through_validation() {
        let _g = lock();
        set_tracing(true);
        record_event("test/trace/a", Instant::now(), 1_500);
        record_event("test/trace/b", Instant::now(), 2_500);
        set_tracing(false);
        let json = export_chrome_trace();
        let n = validate_chrome_trace(&json).unwrap();
        assert!(n >= 2);
    }

    #[test]
    fn rank_events_land_on_rank_tracks() {
        let _g = lock();
        set_tracing(true);
        record_rank_event("sse/unit/7".to_string(), 3, Instant::now(), 900);
        set_tracing(false);
        let json = export_chrome_trace();
        validate_chrome_trace(&json).unwrap();
        let trace = Json::parse(&json).unwrap();
        let events = trace.get("traceEvents").and_then(Json::as_array).unwrap();
        let ev = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("sse/unit/7"))
            .expect("rank event exported");
        assert_eq!(
            ev.get("tid").and_then(Json::as_u64),
            Some(RANK_TRACK_BASE + 3)
        );
    }

    #[test]
    fn categories_split_on_both_separators() {
        assert_eq!(category_of("sse/sigma/dace"), "sse");
        assert_eq!(category_of("gemm.pack"), "gemm");
        assert_eq!(category_of("scf"), "scf");
    }

    #[test]
    fn validation_rejects_eventless_trace() {
        assert!(validate_chrome_trace(r#"{"traceEvents": []}"#).is_err());
        assert!(validate_chrome_trace("not json").is_err());
    }

    #[test]
    fn paired_flows_validate_and_are_countable() {
        // No clear_trace here: sibling tests share the global buffer, and
        // their complete events are harmless to this validation.
        let _g = lock();
        set_tracing(true);
        record_event("test/flow/slice", Instant::now(), 1_000);
        let id = flow_id(&[0, 1, 7, 42]);
        record_flow_start("comm/msg", 0, id);
        record_flow_finish("comm/msg", 1, id);
        let id2 = flow_id(&[2, 3, 7, 42]);
        assert_ne!(id, id2);
        record_flow_start("steal/req", 2, id2);
        record_flow_finish("steal/req", 3, id2);
        set_tracing(false);
        let json = export_chrome_trace();
        validate_chrome_trace(&json).unwrap();
        assert!(count_flows(&json, "comm/msg") >= 1);
        assert!(count_flows(&json, "steal/req") >= 1);
    }

    #[test]
    fn unpaired_or_time_reversed_flows_are_rejected() {
        // A start with no finish.
        let json = r#"{"traceEvents": [
            {"name": "x", "cat": "x", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1},
            {"name": "comm/msg", "cat": "comm", "ph": "s", "ts": 1, "id": 9, "pid": 1, "tid": 1}
        ]}"#;
        let err = validate_chrome_trace(json).unwrap_err();
        assert!(err.contains("unpaired"), "got {err}");
        // A finish that precedes its start.
        let json = r#"{"traceEvents": [
            {"name": "x", "cat": "x", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1},
            {"name": "comm/msg", "cat": "comm", "ph": "s", "ts": 5, "id": 9, "pid": 1, "tid": 1},
            {"name": "comm/msg", "cat": "comm", "ph": "f", "bp": "e", "ts": 2, "id": 9, "pid": 1, "tid": 2}
        ]}"#;
        let err = validate_chrome_trace(json).unwrap_err();
        assert!(err.contains("finishes before"), "got {err}");
        // Two flows must not share an id under different names.
        let json = r#"{"traceEvents": [
            {"name": "x", "cat": "x", "ph": "X", "ts": 0, "dur": 1, "pid": 1, "tid": 1},
            {"name": "a", "cat": "a", "ph": "s", "ts": 1, "id": 9, "pid": 1, "tid": 1},
            {"name": "b", "cat": "b", "ph": "f", "bp": "e", "ts": 2, "id": 9, "pid": 1, "tid": 2}
        ]}"#;
        assert!(validate_chrome_trace(json).unwrap_err().contains("mixes"));
        // A flow-only trace has no complete events and is rejected.
        let json = r#"{"traceEvents": [
            {"name": "a", "cat": "a", "ph": "s", "ts": 1, "id": 9, "pid": 1, "tid": 1},
            {"name": "a", "cat": "a", "ph": "f", "bp": "e", "ts": 2, "id": 9, "pid": 1, "tid": 2}
        ]}"#;
        assert!(validate_chrome_trace(json)
            .unwrap_err()
            .contains("no complete events"));
    }
}
