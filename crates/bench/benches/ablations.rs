//! Ablation benches for the design choices DESIGN.md calls out:
//! batched vs per-pair GEMM, the data-layout permutation cost, the
//! exhaustive tile search, the Π kernel variants, and the windowed GEMM.

use criterion::{criterion_group, criterion_main, Criterion};
use qt_bench::{bench_params, BenchFixture};
use qt_core::params::SimParams;
use qt_core::sse::{self, SseVariant};
use qt_linalg::{gemm, Complex64, Matrix, Tensor};
use qt_model::optimal_tiling;
use rand::{Rng as _, SeedableRng};
use std::hint::black_box;

fn bench_batched_vs_loop(c: &mut Criterion) {
    let mut r = rand::rngs::StdRng::seed_from_u64(5);
    let (no, batch) = (8usize, 512usize);
    let nn = no * no;
    let a: Vec<Complex64> = (0..batch * nn)
        .map(|_| qt_linalg::c64(r.random_range(-1.0..1.0), r.random_range(-1.0..1.0)))
        .collect();
    let b: Vec<Complex64> = a.iter().rev().cloned().collect();
    let mut group = c.benchmark_group("ablation_batched_gemm");
    group.sample_size(20);
    group.bench_function("batched_gemm", |bch| {
        bch.iter(|| {
            let mut out = vec![Complex64::ZERO; batch * nn];
            gemm::batched_gemm_acc(no, no, no, batch, &a, &b, &mut out);
            black_box(out)
        })
    });
    group.bench_function("loop_of_matrix_matmuls", |bch| {
        bch.iter(|| {
            let mut acc = Matrix::zeros(no, no);
            for t in 0..batch {
                let am = Matrix::from_vec(no, no, a[t * nn..(t + 1) * nn].to_vec());
                let bm = Matrix::from_vec(no, no, b[t * nn..(t + 1) * nn].to_vec());
                acc += &am.matmul(&bm);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_layout_permutation(c: &mut Criterion) {
    // The Fig. 10c data-layout transformation is a one-off O(data) cost
    // amortized over the kernel; measure it against one SSE execution.
    let fx = BenchFixture::new(bench_params());
    let mut group = c.benchmark_group("ablation_data_layout");
    group.sample_size(10);
    group.bench_function("g_tensor_permute", |b| {
        b.iter(|| black_box(fx.g_lesser.permuted(&[2, 0, 1, 3, 4])))
    });
    group.finish();
}

fn bench_tile_search(c: &mut Criterion) {
    // §4.1: "the search completes in just a few seconds" for ~10^6 combos;
    // ours scans divisor pairs for each process count.
    let p = SimParams::paper_si_4864(21);
    let mut group = c.benchmark_group("ablation_tile_search");
    group.sample_size(10);
    group.bench_function("optimal_tiling_21kz_21504procs", |b| {
        b.iter(|| black_box(optimal_tiling(&p, 21504)))
    });
    group.finish();
}

fn bench_pi_variants(c: &mut Criterion) {
    let fx = BenchFixture::new(SimParams {
        nkz: 2,
        nqz: 2,
        ne: 16,
        nw: 3,
        na: 16,
        nb: 4,
        norb: 3,
        bnum: 4,
    });
    let mut group = c.benchmark_group("ablation_pi_kernel");
    group.sample_size(10);
    for (name, v) in [
        ("pi_reference", SseVariant::Reference),
        ("pi_dace", SseVariant::Dace),
    ] {
        let inputs = fx.sse_inputs();
        group.bench_function(name, |b| b.iter(|| black_box(sse::pi(&inputs, v))));
    }
    group.finish();
}

fn bench_tensor_inner_access(c: &mut Criterion) {
    // Contiguous inner-slice access vs per-element indexing — the reason
    // the transformed layout wins.
    let t = Tensor::zeros(&[8, 64, 32, 4, 4]);
    let mut group = c.benchmark_group("ablation_tensor_access");
    group.bench_function("inner_slice_sum", |b| {
        b.iter(|| {
            let mut acc = Complex64::ZERO;
            for k in 0..8 {
                for e in 0..64 {
                    for z in t.inner(&[k, e, 7]) {
                        acc += *z;
                    }
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("per_element_get", |b| {
        b.iter(|| {
            let mut acc = Complex64::ZERO;
            for k in 0..8 {
                for e in 0..64 {
                    for i in 0..4 {
                        for j in 0..4 {
                            acc += t.get(&[k, e, 7, i, j]);
                        }
                    }
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_batched_vs_loop,
    bench_layout_permutation,
    bench_tile_search,
    bench_pi_variants,
    bench_tensor_inner_access
);
criterion_main!(benches);
