//! Phase spans: RAII guards that attribute wall-time, flops and bytes to
//! a phase path on drop.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::time::Instant;

use crate::{counters, registry, trace};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn telemetry collection on or off globally.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Relaxed);
}

/// Is telemetry collection enabled? One relaxed load — this is the entire
/// disabled-mode cost of every span and hot section.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

struct Active {
    path: &'static str,
    t0: Instant,
    flops0: u64,
    bytes0: u64,
    alloc_bytes0: u64,
    alloc_count0: u64,
    global: bool,
}

/// An open phase span. Dropping it records the elapsed time and the
/// counter deltas since entry into the [`registry`] (and, when tracing is
/// on, appends a trace event).
pub struct Span {
    active: Option<Active>,
}

impl Span {
    /// Open a span with *thread-local* counter attribution: the flop/byte
    /// delta of the calling thread only. Use inside parallel worker
    /// bodies (one RGF solve, one boundary contour), where work from
    /// sibling workers must not leak into this span.
    #[inline]
    pub fn enter(path: &'static str) -> Span {
        if !enabled() {
            return Span { active: None };
        }
        Span {
            active: Some(Active {
                path,
                t0: Instant::now(),
                flops0: counters::local_flops(),
                bytes0: counters::local_bytes(),
                alloc_bytes0: counters::local_alloc_bytes(),
                alloc_count0: counters::local_alloc_count(),
                global: false,
            }),
        }
    }

    /// Open a span with *global* counter attribution: the delta of the
    /// summed counters across all threads. Correct for sequential
    /// orchestration phases (the SCF loop body, one SSE pass) that fan
    /// out over rayon internally; two `enter_global` spans must not run
    /// concurrently on different threads.
    pub fn enter_global(path: &'static str) -> Span {
        if !enabled() {
            return Span { active: None };
        }
        Span {
            active: Some(Active {
                path,
                t0: Instant::now(),
                flops0: counters::total_flops(),
                bytes0: counters::total_bytes(),
                alloc_bytes0: counters::total_alloc_bytes(),
                alloc_count0: counters::total_alloc_count(),
                global: true,
            }),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else {
            return;
        };
        let wall_ns = a.t0.elapsed().as_nanos() as u64;
        let (flops1, bytes1, alloc_bytes1, alloc_count1) = if a.global {
            (
                counters::total_flops(),
                counters::total_bytes(),
                counters::total_alloc_bytes(),
                counters::total_alloc_count(),
            )
        } else {
            (
                counters::local_flops(),
                counters::local_bytes(),
                counters::local_alloc_bytes(),
                counters::local_alloc_count(),
            )
        };
        registry::record(
            a.path,
            wall_ns,
            flops1.saturating_sub(a.flops0),
            bytes1.saturating_sub(a.bytes0),
            alloc_bytes1.saturating_sub(a.alloc_bytes0),
            alloc_count1.saturating_sub(a.alloc_count0),
        );
        trace::record_event(a.path, a.t0, wall_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: the enable flag is global, so the
    // disabled/enabled assertions must run in a fixed order.
    #[test]
    fn span_enable_disable_cycle() {
        set_enabled(false);
        {
            let _s = Span::enter("test/span/disabled");
            counters::add_flops(1);
        }
        assert!(registry::phase("test/span/disabled").is_none());

        set_enabled(true);
        {
            let _s = Span::enter("test/span/local");
            counters::add_flops(123);
        }
        {
            let _g = Span::enter_global("test/span/global");
            counters::add_flops(45);
        }
        set_enabled(false);

        let s = registry::phase("test/span/local").unwrap();
        assert_eq!(s.flops, 123);
        assert_eq!(s.calls, 1);
        let g = registry::phase("test/span/global").unwrap();
        // Global attribution may absorb concurrent test threads' flops,
        // but never less than this span's own work.
        assert!(g.flops >= 45);
    }
}
